"""Ablations for the design choices DESIGN.md calls out.

* **Distinct vs plain active-domain lists.**  The plain Section 4 adom
  (union of projections) carries one entry per (relation, column, row);
  FuncToList sweeps its k-th power, so duplicates multiply the sweep by
  |r|^k factors.  The duplicate-suppressing operators (expressible in
  TLI=0 via Order_k) cut the list to one entry per constant.
* **Semi-naive vs naive Datalog** lives in bench_theorem_4_2.py; the
  small-step vs NBE engine comparison in bench_list_iteration.py.
"""

import pytest

from repro.db.decode import decode_relation
from repro.db.encode import encode_database
from repro.db.generators import random_relation
from repro.db.relations import Database
from repro.lam.nbe import nbe_normalize
from repro.lam.terms import Var, app, lam
from repro.queries.fixpoint import func_to_list_term, list_to_func_term
from repro.queries.relalg_compile import active_domain_expr_term


def _sweep_term(distinct: bool):
    """``λR. FuncToList(ListToFunc R)`` with the chosen adom flavor: the
    membership re-encoding pass at the heart of every fixpoint stage."""
    domain = active_domain_expr_term({"R": 2}, Var, distinct=distinct)
    return lam(
        ["R"],
        app(
            func_to_list_term(2, domain),
            app(list_to_func_term(2), Var("R")),
        ),
    )


@pytest.mark.parametrize("distinct", [True, False], ids=["distinct", "plain"])
@pytest.mark.parametrize("size", [4, 8])
def test_domain_sweep(benchmark, distinct, size):
    relation = random_relation(2, size, seed=size)
    db = Database.of({"R": relation})
    term = app(_sweep_term(distinct), *encode_database(db))

    def run():
        return nbe_normalize(term, max_depth=1_000_000)

    result = benchmark(run)
    decoded = decode_relation(result, 2)
    assert decoded.relation.same_set(relation)


@pytest.mark.parametrize("distinct", [True, False], ids=["distinct", "plain"])
@pytest.mark.parametrize("size", [8, 14])
def test_complement_membership(benchmark, distinct, size):
    """The case the distinct variants were built for: ``adom^2 - R`` over a
    *small universe* (many rows per constant, as in the compiled
    first-order pipelines).  The plain adom list has one entry per
    (column, row) — here ~7x the universe — and squaring it multiplies the
    membership scans ~50x."""
    from repro.db.generators import constant_universe
    from repro.queries.operators import difference_term, product_term

    relation = random_relation(
        2, size, constant_universe(4), seed=size + 100
    )
    db = Database.of({"R": relation})
    domain = active_domain_expr_term({"R": 2}, Var, distinct=distinct)
    term = app(
        lam(
            ["R"],
            app(
                difference_term(2),
                app(product_term(1, 1), domain, domain),
                Var("R"),
            ),
        ),
        *encode_database(db),
    )

    def run():
        return nbe_normalize(term, max_depth=1_500_000)

    result = benchmark(run)
    decoded = decode_relation(result, 2)
    constants = set(db.active_domain())
    expected = {
        (a, b)
        for a in constants
        for b in constants
        if (a, b) not in relation.as_set()
    }
    assert decoded.relation.as_set() == expected
