"""Static certifier overhead and cost-bound tightness.

The analyzer runs once per registration (data-independent, like the
Section 5.2 FO translation), so the interesting measurements are (a) the
preprocessing cost of a full analysis, and (b) how loose the Theorem
5.1-style step bound is against the steps NBE actually performs — the
looseness is the price of deriving fuel budgets without running the
query.
"""

import json
import math
import os

import pytest

from repro.analysis import (
    DatabaseStats,
    analyze_fixpoint,
    analyze_term,
    term_cost_profile,
    tighten_term_profile,
)
from repro.db.encode import encode_database
from repro.db.generators import random_database
from repro.lam.nbe import nbe_normalize_counted
from repro.lam.parser import parse
from repro.lam.terms import app
from repro.queries.fixpoint import transitive_closure_query
from repro.queries.language import QueryArity

SUITE = {
    "identity": (r"\R1. \R2. R1", QueryArity((2, 2), 2)),
    "swap": (
        r"\R1. \R2. \c. \n. R1 (\x y T. c y x T) n",
        QueryArity((2, 2), 2),
    ),
    "diagonal": (
        r"\R1. \R2. \c. \n. R1 (\x y T. Eq x y (c x x T) T) n",
        QueryArity((2, 2), 2),
    ),
}


@pytest.mark.parametrize("name", sorted(SUITE))
def test_term_analysis_preprocessing(benchmark, name):
    """Full analysis of a term plan — O(1) in the database."""
    source, signature = SUITE[name]
    term = parse(source)
    report = benchmark(analyze_term, term, name=name, signature=signature)
    assert report.ok


def test_fixpoint_analysis_preprocessing(benchmark):
    """Full analysis of a fixpoint spec, including tower compilation."""
    query = transitive_closure_query()
    report = benchmark(analyze_fixpoint, query, name="tc")
    assert report.ok


@pytest.mark.parametrize("name", sorted(SUITE))
def test_bound_dominates_observed(bench_db, name):
    """Not a timing: records the bound/observed ratio for the suite."""
    source, signature = SUITE[name]
    term = parse(source)
    profile = term_cost_profile(
        term,
        input_count=len(signature.inputs),
        output_arity=signature.output,
    )
    stats = DatabaseStats.of(bench_db)
    _, steps = nbe_normalize_counted(
        app(term, *encode_database(bench_db))
    )
    bound = profile.bound(stats)
    assert steps <= bound


def analysis_rows(db):
    """Per-plan bound/observed ratios before and after absint tightening."""
    stats = DatabaseStats.of(db)
    encoded = encode_database(db)
    rows = []
    for name in sorted(SUITE):
        source, signature = SUITE[name]
        term = parse(source)
        base = term_cost_profile(
            term,
            input_count=len(signature.inputs),
            output_arity=signature.output,
        )
        tightened, _ = tighten_term_profile(
            term, base=base, input_count=len(signature.inputs)
        )
        effective = tightened or base
        _, observed = nbe_normalize_counted(app(term, *encoded))
        base_bound = base.bound(stats)
        effective_bound = effective.bound(stats)
        rows.append(
            {
                "plan": name,
                "observed_steps": observed,
                "base_bound": base_bound,
                "tightened_bound": effective_bound,
                "tightened": tightened is not None,
                "base_ratio": round(base_bound / observed, 3),
                "tightened_ratio": round(effective_bound / observed, 3),
            }
        )
    return rows


def _geo_mean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def analysis_summary(db):
    rows = analysis_rows(db)
    before = _geo_mean([row["base_ratio"] for row in rows])
    after = _geo_mean([row["tightened_ratio"] for row in rows])
    return {
        "experiment": "analysis",
        "rows": rows,
        "geomean_bound_over_observed_before": round(before, 3),
        "geomean_bound_over_observed_after": round(after, 3),
        "improvement": round(before / after, 3),
    }


def test_tightened_bounds_dominate_and_improve(bench_db):
    """The acceptance gate: soundness everywhere, >= 2x geo-mean gain."""
    summary = analysis_summary(bench_db)
    for row in summary["rows"]:
        assert row["observed_steps"] <= row["tightened_bound"], row
        assert row["tightened_bound"] <= row["base_bound"], row
    assert summary["improvement"] >= 2.0, summary


def main(argv):
    out = None
    args = list(argv[1:])
    index = 0
    while index < len(args):
        if args[index] == "--out":
            index += 1
            out = args[index]
        else:
            raise SystemExit(f"unknown argument: {args[index]}")
        index += 1
    db = random_database([2, 2], [8, 6], universe_size=5, seed=101)
    payload = analysis_summary(db)
    out_path = os.path.abspath(
        out
        or os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            os.pardir,
            "BENCH_analysis.json",
        )
    )
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for row in payload["rows"]:
        print(
            f"{row['plan']:>10} observed {row['observed_steps']} "
            f"bound {row['base_bound']} -> {row['tightened_bound']} "
            f"(ratio {row['base_ratio']} -> {row['tightened_ratio']})"
        )
    print(
        f"geo-mean bound/observed "
        f"{payload['geomean_bound_over_observed_before']} -> "
        f"{payload['geomean_bound_over_observed_after']} "
        f"({payload['improvement']}x tighter)"
    )
    print(f"wrote {out_path}")


if __name__ == "__main__":
    import sys

    main(sys.argv)
