"""Static certifier overhead and cost-bound tightness.

The analyzer runs once per registration (data-independent, like the
Section 5.2 FO translation), so the interesting measurements are (a) the
preprocessing cost of a full analysis, and (b) how loose the Theorem
5.1-style step bound is against the steps NBE actually performs — the
looseness is the price of deriving fuel budgets without running the
query.
"""

import pytest

from repro.analysis import (
    DatabaseStats,
    analyze_fixpoint,
    analyze_term,
    term_cost_profile,
)
from repro.db.encode import encode_database
from repro.lam.nbe import nbe_normalize_counted
from repro.lam.parser import parse
from repro.lam.terms import app
from repro.queries.fixpoint import transitive_closure_query
from repro.queries.language import QueryArity

SUITE = {
    "identity": (r"\R1. \R2. R1", QueryArity((2, 2), 2)),
    "swap": (
        r"\R1. \R2. \c. \n. R1 (\x y T. c y x T) n",
        QueryArity((2, 2), 2),
    ),
    "diagonal": (
        r"\R1. \R2. \c. \n. R1 (\x y T. Eq x y (c x x T) T) n",
        QueryArity((2, 2), 2),
    ),
}


@pytest.mark.parametrize("name", sorted(SUITE))
def test_term_analysis_preprocessing(benchmark, name):
    """Full analysis of a term plan — O(1) in the database."""
    source, signature = SUITE[name]
    term = parse(source)
    report = benchmark(analyze_term, term, name=name, signature=signature)
    assert report.ok


def test_fixpoint_analysis_preprocessing(benchmark):
    """Full analysis of a fixpoint spec, including tower compilation."""
    query = transitive_closure_query()
    report = benchmark(analyze_fixpoint, query, name="tc")
    assert report.ok


@pytest.mark.parametrize("name", sorted(SUITE))
def test_bound_dominates_observed(bench_db, name):
    """Not a timing: records the bound/observed ratio for the suite."""
    source, signature = SUITE[name]
    term = parse(source)
    profile = term_cost_profile(
        term,
        input_count=len(signature.inputs),
        output_arity=signature.output,
    )
    stats = DatabaseStats.of(bench_db)
    _, steps = nbe_normalize_counted(
        app(term, *encode_database(bench_db))
    )
    bound = profile.bound(stats)
    assert steps <= bound
