"""The compilation benchmark: compiled-RA vs reduction, per plan class.

Registers one certified plan per relational-algebra class (filter,
project, equi-join, union, difference, intersection) plus transitive
closure, runs each twice — on the ``"ra"`` engine and on the reduction
baseline (``nbe`` for terms, the staged ``fixpoint`` evaluator for the
closure) — and writes ``BENCH_compile.json``:

* per plan: the compile decision (TLI028 operator chain), both wall
  times, the speedup, both step counts, and whether the compiled
  relation is set-equal to the baseline;
* the last observed/bound ratio per query (compiled operations are a
  lower bound on reduction steps, so the certified envelope must hold
  with ratio <= 1);
* the service's ``repro_compile_*`` metrics snapshot.

Correctness (set equality, compiled decisions, bound ratios <= 1) is
asserted unconditionally.  The >= 10x speedup gates — wall-clock on the
best term plan, step-count on the fixpoint — only apply to full (non
``--smoke``) runs, where the workload is large enough for interpreter
noise to wash out.

    python benchmarks/bench_compile.py --smoke --out /tmp/BENCH_compile.json
    python benchmarks/bench_compile.py
"""

from __future__ import annotations

import json
import os
import sys
import time


def build_catalog(tuples: int, seed: int):
    from repro.db.generators import random_graph_relation, random_relation
    from repro.db.relations import Database
    from repro.queries.fixpoint import transitive_closure_query
    from repro.queries.language import QueryArity
    from repro.queries.relalg_compile import build_ra_query
    from repro.relalg.ast import (
        Base,
        ColumnEqualsColumn,
        ColumnEqualsConst,
        Difference,
        Intersection,
        Product,
        Project,
        Select,
        Union,
    )
    from repro.service import Catalog

    r = random_relation(2, tuples, seed=seed)
    s = random_relation(2, tuples, seed=seed + 1)
    database = Database.of({"R": r, "S": s})
    # A sparse graph for the closure: stage count and per-stage volume
    # are what the set-based runner accelerates.
    nodes = max(5, min(14, tuples // 6))
    graph = Database.of({"E": random_graph_relation(nodes, 0.3, seed=seed)})

    schema = {"R": 2, "S": 2}
    constant = next(iter(r.tuples))[0]
    plans = {
        # One fold with a residual equality branch.
        "filter": Select(Base("R"), ColumnEqualsConst(0, constant)),
        # One fold, columns permuted on emit.
        "project": Project(Base("R"), (1, 0)),
        # R(a,b) |x| S(b,c) -> (a,c): the nested-fold shape the physical
        # planner rewrites into a hash join.
        "join": Project(
            Select(Product(Base("R"), Base("S")), ColumnEqualsColumn(1, 2)),
            (0, 3),
        ),
        # Two parallel folds.
        "union": Union(Project(Base("R"), (1, 0)), Base("S")),
        # Anti-join probe against a cached key-set.
        "difference": Difference(Base("R"), Base("S")),
        # Semi-join probe.
        "intersect": Intersection(Base("R"), Base("S")),
    }
    catalog = Catalog()
    catalog.register_database("main", database)
    catalog.register_database("graph", graph)
    signature = QueryArity((2, 2), 2)
    for name, expr in plans.items():
        entry = catalog.register_query(
            name,
            build_ra_query(expr, ["R", "S"], schema),
            signature=signature,
        )
        assert entry.compiled is not None and entry.compiled.compiled, (
            name,
            entry.compiled,
        )
        assert entry.engine == "ra", (name, entry.engine)
    tc = catalog.register_query("tc", transitive_closure_query("E"))
    assert tc.compiled is not None and tc.compiled.compiled
    return catalog, database, graph, list(plans)


def run(smoke: bool, out: str) -> None:
    from repro.service import QueryRequest, QueryService

    tuples = 30 if smoke else 120
    rounds = 1 if smoke else 3
    catalog, database, graph, term_queries = build_catalog(tuples, seed=13)
    cases = [(name, "main", "nbe") for name in term_queries]
    cases.append(("tc", "graph", "fixpoint"))

    rows = []
    with QueryService(catalog) as service:
        for query, db_name, baseline_engine in cases:
            entry = service.catalog.get_query(query)
            ra_s = base_s = 0.0
            ra_steps = base_steps = 0
            match = True
            for _ in range(rounds):
                # Version-bump so every timed execution is a cache miss.
                service.update_database(
                    db_name, database if db_name == "main" else graph
                )
                start = time.perf_counter()
                compiled = service.execute(
                    QueryRequest(query=query, database=db_name, engine="ra")
                )
                ra_s += time.perf_counter() - start
                start = time.perf_counter()
                baseline = service.execute(
                    QueryRequest(
                        query=query, database=db_name, engine=baseline_engine
                    )
                )
                base_s += time.perf_counter() - start
                assert compiled.ok and baseline.ok, (
                    query, compiled.status, compiled.error,
                    baseline.status, baseline.error,
                )
                assert compiled.engine == "ra", (
                    f"{query} degraded to {compiled.engine}"
                )
                match = match and compiled.relation.same_set(
                    baseline.relation
                )
                if query == "tc":
                    assert compiled.stages == baseline.stages, query
                ra_steps = compiled.steps
                base_steps = baseline.steps
            assert match, f"compiled result diverged for {query!r}"
            rows.append(
                {
                    "query": query,
                    "kind": entry.compiled.kind,
                    "summary": entry.compiled.summary,
                    "baseline_engine": baseline_engine,
                    "match": match,
                    "ra_wall_s": round(ra_s, 4),
                    "baseline_wall_s": round(base_s, 4),
                    "speedup": round(base_s / ra_s, 3) if ra_s else None,
                    "ra_steps": ra_steps,
                    "baseline_steps": base_steps,
                    "step_ratio": (
                        round(base_steps / ra_steps, 3) if ra_steps else None
                    ),
                }
            )
        ratio_gauge = service.registry.get("repro_steps_bound_ratio")
        bound_ratios = {}
        if ratio_gauge is not None:
            for labels, value in ratio_gauge.items():
                bound_ratios[labels.get("query", "?")] = value
        for labels, value in bound_ratios.items():
            assert value <= 1.0, (labels, value)
        metrics = {
            entry["name"]: entry["values"]
            for entry in service.registry.as_dict()["metrics"]
            if entry["name"].startswith("repro_compile_")
        }

    term_rows = [r for r in rows if r["query"] != "tc"]
    fixpoint_row = next(r for r in rows if r["query"] == "tc")
    term_speedups = [r["speedup"] for r in term_rows if r["speedup"]]
    payload = {
        "experiment": "compile",
        "smoke": smoke,
        "workload": {
            "tuples": tuples,
            "rounds": rounds,
            "queries": [query for query, _, _ in cases],
        },
        "rows": rows,
        "term_speedup_max": max(term_speedups) if term_speedups else None,
        "fixpoint_step_ratio": fixpoint_row["step_ratio"],
        "bound_ratios": bound_ratios,
        "metrics": metrics,
    }
    if not smoke:
        assert payload["term_speedup_max"] >= 10.0, (
            "expected >= 10x wall-clock speedup on the best certified "
            f"term plan, got {payload['term_speedup_max']}"
        )
        assert payload["fixpoint_step_ratio"] >= 10.0, (
            "expected >= 10x step-count reduction on the set-based "
            f"fixpoint, got {payload['fixpoint_step_ratio']}"
        )

    out_path = os.path.abspath(
        out
        or os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            os.pardir,
            "BENCH_compile.json",
        )
    )
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for row in rows:
        print(
            f"{row['query']:>10} [{row['summary']}] "
            f"ra {row['ra_wall_s']}s {row['baseline_engine']} "
            f"{row['baseline_wall_s']}s speedup {row['speedup']}x "
            f"steps {row['ra_steps']}/{row['baseline_steps']} "
            f"match={row['match']}"
        )
    print(f"wrote {out_path}")


def main(argv) -> None:
    args = list(argv[1:])
    smoke = False
    out = None
    index = 0
    while index < len(args):
        arg = args[index]
        if arg == "--smoke":
            smoke = True
        elif arg == "--out":
            index += 1
            out = args[index]
        else:
            raise SystemExit(f"unknown argument {arg!r}")
        index += 1
    run(smoke, out)


if __name__ == "__main__":
    sys.path.insert(
        0,
        os.path.join(
            os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"
        ),
    )
    main(sys.argv)
