"""E7 (Lemma 3.2 / Lemma 3.9): encode/decode round trips and query-term
recognition throughput."""

import pytest

from repro.db.decode import decode_relation
from repro.db.encode import encode_relation
from repro.db.generators import random_relation
from repro.queries.fixpoint import build_fixpoint_query, transitive_closure_query
from repro.queries.language import QueryArity, recognize_mli, recognize_tli
from repro.queries.operators import intersection_term, precedes_relation_term


@pytest.mark.parametrize("size", [16, 64, 256])
def test_encode(benchmark, size):
    rel = random_relation(2, size, seed=size)
    term = benchmark(encode_relation, rel)
    assert term is not None


@pytest.mark.parametrize("size", [16, 64, 256])
def test_decode(benchmark, size):
    rel = random_relation(2, size, seed=size)
    term = encode_relation(rel)
    decoded = benchmark(decode_relation, term, 2)
    assert decoded.relation == rel


@pytest.mark.parametrize(
    "name, builder, signature",
    [
        (
            "intersection",
            lambda: intersection_term(2),
            QueryArity((2, 2), 2),
        ),
        (
            "precedes",
            lambda: precedes_relation_term(2),
            QueryArity((2,), 4),
        ),
        (
            "fixpoint_tli",
            lambda: build_fixpoint_query(
                transitive_closure_query("E"), "tli"
            ),
            QueryArity((2,), 2),
        ),
    ],
)
def test_tli_recognition(benchmark, name, builder, signature):
    term = builder()
    result = benchmark(recognize_tli, term, signature)
    assert result.derivation_order in (3, 4)


def test_mli_recognition_of_fixpoint(benchmark):
    term = build_fixpoint_query(transitive_closure_query("E"), "mli")
    result = benchmark(recognize_mli, term, QueryArity((2,), 2))
    assert result.derivation_order == 4
