"""The HTTP-edge benchmark: latency sweep plus the overload error budget.

Starts an in-process :class:`repro.http.server.QueryEdge` on an
ephemeral loopback port and drives it over real sockets, then writes
``BENCH_http.json``:

* ``sweep`` — for each concurrency level: client-observed p50/p95/p99
  request latency and throughput (requests/second);
* ``overload`` — a burst against a deliberately tiny fuel capacity:
  over-budget requests must be *rejected at the door* (429/503 with
  ``Retry-After``), quickly, while every admitted evaluation keeps its
  Theorem 5.1 observed/bound ratio <= 1.

The overload gates are asserted unconditionally (smoke and full runs):

* >= 95% of the over-budget burst is rejected with 429/503;
* the median client-observed rejection latency is < 50 ms;
* no admitted response reports ``bound_ratio > 1``.

    python benchmarks/bench_http.py --smoke --out /tmp/BENCH_http.json
    python benchmarks/bench_http.py
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import time


def build_service(tuples: int, seed: int):
    from repro.db.generators import random_relation
    from repro.db.relations import Database
    from repro.queries.language import QueryArity
    from repro.queries.relalg_compile import build_ra_query
    from repro.relalg.ast import Base, Project, Union
    from repro.service import QueryService

    database = Database.of({"E": random_relation(2, tuples, seed=seed)})
    schema = {"E": 2}
    signature = QueryArity((2,), 2)
    plans = {
        "sym": Union(Project(Base("E"), (1, 0)), Base("E")),
        "diag": Project(Base("E"), (0, 0)),
    }
    service = QueryService()
    service.catalog.register_database("main", database)
    for name, expr in plans.items():
        service.catalog.register_query(
            name,
            build_ra_query(expr, ["E"], schema),
            signature=signature,
        )
    return service


def certified_fuel(service, query: str) -> int:
    from repro.analysis.analyzer import fuel_budget
    from repro.analysis.cost import DatabaseStats

    entry = service.catalog.get_query(query)
    db_entry = service.catalog.get_database("main")
    stats = db_entry.stats
    if stats is None:
        stats = DatabaseStats.of(db_entry.database)
    return fuel_budget(entry.effective_cost, stats, default=10_000_000)


# ---------------------------------------------------------------------------
# A minimal asyncio HTTP client (one connection per request)
# ---------------------------------------------------------------------------

async def http_post(port: int, path: str, payload: dict):
    """POST ``payload``; returns (status, parsed body, wall seconds)."""
    start = time.perf_counter()
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"POST {path} HTTP/1.1\r\nHost: bench\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        raw = await reader.readexactly(length) if length else b""
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return status, json.loads(raw) if raw else None, (
        time.perf_counter() - start
    )


def percentiles(samples_s):
    from repro.obs.metrics import quantile

    ordered = sorted(s * 1000.0 for s in samples_s)
    return {
        "p50": round(quantile(ordered, 0.50), 3),
        "p95": round(quantile(ordered, 0.95), 3),
        "p99": round(quantile(ordered, 0.99), 3),
    }


# ---------------------------------------------------------------------------
# Phases
# ---------------------------------------------------------------------------

async def run_sweep(edge, levels, requests_per_level):
    rows = []
    queries = ["sym", "diag"]
    for concurrency in levels:
        semaphore = asyncio.Semaphore(concurrency)
        latencies = []
        errors = 0

        async def one(index):
            nonlocal errors
            async with semaphore:
                status, _, wall = await http_post(
                    edge.port, "/v1/query",
                    {"query": queries[index % len(queries)]},
                )
                if status != 200:
                    errors += 1
                latencies.append(wall)

        start = time.perf_counter()
        await asyncio.gather(
            *[one(i) for i in range(requests_per_level)]
        )
        total = time.perf_counter() - start
        rows.append({
            "concurrency": concurrency,
            "requests": requests_per_level,
            "errors": errors,
            "throughput_rps": round(requests_per_level / total, 2),
            "latency_ms": percentiles(latencies),
        })
    return rows


async def run_overload(edge, burst):
    admitted = []
    rejected = []

    async def one(index):
        status, payload, wall = await http_post(
            edge.port, "/v1/query", {"query": "sym"}
        )
        if status in (429, 503):
            rejected.append((status, wall, payload))
        else:
            admitted.append((status, wall, payload))

    await asyncio.gather(*[one(i) for i in range(burst)])

    rejection_statuses = {}
    for status, _, _ in rejected:
        key = str(status)
        rejection_statuses[key] = rejection_statuses.get(key, 0) + 1
    over_budget = max(1, burst - len(admitted))
    rejected_ratio = len(rejected) / over_budget
    rejection_latency = percentiles([wall for _, wall, _ in rejected])
    retry_hinted = sum(
        1 for _, _, payload in rejected
        if payload and "retry_after_s" in payload.get("error", {})
    )
    ratios = [
        payload["profile"]["bound_ratio"]
        for status, _, payload in admitted
        if status == 200 and payload.get("profile")
        and payload["profile"].get("bound_ratio") is not None
    ]
    return {
        "burst": burst,
        "capacity_fuel": edge.admission.capacity,
        "admitted": len(admitted),
        "rejected": len(rejected),
        "over_budget": over_budget,
        "rejected_ratio": round(rejected_ratio, 4),
        "rejection_statuses": rejection_statuses,
        "retry_after_hints": retry_hinted,
        "rejection_latency_ms": rejection_latency,
        "admitted_bound_ratio_max": max(ratios) if ratios else None,
        "bound_ratios_le_one": all(r <= 1.0 for r in ratios),
    }


def http_metrics_snapshot(service):
    return {
        entry["name"]: entry["values"]
        for entry in service.registry.as_dict()["metrics"]
        if entry["name"].startswith("repro_http_")
    }


def run(smoke: bool, out: str) -> None:
    from repro.http import QueryEdge, ServerConfig

    tuples = 40 if smoke else 150
    levels = [1, 4] if smoke else [1, 4, 8, 16]
    requests_per_level = 24 if smoke else 200
    # Big enough to be decisively over budget (capacity admits ~2),
    # small enough that client-observed rejection latency measures the
    # admission fast path, not loop congestion from the connect storm.
    burst = 24 if smoke else 48

    async def bench():
        # Phase 1: the latency/throughput sweep against an auto-sized
        # (never overloaded) edge.
        sweep_service = build_service(tuples, seed=7)
        sweep_edge = QueryEdge(sweep_service, ServerConfig(port=0))
        await sweep_edge.start()
        try:
            sweep = await run_sweep(sweep_edge, levels, requests_per_level)
        finally:
            await sweep_edge.shutdown()

        # Phase 2: overload.  Capacity fits exactly one 'sym'
        # certificate and the queue one waiter; a short debug delay
        # keeps the admitted request in flight so the burst really is
        # over budget.
        overload_service = build_service(tuples, seed=7)
        fuel = certified_fuel(overload_service, "sym")
        overload_edge = QueryEdge(overload_service, ServerConfig(
            port=0,
            max_inflight_fuel=fuel,
            max_queue_fuel=fuel,
            queue_timeout_s=0.2,
            rate_limit=0.0,
            debug_delay_ms=25.0,
        ))
        await overload_edge.start()
        try:
            overload = await run_overload(overload_edge, burst)
        finally:
            await overload_edge.shutdown()
        return sweep, overload, http_metrics_snapshot(sweep_service)

    sweep, overload, metrics = asyncio.run(bench())

    assert overload["rejected_ratio"] >= 0.95, (
        f"only {overload['rejected_ratio']:.0%} of the over-budget burst "
        f"was rejected at the door"
    )
    assert overload["rejection_latency_ms"]["p50"] < 50.0, (
        f"median rejection took "
        f"{overload['rejection_latency_ms']['p50']}ms; overload must be "
        f"refused fast, not discovered by timeout"
    )
    assert overload["bound_ratios_le_one"], (
        "an admitted evaluation exceeded its certified step bound"
    )

    payload = {
        "experiment": "http",
        "smoke": smoke,
        "cpu_count": os.cpu_count() or 1,
        "workload": {
            "tuples": tuples,
            "queries": ["sym", "diag"],
            "requests_per_level": requests_per_level,
        },
        "sweep": sweep,
        "overload": overload,
        "metrics": metrics,
    }
    out_path = os.path.abspath(
        out
        or os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            os.pardir,
            "BENCH_http.json",
        )
    )
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for row in sweep:
        print(
            f"c={row['concurrency']:>3} {row['throughput_rps']:>8} req/s "
            f"p50 {row['latency_ms']['p50']}ms "
            f"p95 {row['latency_ms']['p95']}ms "
            f"p99 {row['latency_ms']['p99']}ms"
        )
    print(
        f"overload: {overload['rejected']}/{overload['burst']} rejected "
        f"(ratio {overload['rejected_ratio']}) "
        f"median {overload['rejection_latency_ms']['p50']}ms"
    )
    print(f"wrote {out_path}")


def main(argv) -> None:
    args = list(argv[1:])
    smoke = False
    out = None
    index = 0
    while index < len(args):
        arg = args[index]
        if arg == "--smoke":
            smoke = True
        elif arg == "--out":
            index += 1
            out = args[index]
        else:
            raise SystemExit(f"unknown argument {arg!r}")
        index += 1
    run(smoke, out)


if __name__ == "__main__":
    sys.path.insert(
        0,
        os.path.join(
            os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"
        ),
    )
    main(sys.argv)
