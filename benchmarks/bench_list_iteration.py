"""E6 (Section 2.3): list-iteration programming.

Parity and Length are constant-size programs — "the iterative machinery is
taken from the data" — so the reduction cost grows with the list, not the
program.  Both engines are measured.
"""

import pytest

from repro.lam.combinators import (
    boolean_list,
    boolean_value,
    length_term,
    numeral_value,
    parity_term,
)
from repro.lam.nbe import nbe_normalize
from repro.lam.reduce import normalize
from repro.lam.terms import app, term_size


def test_program_size_is_constant():
    assert term_size(parity_term()) < 60
    assert term_size(length_term()) < 40


@pytest.mark.parametrize("length", [16, 64, 256])
def test_parity_nbe(benchmark, length):
    values = [i % 3 == 0 for i in range(length)]
    term = app(parity_term(), boolean_list(values))
    result = benchmark(nbe_normalize, term)
    assert boolean_value(result) == (sum(values) % 2 == 1)


@pytest.mark.parametrize("length", [16, 64])
def test_parity_smallstep(benchmark, length):
    values = [i % 3 == 0 for i in range(length)]
    term = app(parity_term(), boolean_list(values))

    def run():
        return normalize(term)

    outcome = benchmark(run)
    assert boolean_value(outcome.term) == (sum(values) % 2 == 1)


@pytest.mark.parametrize("length", [16, 64, 256])
def test_length_nbe(benchmark, length):
    term = app(length_term(), boolean_list([True] * length))
    result = benchmark(nbe_normalize, term)
    assert numeral_value(result) == length
