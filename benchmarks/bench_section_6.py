"""E5 (Section 6): type reconstruction at fixed order.

Three series:

* TLC= reconstruction on deep application chains — near-linear;
* core-ML= reconstruction on the let-pairing chain — exponential in the
  chain depth (principal type tree size doubles per let), the [31, 32]
  worst case that bounding the functionality order does not remove;
* core-ML= reconstruction on 3-SAT-shaped low-order instances — the
  Section 6 instance style (order <= 4, arity growing with the formula).
"""

import pytest

from repro.hardness.gadgets import (
    let_pairing_chain,
    principal_type_tree_size,
    tlc_linear_family,
)
from repro.hardness.reduction import cnf_to_ml_term
from repro.hardness.sat import random_cnf
from repro.types.infer import infer
from repro.types.ml import ml_infer


@pytest.mark.parametrize("depth", [64, 256, 1024])
def test_tlc_reconstruction(benchmark, depth):
    term = tlc_linear_family(depth)
    benchmark(infer, term)


@pytest.mark.parametrize("depth", [4, 8, 12])
def test_ml_pairing_chain_reconstruction(benchmark, depth):
    term = let_pairing_chain(depth)
    result = benchmark(ml_infer, term)
    tree = principal_type_tree_size(
        result.subst, result.occurrence_types[()]
    )
    assert tree >= 2 ** depth  # the exponential principal type


@pytest.mark.parametrize("clauses", [8, 16, 32])
def test_ml_sat_instances(benchmark, clauses):
    term = cnf_to_ml_term(random_cnf(6, clauses, seed=clauses))
    result = benchmark(ml_infer, term)
    assert result.derivation_order() <= 4  # within the MLI=1 order bound
