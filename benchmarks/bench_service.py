"""The update-heavy service benchmark: provenance-keyed caching vs
whole-version invalidation.

Workload: a two-relation database where one relation (``R2``) is bumped
every round while the served plans read mostly ``R1``.  Two identical
services run the same request/update trace:

* **provenance** — plans registered with their arity signatures, so each
  carries a read-set certificate (TLI023) and the cache keys on the
  per-relation version sub-vector;
* **legacy** — the same plans registered with ``check=False`` (no
  certificate), so the cache keys on the global database version and
  every update invalidates everything.

Gates (asserted unconditionally, smoke and full):

* the provenance service's hit rate strictly beats the legacy service's;
* every update round that touches only the unscanned relation serves the
  ``R1``-only plan from cache (``provenance_saves`` counts each one);
* both services return identical relations for every request;
* no evaluation reports an observed/bound ratio > 1 (Theorem 5.1).

A second section gates the cost of observability itself: the same
evaluation-heavy trace runs on a service with the flight recorder and
tracing enabled and on one with both disabled (best-of-3 each), and the
enabled service must keep at least 95% of the disabled throughput.

The results merge into ``BENCH_service.json`` under ``update_heavy``
and ``observability_overhead``.

    python benchmarks/bench_service.py --smoke --out /tmp/BENCH_service.json
    python benchmarks/bench_service.py
"""

from __future__ import annotations

import json
import os
import sys
import time


SWAP = r"\R1. \R2. \c. \n. R1 (\x y T. c y x T) n"  # reads R1 only
INTERSECT = (
    r"\R1. \R2. \c. \n. R1 (\x y T. "
    r"R2 (\u v A. Eq x u (Eq y v (c x y T) A) A) T) n"
)


def build_service(database, *, certified: bool):
    from repro.lam.parser import parse
    from repro.queries.language import QueryArity
    from repro.service import QueryService

    signature = QueryArity((2, 2), 2)
    service = QueryService()
    service.catalog.register_database("main", database)
    if certified:
        service.catalog.register_query(
            "swap", parse(SWAP), signature=signature
        )
        service.catalog.register_query(
            "both", parse(INTERSECT), signature=signature
        )
    else:
        service.catalog.register_query("swap", parse(SWAP), check=False)
        service.catalog.register_query(
            "both", parse(INTERSECT), check=False
        )
    return service


def run_trace(service, updates, *, queries, repeats, arity):
    """Drive ``rounds`` of (query burst, bump R2); returns the stats."""
    from repro.db.relations import Relation
    from repro.service import QueryRequest

    results = []
    ratios = []
    start = time.perf_counter()
    for round_index in range(updates + 1):
        for _ in range(repeats):
            for query in queries:
                response = service.execute(
                    QueryRequest(
                        query=query, database="main", arity=arity
                    )
                )
                assert response.ok, response.error
                results.append(
                    (query, round_index, response.relation.as_set())
                )
                profile = response.profile or {}
                ratio = profile.get("bound_ratio")
                if ratio is not None:
                    ratios.append(ratio)
        if round_index < updates:
            # The update-heavy part: only the relation the swap plan
            # never scans changes.
            service.apply_update(
                "main",
                {
                    "R2": Relation.from_tuples(
                        2, [(f"u{round_index}", f"v{round_index}")]
                    )
                },
            )
    wall_s = time.perf_counter() - start
    cache = service.cache.stats()
    return {
        "wall_s": round(wall_s, 4),
        "cache": cache.as_dict(),
        "results": results,
        "bound_ratios": ratios,
    }


def run_paired_trace(database, *, updates):
    """One paired timing run: two identical services — flight recorder
    plus tracing enabled vs both disabled — execute the same update-heavy
    trace, every round timed back-to-back on both services in alternating
    order.  Each round's update invalidates the plan on both sides, so
    both timed executions are real evaluations milliseconds apart —
    scheduler and CPU-frequency drift (which on a shared host moves
    whole 100ms windows by ±10%) hits both sides of a pair alike and
    cancels in the per-round ratio.

    The GC stays disabled inside the timed trace (and runs between
    traces): the instrumented service allocates more, so collection
    passes would otherwise trigger inside its timed slices while
    sweeping garbage both services produced, billing shared work to one
    configuration.

    Returns ``(ratios, disabled_s, enabled_s, flight_stats)`` where
    ``ratios`` has one disabled/enabled wall ratio per round.
    """
    import gc

    from repro.db.relations import Relation
    from repro.obs.flight import FlightRecorder
    from repro.service import QueryRequest

    disabled = build_service(database, certified=True)
    enabled = build_service(database, certified=True)
    flight = enabled.enable_flight(FlightRecorder(512))
    ratios = []
    spent = {id(disabled): 0.0, id(enabled): 0.0}
    flip = False
    gc.collect()
    gc.disable()
    try:
        with disabled, enabled:
            for round_index in range(updates + 1):
                order = (
                    (enabled, disabled) if flip else (disabled, enabled)
                )
                flip = not flip
                walls = {}
                for service in order:
                    start = time.perf_counter()
                    response = service.execute(
                        QueryRequest(
                            query="both", database="main", arity=2
                        )
                    )
                    walls[id(service)] = time.perf_counter() - start
                    assert response.ok, response.error
                ratios.append(walls[id(disabled)] / walls[id(enabled)])
                spent[id(disabled)] += walls[id(disabled)]
                spent[id(enabled)] += walls[id(enabled)]
                if round_index < updates:
                    update = {
                        "R2": Relation.from_tuples(
                            2, [(f"u{round_index}", f"v{round_index}")]
                        )
                    }
                    disabled.apply_update("main", update)
                    enabled.apply_update("main", update)
            stats = flight.snapshot()
    finally:
        gc.enable()
    return ratios, spent[id(disabled)], spent[id(enabled)], stats


def run_observability_overhead(smoke: bool) -> dict:
    """Gate the cost of observability: the flight-recorder-and-tracing
    service must keep at least 95% of the uninstrumented throughput.

    The quadratic intersect plan over 128-tuple relations puts each
    evaluation in the 10ms range, so the fixed per-request
    instrumentation cost (span machinery, report assembly, flight
    admission) is measured against realistic work, not micro-requests.
    The gate statistic is the **median of per-round paired ratios**
    (see :func:`run_paired_trace`): back-to-back pairing plus a median
    over dozens of rounds is robust to the multi-percent timing noise
    of a shared host, where comparing two separately-timed windows is
    not.
    """
    import statistics

    from repro.db.generators import random_database

    updates = 23 if smoke else 47
    database = random_database(
        [2, 2], [128, 128], universe_size=20, seed=31
    )

    run_paired_trace(database, updates=2)  # untimed warm-up
    ratios, disabled_s, enabled_s, flight_stats = run_paired_trace(
        database, updates=updates
    )
    assert flight_stats["admitted_total"] > 0, (
        "the instrumented run retained no flight records",
        flight_stats,
    )
    ratio = statistics.median(ratios)
    rounds = len(ratios)
    enabled_rps = rounds / enabled_s
    disabled_rps = rounds / disabled_s
    assert ratio >= 0.95, (
        f"observability overhead gate: instrumented throughput is below "
        f"95% of uninstrumented (median paired ratio {ratio:.3f} over "
        f"{rounds} rounds, enabled {enabled_rps:.1f} req/s vs disabled "
        f"{disabled_rps:.1f} req/s)"
    )
    return {
        "rounds": rounds,
        "enabled": {
            "wall_s": round(enabled_s, 4),
            "throughput_rps": round(enabled_rps, 1),
            "flight": flight_stats,
        },
        "disabled": {
            "wall_s": round(disabled_s, 4),
            "throughput_rps": round(disabled_rps, 1),
        },
        "throughput_ratio": round(ratio, 4),
        "ratio_spread": [
            round(min(ratios), 4),
            round(max(ratios), 4),
        ],
        "gate": "median per-round enabled/disabled throughput >= 0.95",
    }


def run(smoke: bool, out: str | None) -> None:
    from repro.db.generators import random_database

    updates = 4 if smoke else 24
    repeats = 2 if smoke else 8
    tuples = 8 if smoke else 40
    database = random_database(
        [2, 2], [tuples, tuples // 2], universe_size=8, seed=29
    )
    queries = ("swap", "both")

    traces = {}
    for label, certified in (("provenance", True), ("legacy", False)):
        service = build_service(database, certified=certified)
        with service:
            traces[label] = run_trace(
                service,
                updates,
                queries=queries,
                repeats=repeats,
                arity=2,
            )

    # Both services must serve identical relations for the whole trace.
    assert (
        traces["provenance"]["results"] == traces["legacy"]["results"]
    ), "provenance-keyed caching changed a served result"

    prov_cache = traces["provenance"]["cache"]
    legacy_cache = traces["legacy"]["cache"]
    # Every post-update round serves the R1-only plan from cache in the
    # provenance service; legacy recomputes both plans every round.
    assert prov_cache["hit_rate"] > legacy_cache["hit_rate"], (
        prov_cache,
        legacy_cache,
    )
    assert prov_cache["provenance_saves"] >= updates, prov_cache
    assert legacy_cache["provenance_saves"] == 0, legacy_cache
    for label, trace in traces.items():
        for ratio in trace["bound_ratios"]:
            assert ratio <= 1.0, (label, ratio)

    payload = {
        "smoke": smoke,
        "workload": {
            "updates": updates,
            "repeats_per_round": repeats,
            "queries": list(queries),
            "db_tuples": {
                name: len(relation) for name, relation in database
            },
        },
        "provenance": {
            "wall_s": traces["provenance"]["wall_s"],
            "cache": prov_cache,
        },
        "legacy": {
            "wall_s": traces["legacy"]["wall_s"],
            "cache": legacy_cache,
        },
        "hit_rate_gain": round(
            prov_cache["hit_rate"] - legacy_cache["hit_rate"], 4
        ),
        "bound_ratio_max": max(
            (
                ratio
                for trace in traces.values()
                for ratio in trace["bound_ratios"]
            ),
            default=None,
        ),
    }

    overhead = run_observability_overhead(smoke)

    out_path = os.path.abspath(
        out
        or os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            os.pardir,
            "BENCH_service.json",
        )
    )
    merged = {}
    if os.path.exists(out_path):
        with open(out_path, "r", encoding="utf-8") as handle:
            merged = json.load(handle)
    merged["update_heavy"] = payload
    merged["observability_overhead"] = overhead
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"update-heavy: provenance hit_rate={prov_cache['hit_rate']} "
        f"(saves={prov_cache['provenance_saves']}) vs "
        f"legacy hit_rate={legacy_cache['hit_rate']}"
    )
    print(
        f"observability overhead: enabled "
        f"{overhead['enabled']['throughput_rps']} req/s vs disabled "
        f"{overhead['disabled']['throughput_rps']} req/s "
        f"(ratio {overhead['throughput_ratio']})"
    )
    print(f"wrote {out_path}")


def main(argv) -> None:
    args = list(argv[1:])
    smoke = False
    out = None
    index = 0
    while index < len(args):
        arg = args[index]
        if arg == "--smoke":
            smoke = True
        elif arg == "--out":
            index += 1
            out = args[index]
        else:
            raise SystemExit(f"unknown argument {arg!r}")
        index += 1
    run(smoke, out)


if __name__ == "__main__":
    sys.path.insert(
        0,
        os.path.join(
            os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"
        ),
    )
    main(sys.argv)
