"""The sharded-execution benchmark: speedup and per-shard bound ratios.

Runs a partitionable workload twice — in-process and sharded over the
service's worker pool — and writes ``BENCH_shard.json``:

* per query: both wall times, the speedup, whether the canonically
  merged sharded result is tuple-for-tuple equal to the single-shard
  result, and the per-shard rows (steps, fuel, observed/bound ratio);
* the service's ``repro_shard_*`` metrics snapshot.

Correctness is asserted unconditionally.  Per-shard observed/bound
ratios must stay <= 1 on term plans (each shard evaluation is a
Theorem 5.1 run over its own shard database).  The >= 2x speedup gate
only applies to full (non ``--smoke``) runs on >= 4 CPUs: evaluation is
pure Python, so shard parallelism needs real cores.

    python benchmarks/bench_shard.py --smoke --out /tmp/BENCH_shard.json
    python benchmarks/bench_shard.py --shards 4
"""

from __future__ import annotations

import json
import os
import sys
import time


def build_catalog(tuples: int, seed: int):
    from repro.db.generators import random_relation
    from repro.db.relations import Database, Relation
    from repro.queries.fixpoint import transitive_closure_query
    from repro.queries.language import QueryArity
    from repro.queries.relalg_compile import build_ra_query
    from repro.relalg.ast import Base, Project, Union
    from repro.service import Catalog

    relation = random_relation(2, tuples, seed=seed)
    database = Database.of({"E": relation})
    # A small ring for the fixpoint query (stage count is what matters,
    # not raw tuple volume).
    ring = max(4, min(12, tuples // 8))
    edges = Relation.from_tuples(
        2, [(f"n{i}", f"n{(i + 1) % ring}") for i in range(ring)]
    )
    graph = Database.of({"E": edges})

    schema = {"E": 2}
    signature = QueryArity((2,), 2)
    plans = {
        # Symmetric closure: two parallel folds of E (union of a
        # projection with the identity copy) — partitionable.
        "sym": Union(Project(Base("E"), (1, 0)), Base("E")),
        # Left column as a diagonal — one fold, partitionable.
        "diag": Project(Base("E"), (0, 0)),
        # Both orientations plus the diagonal: three parallel folds.
        "wide": Union(
            Union(Project(Base("E"), (1, 0)), Base("E")),
            Project(Base("E"), (1, 1)),
        ),
    }
    catalog = Catalog()
    catalog.register_database("main", database)
    catalog.register_database("graph", graph)
    for name, expr in plans.items():
        catalog.register_query(
            name,
            build_ra_query(expr, ["E"], schema),
            signature=signature,
        )
    catalog.register_query("tc", transitive_closure_query("E"))
    return catalog, database, graph


def run(smoke: bool, out: str, shards: int, partitioner: str) -> None:
    from repro.service import QueryRequest, QueryService, ShardPolicy
    from repro.shard.partition import canonical_relation

    tuples = 60 if smoke else 400
    rounds = 1 if smoke else 3
    catalog, database, graph = build_catalog(tuples, seed=7)
    policy = ShardPolicy(shards=shards, partitioner=partitioner)
    term_queries = ("sym", "diag", "wide")
    cases = [(q, "main") for q in term_queries] + [("tc", "graph")]

    rows = []
    with QueryService(catalog) as service:
        # Spawn the pool outside the timed region.
        service.execute(
            QueryRequest(query="diag", database="main", shard_policy=policy)
        )
        for query, db_name in cases:
            local_s = sharded_s = 0.0
            shard_rows = None
            match = True
            for _ in range(rounds):
                # Version-bump so every timed execution is a cache miss
                # (including vs the warm-up request); worker snapshots
                # stay warm — they are keyed by content digest.
                service.update_database(
                    db_name, database if db_name == "main" else graph
                )
                start = time.perf_counter()
                local = service.execute(
                    QueryRequest(query=query, database=db_name)
                )
                local_s += time.perf_counter() - start
                start = time.perf_counter()
                sharded = service.execute(
                    QueryRequest(
                        query=query, database=db_name, shard_policy=policy
                    )
                )
                sharded_s += time.perf_counter() - start
                assert local.ok and sharded.ok, (
                    query, local.status, local.error,
                    sharded.status, sharded.error,
                )
                match = match and (
                    canonical_relation(local.relation).tuples
                    == canonical_relation(sharded.relation).tuples
                )
                shard_profile = (sharded.profile or {}).get("shard")
                assert shard_profile is not None, (
                    f"{query} did not take the sharded path"
                )
                shard_rows = shard_profile["rows"]
            assert match, f"sharded result diverged for {query!r}"
            if query in term_queries:
                for row in shard_rows:
                    ratio = row.get("bound_ratio")
                    assert ratio is None or ratio <= 1.0, (query, row)
            rows.append(
                {
                    "query": query,
                    "database": db_name,
                    "mode": shard_profile["mode"],
                    "code": shard_profile["code"],
                    "match": match,
                    "local_wall_s": round(local_s, 4),
                    "sharded_wall_s": round(sharded_s, 4),
                    "speedup": (
                        round(local_s / sharded_s, 3) if sharded_s else None
                    ),
                    "shard_rows": shard_rows,
                }
            )
        metrics = {
            entry["name"]: entry["values"]
            for entry in service.registry.as_dict()["metrics"]
            if entry["name"].startswith("repro_shard_")
        }

    cpu_count = os.cpu_count() or 1
    speedups = [r["speedup"] for r in rows if r["speedup"] is not None]
    payload = {
        "experiment": "shard",
        "smoke": smoke,
        "cpu_count": cpu_count,
        "shards": shards,
        "partitioner": partitioner,
        "workload": {
            "tuples": tuples,
            "rounds": rounds,
            "queries": [query for query, _ in cases],
        },
        "rows": rows,
        "speedup_max": max(speedups) if speedups else None,
        "metrics": metrics,
    }
    if not smoke and cpu_count >= 4:
        assert payload["speedup_max"] >= 2.0, (
            f"expected >= 2x speedup with {shards} shards on "
            f"{cpu_count} CPUs, got {payload['speedup_max']}"
        )

    out_path = os.path.abspath(
        out
        or os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            os.pardir,
            "BENCH_shard.json",
        )
    )
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for row in rows:
        print(
            f"{row['query']:>6} [{row['mode']}] "
            f"local {row['local_wall_s']}s sharded {row['sharded_wall_s']}s "
            f"speedup {row['speedup']}x match={row['match']}"
        )
    print(f"wrote {out_path}")


def main(argv) -> None:
    args = list(argv[1:])
    smoke = False
    out = None
    shards = 4
    partitioner = "hash"
    index = 0
    while index < len(args):
        arg = args[index]
        if arg == "--smoke":
            smoke = True
        elif arg == "--out":
            index += 1
            out = args[index]
        elif arg == "--shards":
            index += 1
            shards = int(args[index])
        elif arg == "--partitioner":
            index += 1
            partitioner = args[index]
        else:
            raise SystemExit(f"unknown argument {arg!r}")
        index += 1
    run(smoke, out, shards, partitioner)


if __name__ == "__main__":
    sys.path.insert(
        0,
        os.path.join(
            os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"
        ),
    )
    main(sys.argv)
