"""E1 (Theorem 4.1): FO-queries are TLI=0 queries.

Measures the full pipeline — relational algebra compiled to a TLI=0 lambda
term and evaluated by reduction — against the baseline engine, on the same
query suite.  The claim being reproduced is *expressibility* (the answers
agree; asserted inside each benchmark); the timings document the constant-
factor cost of running queries by beta/delta reduction.
"""

import pytest

from repro.eval.driver import run_query
from repro.eval.materialize import run_ra_query_materialized
from repro.queries.relalg_compile import build_ra_query, schema_of
from repro.relalg.ast import Base, ColumnEqualsColumn, schema_with_derived
from repro.relalg.engine import evaluate_ra

SUITE = {
    "intersection": Base("R1").intersect(Base("R2")),
    "union": Base("R1").union(Base("R2")),
    "difference": Base("R1").minus(Base("R2")),
    "select_project": Base("R1")
    .where(ColumnEqualsColumn(0, 1))
    .project(0),
    "join": Base("R1").times(Base("R2")).where(ColumnEqualsColumn(1, 2)),
}


@pytest.mark.parametrize("name", sorted(SUITE))
def test_baseline_engine(benchmark, bench_db, name):
    expr = SUITE[name]
    result = benchmark(evaluate_ra, expr, bench_db)
    assert result.arity == expr.arity(
        schema_with_derived(schema_of(bench_db))
    )


@pytest.mark.parametrize("name", sorted(SUITE))
def test_tli0_whole_term_reduction(benchmark, bench_db, name):
    expr = SUITE[name]
    schema = schema_of(bench_db)
    query = build_ra_query(expr, ["R1", "R2"], schema)
    arity = expr.arity(schema_with_derived(schema))
    expected = evaluate_ra(expr, bench_db)

    def run():
        return run_query(query, bench_db, arity=arity).relation

    result = benchmark(run)
    assert result.same_set(expected)  # Theorem 4.1: same query


@pytest.mark.parametrize("name", sorted(SUITE))
def test_tli0_materialized_reduction(benchmark, bench_db, name):
    expr = SUITE[name]
    expected = evaluate_ra(expr, bench_db)

    def run():
        return run_ra_query_materialized(expr, bench_db).relation

    result = benchmark(run)
    assert result.same_set(expected)
