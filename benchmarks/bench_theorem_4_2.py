"""E3 (Theorem 4.2): PTIME (fixpoint) queries are TLI=1 / MLI=1 queries.

Transitive closure — the canonical PTIME-complete-under-FO-reductions
query — compiled to a lambda term and evaluated, against the Datalog
baseline engine (naive and semi-naive).  Answers asserted equal.
"""

import pytest

from repro.datalog.ast import Literal, Program, RVar, Rule
from repro.datalog.engine import evaluate_program
from repro.eval.ptime import run_fixpoint_query
from repro.queries.fixpoint import transitive_closure_query

V = RVar

TC_PROGRAM = Program.of(
    [
        Rule(Literal("tc", (V("x"), V("y"))), (Literal("E", (V("x"), V("y"))),)),
        Rule(
            Literal("tc", (V("x"), V("y"))),
            (Literal("E", (V("x"), V("z"))), Literal("tc", (V("z"), V("y")))),
        ),
    ],
    {"E": 2},
)


@pytest.mark.parametrize("strategy", ["seminaive", "naive"])
def test_datalog_baseline(benchmark, bench_graph_db, strategy):
    result = benchmark(
        evaluate_program, TC_PROGRAM, bench_graph_db, strategy=strategy
    )
    assert len(result["tc"]) > 0


@pytest.mark.parametrize("style", ["tli", "mli"])
def test_tli1_fixpoint_evaluation(benchmark, bench_graph_db, style):
    query = transitive_closure_query("E")
    expected = evaluate_program(TC_PROGRAM, bench_graph_db)["tc"]

    def run():
        return run_fixpoint_query(
            query, bench_graph_db, style=style
        ).relation

    result = benchmark(run)
    assert result.same_set(expected)  # Theorem 4.2: same query
