"""E2 (Theorem 5.1): TLI=0 queries are FO-queries.

Measures the Section 5.2 pipeline: translating a TLI=0 term into a
first-order formula (data-independent preprocessing, O(1) in the database)
and evaluating the formula, against direct reduction of the same term.
Answers are asserted equal inside each benchmark.
"""

import pytest

from repro.eval.driver import run_query
from repro.eval.fo_translation import translate_query
from repro.lam.parser import parse
from repro.queries.language import QueryArity

SUITE = {
    "identity": (r"\R1. \R2. R1", QueryArity((2, 2), 2)),
    "swap": (
        r"\R1. \R2. \c. \n. R1 (\x y T. c y x T) n",
        QueryArity((2, 2), 2),
    ),
    "diagonal": (
        r"\R1. \R2. \c. \n. R1 (\x y T. Eq x y (c x x T) T) n",
        QueryArity((2, 2), 2),
    ),
    "first_tuple": (
        r"\R1. \R2. \c. \n. c (R1 (\x y T. x) o1) (R1 (\x y T. y) o1) n",
        QueryArity((2, 2), 2),
    ),
}

TRANSLATIONS = {
    name: translate_query(parse(source), arity)
    for name, (source, arity) in SUITE.items()
}


@pytest.mark.parametrize("name", sorted(SUITE))
def test_translation_preprocessing(benchmark, name):
    """Translating the query term — O(1) data complexity."""
    source, arity = SUITE[name]
    query = parse(source)
    benchmark(translate_query, query, arity)


@pytest.mark.parametrize("name", sorted(SUITE))
def test_fo_evaluation(benchmark, bench_db, name):
    """Evaluating the translated formula over the database."""
    source, arity = SUITE[name]
    translation = TRANSLATIONS[name]
    expected = run_query(
        parse(source), bench_db, arity=arity.output
    ).relation

    result = benchmark(translation.evaluate, bench_db)
    assert result.same_set(expected)  # Theorem 5.1: same query


@pytest.mark.parametrize("name", sorted(SUITE))
def test_direct_reduction(benchmark, bench_db, name):
    """The comparator: evaluating the same term by reduction."""
    source, arity = SUITE[name]
    query = parse(source)

    def run():
        return run_query(query, bench_db, arity=arity.output).relation

    benchmark(run)
