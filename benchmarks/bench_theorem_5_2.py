"""E4 (Theorem 5.2): TLI=1 evaluation is PTIME — with the right strategy.

Two measurements on the same compiled transitive-closure term:

* the Section 5.3 evaluator (reduction with materialized stages) on a
  growing chain family — the per-size timings grow polynomially;
* naive reduction of the whole term (lazy NBE, and small-step normal
  order via its step counter) on *tiny* instances — the work explodes
  with the instance, which is the paper's observation that "most reduction
  strategies required an exponential number of steps".

The polynomial-vs-exponential *shape* comparison across sizes is printed
by EXPERIMENTS.md's harness; here each point is a benchmark.
"""

import pytest

from repro.db.encode import encode_database
from repro.db.generators import chain_graph_relation
from repro.db.relations import Database, Relation
from repro.eval.ptime import run_fixpoint_query
from repro.lam.nbe import nbe_normalize
from repro.lam.reduce import normalize
from repro.lam.terms import app
from repro.queries.fixpoint import build_fixpoint_query, transitive_closure_query

QUERY = transitive_closure_query("E")
TLI_TERM = build_fixpoint_query(QUERY, style="tli")
MLI_TERM = build_fixpoint_query(QUERY, style="mli")


@pytest.mark.parametrize("nodes", [4, 6, 8])
def test_ptime_evaluator_scaling(benchmark, nodes):
    db = Database.of({"E": chain_graph_relation(nodes)})

    def run():
        return run_fixpoint_query(QUERY, db, style="tli").relation

    result = benchmark(run)
    assert len(result) == nodes * (nodes - 1) // 2


@pytest.mark.parametrize("edges", [0, 1])
def test_naive_nbe_blowup(benchmark, edges):
    """Whole-term lazy reduction: already substantial at one edge (the
    same evaluator finishes the 8-node chain instantly when driven
    stage-wise above; two edges is minutes per run, so it lives only in
    the E4 term-growth series)."""
    rows = [(f"o{i}", f"o{i + 1}") for i in range(1, edges + 1)]
    db = Database.of({"E": Relation.from_tuples(2, rows)})
    applied = app(MLI_TERM, *encode_database(db))

    def run():
        return nbe_normalize(applied, max_depth=2_000_000)

    benchmark(run)


def test_smallstep_term_growth():
    """Not a timing: normal-order reduction of the one-edge instance makes
    the term *grow* (each step duplicates parts of the stage tower), while
    the empty instance normalizes in a handful of steps — the Section 5
    observation that naive strategies explode."""
    from repro.lam.reduce import step
    from repro.lam.terms import term_size

    empty = Database.of({"E": Relation.from_tuples(2, [])})
    outcome = normalize(app(MLI_TERM, *encode_database(empty)))
    assert outcome.steps < 100

    one = Database.of({"E": Relation.from_tuples(2, [("o1", "o2")])})
    current = app(MLI_TERM, *encode_database(one))
    start = term_size(current)
    for _ in range(300):
        result = step(current)
        if result is None:  # pragma: no cover - it does not normalize here
            break
        current = result[0]
    growth = term_size(current) / start
    print(f"\nterm growth after 300 normal-order steps: {growth:.1f}x")
    assert growth > 10
