"""Shared workloads for the benchmark suite.

Each ``bench_*`` module regenerates one experiment from EXPERIMENTS.md
(E1-E7).  The paper is a theory paper — its "evaluation" is a set of
theorems — so each benchmark measures the executable form of one claim:
who wins, and how the cost curves grow.  Run with:

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.db.generators import random_database, random_graph_relation
from repro.db.relations import Database


@pytest.fixture(scope="session")
def bench_db() -> Database:
    """The standard two-relation database for the FO-level experiments."""
    return random_database([2, 2], [8, 6], universe_size=5, seed=101)


@pytest.fixture(scope="session")
def bench_graph_db() -> Database:
    """The standard graph for the fixpoint experiments."""
    return Database.of(
        {"E": random_graph_relation(7, 0.25, seed=102)}
    )
