"""The experiment harness: regenerates every EXPERIMENTS.md series.

The paper is a theory paper — its evaluation is a set of theorems — so each
experiment checks one claim's executable form and prints the measured
series next to the expected shape.  Run:

    python benchmarks/run_experiments.py            # all experiments
    python benchmarks/run_experiments.py E1 E4      # a subset
"""

from __future__ import annotations

import sys
import time


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def header(name: str, claim: str) -> None:
    print(f"\n{'=' * 72}\n{name}: {claim}\n{'=' * 72}")


# ---------------------------------------------------------------------------
# E1 — Theorem 4.1
# ---------------------------------------------------------------------------

def experiment_e1() -> None:
    header(
        "E1 (Theorem 4.1)",
        "every FO-query is a TLI=0 (MLI=0) query",
    )
    from repro.db.generators import random_database
    from repro.eval.materialize import run_ra_query_materialized
    from repro.queries.language import (
        QueryArity,
        is_mli_query_term,
        is_tli_query_term,
    )
    from repro.queries.relalg_compile import build_ra_query
    from repro.relalg.ast import Base, ColumnEqualsColumn, schema_with_derived
    from repro.relalg.engine import evaluate_ra

    suite = {
        "intersection": Base("R1").intersect(Base("R2")),
        "union": Base("R1").union(Base("R2")),
        "difference": Base("R1").minus(Base("R2")),
        "join": Base("R1").times(Base("R2")).where(ColumnEqualsColumn(1, 2)),
        "select+project": Base("R1").where(ColumnEqualsColumn(0, 1)).project(0),
    }
    schema = {"R1": 2, "R2": 2}
    print(f"{'query':>16} {'TLI=0?':>7} {'MLI=0?':>7} "
          f"{'agree':>6} {'lambda ms':>10} {'baseline ms':>12}")
    for size in (8, 16):
        db = random_database([2, 2], [size, size - 2],
                             universe_size=6, seed=100 + size)
        for name, expr in suite.items():
            arity = expr.arity(schema_with_derived(schema))
            query = build_ra_query(expr, ["R1", "R2"], schema)
            signature = QueryArity((2, 2), arity)
            tli = is_tli_query_term(query, signature, 0)
            mli = is_mli_query_term(query, signature, 0)
            got, lam_t = timed(
                lambda e=expr: run_ra_query_materialized(e, db).relation
            )
            expected, base_t = timed(lambda e=expr: evaluate_ra(e, db))
            agree = got.same_set(expected)
            print(f"{name + f'/n={size}':>16} {str(tli):>7} {str(mli):>7} "
                  f"{str(agree):>6} {lam_t * 1000:>10.1f} {base_t * 1000:>12.2f}")
    print("expected shape: all True; lambda evaluation slower by a "
          "constant factor.")


# ---------------------------------------------------------------------------
# E2 — Theorem 5.1
# ---------------------------------------------------------------------------

def experiment_e2() -> None:
    header(
        "E2 (Theorem 5.1)",
        "every TLI=0 (MLI=0) query is an FO-query",
    )
    from repro.db.generators import random_database
    from repro.eval.driver import run_query
    from repro.eval.fo_translation import translate_query
    from repro.folog.formulas import formula_size
    from repro.lam.parser import parse
    from repro.queries.language import QueryArity

    suite = {
        "identity": (r"\R1. \R2. R1", 2),
        "swap": (r"\R1. \R2. \c. \n. R1 (\x y T. c y x T) n", 2),
        "diagonal": (
            r"\R1. \R2. \c. \n. R1 (\x y T. Eq x y (c x x T) T) n", 2
        ),
        "first-tuple": (
            r"\R1. \R2. \c. \n. c (R1 (\x y T. x) o1) (R1 (\x y T. y) o1) n",
            2,
        ),
        "intersection": (
            r"\R1. \R2. \c. \n. R1 (\x y T. "
            r"R2 (\u v A. Eq x u (Eq y v (c x y T) A) A) T) n",
            2,
        ),
    }
    print(f"{'query':>14} {'formula nodes':>14} {'agree (3 dbs)':>14} "
          f"{'translate ms':>13} {'FO-eval ms':>11}")
    for name, (source, arity) in suite.items():
        query = parse(source)
        translation, trans_t = timed(
            lambda q=query, a=arity: translate_query(
                q, QueryArity((2, 2), a)
            )
        )
        agree = True
        eval_total = 0.0
        for seed in (1, 2, 3):
            db = random_database([2, 2], [5, 4], universe_size=4, seed=seed)
            direct = run_query(query, db, arity=arity).relation
            got, eval_t = timed(lambda d=db: translation.evaluate(d))
            eval_total += eval_t
            agree = agree and got.same_set(direct)
        print(f"{name:>14} {formula_size(translation.formula):>14} "
              f"{str(agree):>14} {trans_t * 1000:>13.1f} "
              f"{eval_total / 3 * 1000:>11.1f}")
    print("expected shape: all agree; the translation is computed once per "
          "query (data-independent preprocessing).")


# ---------------------------------------------------------------------------
# E3 — Theorem 4.2
# ---------------------------------------------------------------------------

def experiment_e3() -> None:
    header(
        "E3 (Theorem 4.2)",
        "every PTIME (fixpoint) query is a TLI=1 (MLI=1) query",
    )
    from repro.datalog.ast import Literal, Program, RVar, Rule
    from repro.datalog.engine import evaluate_program
    from repro.db.generators import random_graph_relation
    from repro.db.relations import Database
    from repro.eval.ptime import run_fixpoint_query
    from repro.queries.fixpoint import (
        build_fixpoint_query,
        transitive_closure_query,
    )
    from repro.queries.language import (
        QueryArity,
        is_mli_query_term,
        is_tli_query_term,
    )

    V = RVar
    program = Program.of(
        [
            Rule(Literal("tc", (V("x"), V("y"))),
                 (Literal("E", (V("x"), V("y"))),)),
            Rule(Literal("tc", (V("x"), V("y"))),
                 (Literal("E", (V("x"), V("z"))),
                  Literal("tc", (V("z"), V("y"))))),
        ],
        {"E": 2},
    )
    query = transitive_closure_query("E")
    signature = QueryArity((2,), 2)
    tli = build_fixpoint_query(query, "tli")
    mli = build_fixpoint_query(query, "mli")
    print(f"TLI-style term:  TLI=1 member {is_tli_query_term(tli, signature, 1)}, "
          f"TLI=0 member {is_tli_query_term(tli, signature, 0)}")
    print(f"MLI-style term:  MLI=1 member {is_mli_query_term(mli, signature, 1)}, "
          f"TLI=1 member {is_tli_query_term(mli, signature, 1)} "
          f"(Copy gadgets vs let-polymorphism)")
    print(f"\n{'nodes':>6} {'tuples':>7} {'agree':>6} "
          f"{'lambda ms':>10} {'datalog ms':>11}")
    for nodes in (5, 7, 9):
        graph = random_graph_relation(nodes, 0.25, seed=nodes)
        db = Database.of({"E": graph})
        baseline, base_t = timed(
            lambda d=db: evaluate_program(program, d)["tc"]
        )
        run, lam_t = timed(lambda d=db: run_fixpoint_query(query, d))
        print(f"{nodes:>6} {len(baseline):>7} "
              f"{str(run.relation.same_set(baseline)):>6} "
              f"{lam_t * 1000:>10.0f} {base_t * 1000:>11.2f}")
    print("expected shape: all agree; both polynomial, lambda slower by a "
          "constant factor.")


# ---------------------------------------------------------------------------
# E4 — Theorem 5.2
# ---------------------------------------------------------------------------

def experiment_e4() -> None:
    header(
        "E4 (Theorem 5.2)",
        "TLI=1 evaluation is PTIME with materialized stages; naive "
        "reduction explodes",
    )
    from repro.db.encode import encode_database
    from repro.db.generators import chain_graph_relation
    from repro.db.relations import Database, Relation
    from repro.eval.ptime import run_fixpoint_query
    from repro.lam.reduce import normalize
    from repro.lam.terms import app
    from repro.queries.fixpoint import (
        build_fixpoint_query,
        transitive_closure_query,
    )

    query = transitive_closure_query("E")
    print("PTIME evaluator (chain graphs):")
    print(f"{'nodes':>6} {'stages':>7} {'tuples':>7} {'time ms':>9}")
    series = []
    for nodes in (4, 6, 8, 10, 12):
        db = Database.of({"E": chain_graph_relation(nodes)})
        run, elapsed = timed(lambda d=db: run_fixpoint_query(query, d))
        series.append((nodes, elapsed))
        print(f"{nodes:>6} {run.stages:>7} {len(run.relation):>7} "
              f"{elapsed * 1000:>9.0f}")
    print("\nnaive normal-order reduction of the same term: the empty\n"
          "instance normalizes in a few steps; with one edge the term\n"
          "*grows* instead of shrinking (sizes after k steps):")
    from repro.lam.reduce import step
    from repro.lam.terms import app as apply_term
    from repro.lam.terms import term_size

    term = build_fixpoint_query(query, "mli")
    empty_db = Database.of({"E": Relation.from_tuples(2, [])})
    outcome = normalize(app(term, *encode_database(empty_db)))
    print(f"  0 edges: normal form in {outcome.steps} steps")
    one_db = Database.of(
        {"E": Relation.from_tuples(2, [("o1", "o2")])}
    )
    current = apply_term(term, *encode_database(one_db))
    start_size = term_size(current)
    print(f"  1 edge:  start size {start_size}")
    steps_taken = 0
    for checkpoint in (100, 300, 500):
        while steps_taken < checkpoint:
            result = step(current)
            if result is None:
                break
            current = result[0]
            steps_taken += 1
        print(f"  1 edge:  after {steps_taken} steps, "
              f"size {term_size(current)}")
    print("expected shape: stage-materializing evaluation polynomial; "
          "naive reduction duplicates the stage tower (size explosion), "
          "the Section 5.3 point.")


# ---------------------------------------------------------------------------
# E5 — Section 6
# ---------------------------------------------------------------------------

def experiment_e5() -> None:
    header(
        "E5 (Section 6)",
        "fixed order does not tame ML type reconstruction",
    )
    from repro.hardness.gadgets import (
        let_pairing_chain,
        principal_type_tree_size,
        tlc_linear_family,
    )
    from repro.hardness.reduction import cnf_to_ml_term
    from repro.hardness.sat import random_cnf
    from repro.lam.terms import term_size
    from repro.types.infer import infer
    from repro.types.ml import ml_infer

    print("TLC= (deep application chains) — near-linear:")
    print(f"{'term size':>10} {'time ms':>9}")
    for depth in (64, 256, 1024):
        term = tlc_linear_family(depth)
        _, elapsed = timed(lambda t=term: infer(t))
        print(f"{term_size(term):>10} {elapsed * 1000:>9.2f}")

    print("\ncore-ML= let-pairing chain — exponential principal types:")
    print(f"{'depth':>6} {'term size':>10} {'type tree':>12} {'time ms':>9}")
    for depth in (4, 8, 12, 14):
        term = let_pairing_chain(depth)
        result, elapsed = timed(lambda t=term: ml_infer(t))
        tree = principal_type_tree_size(
            result.subst, result.occurrence_types[()]
        )
        print(f"{depth:>6} {term_size(term):>10} {tree:>12} "
              f"{elapsed * 1000:>9.1f}")

    print("\ncore-ML= SAT-shaped instances (order <= 4, growing arity):")
    print(f"{'clauses':>8} {'term size':>10} {'order':>6} {'time ms':>9}")
    for clauses in (8, 16, 32, 64):
        term = cnf_to_ml_term(random_cnf(8, clauses, seed=clauses))
        result, elapsed = timed(lambda t=term: ml_infer(t))
        print(f"{clauses:>8} {term_size(term):>10} "
              f"{result.derivation_order():>6} {elapsed * 1000:>9.1f}")
    print("expected shape: TLC linear; ML chain time/type doubling per "
          "level; SAT instances low-order with superlinear growth.")


# ---------------------------------------------------------------------------
# E6 — Section 2.3
# ---------------------------------------------------------------------------

def experiment_e6() -> None:
    header(
        "E6 (Section 2.3)",
        "list iteration: constant-size programs, data-sized work",
    )
    from repro.lam.combinators import (
        boolean_list,
        length_term,
        parity_term,
    )
    from repro.lam.nbe import nbe_normalize
    from repro.lam.reduce import normalize
    from repro.lam.terms import app, term_size

    print(f"parity program size: {term_size(parity_term())} nodes; "
          f"length program size: {term_size(length_term())} nodes")
    print(f"\n{'list length':>12} {'smallstep steps':>16} {'nbe ms':>8}")
    for length in (8, 32, 128):
        values = [i % 2 == 0 for i in range(length)]
        term = app(parity_term(), boolean_list(values))
        outcome = normalize(term)
        _, elapsed = timed(lambda t=term: nbe_normalize(t))
        print(f"{length:>12} {outcome.steps:>16} {elapsed * 1000:>8.2f}")
    print("expected shape: steps linear in the list, program size constant.")


# ---------------------------------------------------------------------------
# E7 — Lemmas 3.2 / 3.9
# ---------------------------------------------------------------------------

def experiment_e7() -> None:
    header(
        "E7 (Lemmas 3.2, 3.9)",
        "encoding, decoding, and query-term recognition are effective",
    )
    from repro.db.decode import decode_relation
    from repro.db.encode import encode_relation
    from repro.db.generators import random_relation
    from repro.queries.fixpoint import (
        build_fixpoint_query,
        transitive_closure_query,
    )
    from repro.queries.language import QueryArity, recognize_mli, recognize_tli
    from repro.queries.operators import intersection_term

    print(f"{'relation size':>14} {'encode ms':>10} {'decode ms':>10}")
    for size in (32, 128, 512):
        rel = random_relation(2, size, seed=size)
        term, enc_t = timed(lambda r=rel: encode_relation(r))
        decoded, dec_t = timed(lambda t=term: decode_relation(t, 2))
        assert decoded.relation == rel
        print(f"{size:>14} {enc_t * 1000:>10.2f} {dec_t * 1000:>10.2f}")

    print("\nrecognition (Lemma 3.9):")
    fixpoint = build_fixpoint_query(transitive_closure_query("E"), "tli")
    for name, term, signature, recognize in (
        ("Intersection_2", intersection_term(2), QueryArity((2, 2), 2),
         recognize_tli),
        ("Fix (TC, TLI)", fixpoint, QueryArity((2,), 2), recognize_tli),
        ("Fix (TC, MLI)",
         build_fixpoint_query(transitive_closure_query("E"), "mli"),
         QueryArity((2,), 2), recognize_mli),
    ):
        result, elapsed = timed(lambda: recognize(term, signature))
        print(f"  {name:>16}: order {result.derivation_order} "
              f"(TLI/MLI={result.derivation_order - 3}), "
              f"{elapsed * 1000:.1f} ms")
    print("expected shape: linear encode/decode; operators at order 3, "
          "fixpoints at order 4.")


def experiment_e8() -> None:
    header(
        "E8 (Section 1, (c)/(d))",
        "FO-queries: order 3 in TLC= vs order 4 in pure TLC (no Eq)",
    )
    from repro.db.generators import random_database
    from repro.lam.terms import Var, app
    from repro.pure.driver import run_pure_query
    from repro.pure.encode import encode_pure_database
    from repro.pure.operators import (
        pure_difference_term,
        pure_intersection_term,
        pure_query,
        pure_select_term,
        pure_union_term,
    )
    from repro.relalg.ast import Base, ColumnEqualsColumn
    from repro.relalg.engine import evaluate_ra
    from repro.types.infer import infer

    suite = {
        "intersection": (
            lambda: app(pure_intersection_term(2), Var("R"), Var("S")),
            Base("R1").intersect(Base("R2")),
        ),
        "union": (
            lambda: app(pure_union_term(2), Var("R"), Var("S")),
            Base("R1").union(Base("R2")),
        ),
        "difference": (
            lambda: app(pure_difference_term(2), Var("R"), Var("S")),
            Base("R1").minus(Base("R2")),
        ),
        "select": (
            lambda: app(pure_select_term(2, 0, 1), Var("R")),
            Base("R1").where(ColumnEqualsColumn(0, 1)),
        ),
    }
    db = random_database([2, 2], [6, 5], universe_size=4, seed=200)
    encoded = encode_pure_database(db)
    print(f"{'query':>14} {'agree':>6} {'delta steps':>12} "
          f"{'order (pure)':>13} {'time ms':>9}")
    for name, (build, expr) in suite.items():
        query = pure_query(build(), ["R", "S"])
        run, elapsed = timed(
            lambda q=query: run_pure_query(q, db, 2, require_pure=True)
        )
        agree = run.relation.same_set(evaluate_ra(expr, db))
        order = infer(app(query, *encoded.inputs)).derivation_order()
        print(f"{name:>14} {str(agree):>6} {run.delta_steps:>12} "
              f"{order:>13} {elapsed * 1000:>9.1f}")
    print("expected shape: all agree with zero delta steps at derivation "
          "order 4 (TLC= runs the same suite at order 3 — E1).")


# ---------------------------------------------------------------------------
# ES — the service runtime
# ---------------------------------------------------------------------------

def experiment_es(
    smoke: bool = False, out: str | None = None, trace: bool = False
) -> None:
    header(
        "ES (service runtime)",
        "catalog + digest cache + batching vs cold one-shot evaluation",
    )
    import json
    import os

    from repro.db.generators import chain_graph_relation, random_database
    from repro.db.relations import Database
    from repro.eval.driver import run_query
    from repro.eval.ptime import run_fixpoint_query
    from repro.lam.parser import parse
    from repro.queries.fixpoint import transitive_closure_query
    from repro.queries.language import QueryArity
    from repro.queries.relalg_compile import build_ra_query
    from repro.relalg.ast import Base, ColumnEqualsColumn
    from repro.obs.tracing import RingBufferExporter, Tracer
    from repro.service import QueryRequest, QueryService

    if smoke:
        sizes, chain_nodes, rounds = [5, 4], 4, 3
    else:
        sizes, chain_nodes, rounds = [12, 10], 6, 20

    db = random_database([2, 2], sizes, universe_size=7, seed=42)
    graph = Database.of({"E": chain_graph_relation(chain_nodes)})
    schema = {"R1": 2, "R2": 2}
    term_suite = {
        "swap": (parse(r"\R1. \R2. \c. \n. R1 (\x y T. c y x T) n"), 2),
        "union": (
            build_ra_query(Base("R1").union(Base("R2")), ["R1", "R2"],
                           schema),
            2,
        ),
        "join": (
            build_ra_query(
                Base("R1").times(Base("R2"))
                .where(ColumnEqualsColumn(1, 2)).project(0, 3),
                ["R1", "R2"], schema,
            ),
            2,
        ),
    }
    tc = transitive_closure_query("E")

    trace = trace or bool(os.environ.get("REPRO_TRACE"))
    ring = RingBufferExporter(capacity=8192) if trace else None
    tracer = Tracer(exporters=[ring], enabled=True) if trace else None
    service = QueryService(tracer=tracer)
    service.catalog.register_database("db", db)
    service.catalog.register_database("g", graph)
    for name, (term, arity) in term_suite.items():
        service.catalog.register_query(
            name, term, signature=QueryArity((2, 2), arity)
        )
    service.catalog.register_query("tc", tc)

    plan = list(term_suite) + ["tc"]
    requests = [
        QueryRequest(query=name, database="g" if name == "tc" else "db",
                     tag=f"{name}#{i}")
        for i in range(rounds)
        for name in plan
    ]

    # Cold baseline: the same workload as independent one-shot calls —
    # re-encode, re-check, re-evaluate every time, nothing shared.
    def cold_run():
        for _ in range(rounds):
            for term, arity in term_suite.values():
                run_query(term, db, arity=arity)
            run_fixpoint_query(tc, graph)

    _, cold_s = timed(cold_run)
    batch = service.execute_batch(requests)
    stats = batch.stats

    not_ok = [r for r in batch.responses if not r.ok]
    assert not not_ok, f"service errors: {[r.error for r in not_ok]}"
    batch_s = stats["wall_ms"] / 1000.0
    speedup = cold_s / batch_s if batch_s > 0 else float("inf")

    print(f"workload: {len(requests)} requests over {len(plan)} plans "
          f"x {rounds} rounds")
    print(f"{'path':>14} {'wall s':>8} {'qps':>8}")
    print(f"{'cold one-shot':>14} {cold_s:>8.2f} "
          f"{len(requests) / cold_s:>8.1f}")
    print(f"{'service batch':>14} {batch_s:>8.2f} "
          f"{stats['throughput_qps']:>8.1f}")
    print(f"cache: {stats['cache_hits']} hits / {stats['cache_misses']} "
          f"misses (hit rate {stats['hit_rate']:.2%}); "
          f"latency p50 {stats['latency_p50_ms']:.2f} ms, "
          f"p95 {stats['latency_p95_ms']:.2f} ms; "
          f"speedup {speedup:.1f}x")
    print("expected shape: one miss per plan, everything else hits; "
          "speedup well above 2x.")

    # The observed/bound comparison (Theorem 5.1/5.2 cost certificates):
    # every plan with a static certificate must come in at ratio <= 1 —
    # an honest evaluation cannot exceed its certified step bound.
    ratios = {
        labels["query"]: value
        for labels, value in service.registry.get(
            "repro_steps_bound_ratio"
        ).items()
    }
    for name, ratio in sorted(ratios.items()):
        print(f"observed/bound[{name}] = {ratio:.3g}")
        assert ratio <= 1.0, (
            f"plan {name!r} exceeded its static cost bound "
            f"(ratio {ratio})"
        )

    if trace:
        spans = ring.spans()
        evaluations = [s for s in spans if s.name == "evaluate"]
        waits = [s for s in spans if s.name == "cache.wait"]
        leaked = service.tracer.open_spans()
        assert not leaked, f"leaked open spans: {leaked}"
        print(f"tracing: {len(spans)} spans "
              f"({len(evaluations)} evaluations, {len(waits)} "
              f"single-flight waits), 0 leaked")

    payload = {
        "experiment": "ES",
        "smoke": smoke,
        "workload": {
            "requests": len(requests),
            "plans": plan,
            "rounds": rounds,
            "db_tuples": {name: len(rel) for name, rel in db},
            "graph_nodes": chain_nodes,
        },
        "cold_one_shot": {
            "wall_s": round(cold_s, 4),
            "throughput_qps": round(len(requests) / cold_s, 2),
        },
        "service_batch": stats,
        "speedup": round(speedup, 2),
        "service": service.stats(),
        "bound_ratios": {
            name: round(ratio, 9) for name, ratio in sorted(ratios.items())
        },
        "metrics": service.registry.as_dict(),
    }
    if trace:
        payload["tracing"] = {
            "spans": len(spans),
            "evaluations": len(evaluations),
            "cache_waits": len(waits),
        }
    out_path = out or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir,
        "BENCH_service.json",
    )
    out_path = os.path.abspath(out_path)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")


EXPERIMENTS = {
    "E1": experiment_e1,
    "E2": experiment_e2,
    "E3": experiment_e3,
    "E4": experiment_e4,
    "E5": experiment_e5,
    "E6": experiment_e6,
    "E7": experiment_e7,
    "E8": experiment_e8,
    "ES": experiment_es,
}


def main(argv) -> None:
    args = list(argv[1:])
    smoke = False
    trace = False
    out = None
    names = []
    index = 0
    while index < len(args):
        arg = args[index]
        if arg == "--smoke":
            smoke = True
        elif arg == "--trace":
            trace = True
        elif arg == "--out":
            index += 1
            if index >= len(args):
                raise SystemExit("--out requires a path argument")
            out = args[index]
        elif arg.startswith("--"):
            raise SystemExit(f"unknown flag {arg!r}")
        else:
            names.append(arg)
        index += 1
    chosen = names or sorted(EXPERIMENTS)
    for name in chosen:
        if name not in EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {name!r}; "
                f"choose from {sorted(EXPERIMENTS)}"
            )
        if name == "ES":
            experiment_es(smoke=smoke, out=out, trace=trace)
        else:
            EXPERIMENTS[name]()


if __name__ == "__main__":
    main(sys.argv)
