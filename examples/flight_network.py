"""Reachability in a flight network: PTIME queries as TLI=1 terms.

The paper's Theorem 4.2 story on a concrete workload: "which airports can
you reach from SEA?" is not first-order expressible — it needs a fixpoint —
and the fixpoint compiles to a lambda term of functionality order 4 whose
reduction computes the answer.  The Section 5.3 evaluator runs it in
polynomial time; the Datalog engine provides the independent baseline.

Run:  python examples/flight_network.py
"""

from repro import Database, QueryArity, Relation, is_mli_query_term, is_tli_query_term
from repro.datalog.ast import Literal, Program, RConst, RVar, Rule
from repro.datalog.compile import datalog_to_fixpoint
from repro.datalog.engine import evaluate_program
from repro.eval.ptime import run_fixpoint_query
from repro.lam.terms import term_size
from repro.queries.fixpoint import build_fixpoint_query

FLIGHTS = [
    ("SEA", "SFO"),
    ("SFO", "LAX"),
    ("LAX", "JFK"),
    ("JFK", "BOS"),
    ("BOS", "SEA"),
    ("ORD", "JFK"),
    ("HNL", "LAX"),
    ("AKL", "HNL"),
]


def main() -> None:
    flights = Relation.from_tuples(2, FLIGHTS)
    sources = Relation.unary(["SEA"])
    db = Database.of({"Flight": flights, "Source": sources})

    # reach(x) <- Source(x)
    # reach(y) <- reach(x), Flight(x, y)
    V = RVar
    program = Program.of(
        [
            Rule(Literal("reach", (V("x"),)), (Literal("Source", (V("x"),)),)),
            Rule(
                Literal("reach", (V("y"),)),
                (
                    Literal("reach", (V("x"),)),
                    Literal("Flight", (V("x"), V("y"))),
                ),
            ),
        ],
        {"Flight": 2, "Source": 1},
    )

    print("=== Datalog program ===")
    print(program, "\n")

    print("=== Baseline: bottom-up Datalog evaluation ===")
    baseline = evaluate_program(program, db)["reach"]
    print(f"reachable: {sorted(v for (v,) in baseline)}\n")

    print("=== The same query as a lambda term (Theorem 4.2) ===")
    fixpoint = datalog_to_fixpoint(program)
    signature = QueryArity((2, 1), 1)
    for style in ("tli", "mli"):
        term = build_fixpoint_query(fixpoint, style)
        print(
            f"{style.upper()}=1 term: {term_size(term)} nodes; "
            f"TLI=1 member: {is_tli_query_term(term, signature, 1)}, "
            f"MLI=1 member: {is_mli_query_term(term, signature, 1)}"
        )
    print()

    print("=== Evaluation by reduction with materialized stages ===")
    run = run_fixpoint_query(fixpoint, db, style="tli")
    print(f"stages run: {run.stages} (converged at {run.converged_at})")
    print(f"stage sizes: {run.stage_sizes}")
    print(f"reachable: {sorted(v for (v,) in run.relation)}")
    assert run.relation.same_set(baseline)
    print("matches the Datalog baseline.")

    unreachable = sorted(
        v for v in db.active_domain() if (v,) not in run.relation
    )
    print(f"not reachable from SEA: {unreachable}")


if __name__ == "__main__":
    main()
