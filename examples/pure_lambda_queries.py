"""Queries without the equality constant: the pure-TLC track.

TLC= gets equality from the delta rule; pure TLC has only beta.  The
paper's Section 1 records the price of purity: FO-queries need functionality
order 4 instead of 3.  This example shows the machinery — constants as
domain-position selectors, the equality tester shipped *with the data* —
and verifies that an entire query run performs zero delta reductions.

Run:  python examples/pure_lambda_queries.py
"""

from repro import Database, Relation, pretty
from repro.lam.terms import Var, app
from repro.pure.driver import run_pure_query
from repro.pure.encode import encode_pure_database, selector_term
from repro.pure.operators import pure_intersection_term, pure_query
from repro.relalg.ast import Base
from repro.relalg.engine import evaluate_ra
from repro.types.infer import infer


def main() -> None:
    db = Database.of(
        {
            "Likes": Relation.from_tuples(
                2,
                [("ada", "logic"), ("grace", "logic"), ("ada", "sets")],
            ),
            "Teaches": Relation.from_tuples(
                2,
                [("ada", "logic"), ("grace", "sets")],
            ),
        }
    )

    print("=== Constants become selectors over the active domain ===")
    encoded = encode_pure_database(db)
    print(f"active domain: {list(encoded.domain)}")
    for index, constant in enumerate(encoded.domain[:2]):
        print(f"  {constant!r} encodes as {pretty(selector_term(index, len(encoded.domain)))}")
    print()

    print("=== The equality tester travels with the data ===")
    print(f"EQ (size {len(encoded.domain)}^2 matrix): "
          f"{pretty(encoded.equality)[:100]}...\n")

    print("=== An Eq-free query: Likes ∩ Teaches ===")
    query = pure_query(
        app(pure_intersection_term(2), Var("R"), Var("S")),
        ["R", "S"],
    )
    run = run_pure_query(query, db, 2, require_pure=True)
    print(f"answer: {run.relation}")
    print(f"delta reductions performed: {run.delta_steps} (pure beta!)")

    baseline = evaluate_ra(Base("Likes").intersect(Base("Teaches")), db)
    assert run.relation.same_set(baseline)
    print("matches the relational-algebra baseline.\n")

    print("=== The order gap (Section 1, results (c)/(d)) ===")
    order = infer(app(query, *encoded.inputs)).derivation_order()
    print(f"derivation order at the pure convention: {order}")
    print("the same query in TLC= has order 3 — purity costs exactly one "
          "functionality order.")


if __name__ == "__main__":
    main()
