"""From lambda terms back to logic: the Section 5.2 translation.

Theorem 5.1's proof is constructive: a TLI=0 query term — here written by
hand, the way a functional programmer would — compiles into a first-order
formula over the input structure, with the interpreted ``Precedes`` order
atoms standing in for the list order.  This example translates a few
handwritten queries, prints the formulas, and checks them against direct
reduction.

Run:  python examples/query_to_formula.py
"""

from repro import Database, QueryArity, Relation, parse, run_query
from repro.eval.fo_translation import translate_query
from repro.folog.formulas import formula_size


QUERIES = [
    (
        "the diagonal: pairs (x, x) for tuples with equal components",
        r"\R. \c. \n. R (\x y T. Eq x y (c x x T) T) n",
        QueryArity((2,), 2),
    ),
    (
        "column swap",
        r"\R. \c. \n. R (\x y T. c y x T) n",
        QueryArity((2,), 2),
    ),
    (
        "the first tuple of the list (an order-aware query!)",
        r"\R. \c. \n. c (R (\x y T. x) o1) (R (\x y T. y) o1) n",
        QueryArity((2,), 2),
    ),
    (
        "drop everything after a tuple starting with 'stop'",
        r"\R. \c. \n. R (\x y T. Eq x stop n (c x y T)) n",
        QueryArity((2,), 2),
    ),
]


def main() -> None:
    db = Database.of(
        {
            "R": Relation.from_tuples(
                2,
                [
                    ("a", "b"),
                    ("b", "b"),
                    ("stop", "a"),
                    ("c", "c"),
                ],
            )
        }
    )
    print(f"input (list-represented!): {db['R']}\n")

    for description, source, arity in QUERIES:
        query = parse(source, constants=["stop"])
        translation = translate_query(query, arity)
        direct = run_query(query, db, arity=arity.output).relation
        via_formula = translation.evaluate(db)
        assert via_formula.same_set(direct)

        print(f"--- {description} ---")
        print(f"term:        {source.strip()}")
        print(f"formula size: {formula_size(translation.formula)} nodes")
        preview = str(translation.formula)
        print(f"formula:     {preview[:110]}{'...' if len(preview) > 110 else ''}")
        print(f"answer:      {sorted(direct.as_set())}")
        print()

    print(
        "Every answer was computed twice — by beta/delta reduction and by\n"
        "evaluating the translated first-order formula — and agreed.\n"
        "Note the third query: it depends on the tuple *order*, and its\n"
        "formula uses the Precedes atoms (Definition 3.4's list order)."
    )


if __name__ == "__main__":
    main()
