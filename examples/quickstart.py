"""Quickstart: databases as lambda terms, queries as typed terms.

Walks through the paper's core loop (Sections 2-4):

1. encode a relational database as list-iterator lambda terms;
2. build a relational-algebra query and compile it to a TLI=0 term;
3. check the term really is a TLI=0 query (Lemma 3.9) and inspect types;
4. run the query by beta/delta reduction and decode the answer.

Run:  python examples/quickstart.py
"""

from repro import (
    Database,
    QueryArity,
    Relation,
    build_ra_query,
    is_mli_query_term,
    is_tli_query_term,
    pretty,
    run_query,
)
from repro.db.encode import encode_relation
from repro.queries.language import recognize_tli
from repro.relalg.ast import Base, ColumnEqualsConst
from repro.relalg.engine import evaluate_ra


def main() -> None:
    # A tiny staff database.  Constants are just names; the paper's
    # o1, o2, ... convention is available but not required.
    works_in = Relation.from_tuples(
        2,
        [
            ("ada", "compilers"),
            ("grace", "compilers"),
            ("edsger", "verification"),
            ("tony", "verification"),
            ("barbara", "databases"),
        ],
    )
    mentors = Relation.from_tuples(
        2,
        [
            ("grace", "ada"),
            ("tony", "edsger"),
            ("barbara", "grace"),
        ],
    )
    db = Database.of({"WorksIn": works_in, "Mentors": mentors})

    print("=== 1. Databases as lambda terms (Definition 3.1) ===")
    encoded = encode_relation(mentors)
    print(f"Mentors encodes as:\n  {pretty(encoded)}\n")

    print("=== 2. A query: who works in compilers and has a mentor? ===")
    schema = {"WorksIn": 2, "Mentors": 2}
    expr = (
        Base("WorksIn")
        .where(ColumnEqualsConst(1, "compilers"))
        .project(0)
        .intersect(Base("Mentors").project(1))
    )
    query = build_ra_query(expr, ["WorksIn", "Mentors"], schema)
    print(f"compiled TLI=0 term ({pretty(query)[:90]}...)\n")

    print("=== 3. Recognition and typing (Lemma 3.9) ===")
    signature = QueryArity((2, 2), 1)
    print(f"is a TLI=0 query term: {is_tli_query_term(query, signature, 0)}")
    print(f"is an MLI=0 query term: {is_mli_query_term(query, signature, 0)}")
    recognition = recognize_tli(query, signature)
    print(f"functionality order: {recognition.derivation_order} (= 0 + 3)\n")

    print("=== 4. Query semantics is reduction (Definition 3.10) ===")
    outcome = run_query(query, db, arity=1)
    print(f"normal form: {pretty(outcome.normal_form)}")
    print(f"decoded answer: {outcome.relation}")

    baseline = evaluate_ra(expr, db)
    assert outcome.relation.same_set(baseline)
    print(f"matches the relational-algebra baseline: {baseline}")


if __name__ == "__main__":
    main()
