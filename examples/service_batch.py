"""Serving queries: the catalog / cache / batch runtime on a small workload.

Definition 3.10 makes query answering the normalization of (Q r̄1 ... r̄l),
which is a pure function of the query term and the database encoding.  The
service runtime (`repro.service`) exploits that: databases are encoded once
per version, query plans are type/order-checked once at registration, and
normal forms are cached under an alpha-invariant digest — so a batch of
repeated queries costs one evaluation per distinct plan.

Run:  python examples/service_batch.py
"""

from repro import Database, QueryArity, Relation, parse
from repro.queries.fixpoint import transitive_closure_query
from repro.service import QueryRequest, QueryService

FLIGHTS = [
    ("SEA", "SFO"),
    ("SFO", "LAX"),
    ("LAX", "JFK"),
    ("JFK", "BOS"),
    ("ORD", "JFK"),
]


def main() -> None:
    db = Database.of({"E": Relation.from_tuples(2, FLIGHTS)})

    service = QueryService()
    service.catalog.register_database("flights", db)

    # A TLI=0 term query (order 3, runs on NBE) ...
    service.catalog.register_query(
        "swap",
        parse(r"\E. \c. \n. E (\x y T. c y x T) n"),
        signature=QueryArity((2,), 2),
    )
    # ... and a fixpoint spec (compiles to a TLI=1 tower, runs on the
    # Theorem 5.2 PTIME evaluator).
    service.catalog.register_query("tc", transitive_closure_query("E"))

    print("=== Catalog ===")
    for entry in service.catalog.queries():
        print(f"  {entry.name}: kind={entry.kind}, engine={entry.engine}, "
              f"order={entry.order}, digest={entry.digest[:12]}...")
    print()

    print("=== A batch of 40 repeated/overlapping requests ===")
    requests = [
        QueryRequest(query=name, database="flights", tag=f"{name}#{i}")
        for i in range(20)
        for name in ("swap", "tc")
    ]
    result = service.execute_batch(requests)
    stats = result.stats
    print(f"statuses: {stats['statuses']}")
    print(f"cache: {stats['cache_hits']} hits / {stats['cache_misses']} "
          f"misses (hit rate {stats['hit_rate']:.0%})")
    print(f"latency p50 {stats['latency_p50_ms']:.2f} ms, "
          f"p95 {stats['latency_p95_ms']:.2f} ms; "
          f"throughput {stats['throughput_qps']:.0f} qps")
    assert stats["cache_misses"] == 2  # one evaluation per distinct plan
    print()

    tc_answer = next(r for r in result.responses if r.query == "tc")
    reachable = sorted(b for (a, b) in tc_answer.relation if a == "SEA")
    print(f"airports reachable from SEA: {reachable}")
    print()

    print("=== Updating a database invalidates its cached results ===")
    service.update_database(
        "flights",
        Database.of({"E": Relation.from_tuples(2, FLIGHTS + [("BOS", "HNL")])}),
    )
    response = service.execute(QueryRequest(query="tc", database="flights"))
    print(f"version {response.database_version}, cache_hit={response.cache_hit}")
    assert not response.cache_hit and response.database_version == 2
    reachable = sorted(b for (a, b) in response.relation if a == "SEA")
    print(f"airports reachable from SEA now: {reachable}")


if __name__ == "__main__":
    main()
