"""Type reconstruction at fixed order: the Section 6 phenomena.

Three measurements:

1. TLC= reconstruction is effectively linear (Section 2.1);
2. core-ML= reconstruction on the let-pairing chain is exponential —
   the principal type's tree size doubles per let (the [31, 32]
   worst case that fixed order does not remove);
3. 3-SAT-shaped instances (Section 6's low-order/high-arity style)
   grow reconstruction work with the clause count while staying within
   functionality order 4 (the MLI=1 bound).

Run:  python examples/type_reconstruction.py
"""

import time

from repro.hardness.gadgets import (
    let_pairing_chain,
    principal_type_tree_size,
    tlc_linear_family,
)
from repro.hardness.reduction import cnf_to_ml_term
from repro.hardness.sat import random_cnf
from repro.lam.terms import term_size
from repro.types.infer import infer
from repro.types.ml import ml_infer


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, (time.perf_counter() - start) * 1000


def main() -> None:
    print("=== 1. TLC= reconstruction stays cheap ===")
    print(f"{'term size':>10} {'time (ms)':>10}")
    for depth in (16, 64, 256, 1024):
        term = tlc_linear_family(depth)
        _, elapsed = timed(lambda t=term: infer(t))
        print(f"{term_size(term):>10} {elapsed:>10.2f}")

    print("\n=== 2. core-ML= principal types explode (let-pairing) ===")
    print(f"{'depth':>6} {'term size':>10} {'type tree size':>15} {'time (ms)':>10}")
    for depth in (4, 8, 12, 14):
        term = let_pairing_chain(depth)
        result, elapsed = timed(lambda t=term: ml_infer(t))
        tree = principal_type_tree_size(
            result.subst, result.occurrence_types[()]
        )
        print(
            f"{depth:>6} {term_size(term):>10} {tree:>15} {elapsed:>10.2f}"
        )
    print("(tree size doubles per level: the program is linear, the type")
    print(" is exponential — the engine of the ML lower bounds)")

    print("\n=== 3. SAT-shaped fixed-order instances ===")
    print(f"{'vars':>6} {'clauses':>8} {'term size':>10} {'order':>6} {'time (ms)':>10}")
    for clauses in (4, 8, 16, 32):
        cnf = random_cnf(6, clauses, seed=clauses)
        term = cnf_to_ml_term(cnf)
        result, elapsed = timed(lambda t=term: ml_infer(t))
        print(
            f"{cnf.num_vars:>6} {clauses:>8} {term_size(term):>10} "
            f"{result.derivation_order():>6} {elapsed:>10.2f}"
        )
    print("(functionality order stays <= 4 — the MLI=1 bound — while the")
    print(" arity of the unification problem grows with the instance)")


if __name__ == "__main__":
    main()
