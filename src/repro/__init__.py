"""repro — Functional database query languages as typed lambda calculi.

A reproduction of Hillebrand & Kanellakis, *Functional Database Query
Languages as Typed Lambda Calculi of Fixed Order* (PODS 1994): databases
encoded as list-iterator lambda terms, queries as fixed-order TLC=/core-ML=
terms, reduction as query semantics, and the paper's expressiveness and
complexity results as executable artifacts.

Quick tour (see ``examples/quickstart.py``):

    >>> from repro import Relation, Database, run_query, build_ra_query
    >>> from repro.relalg import Base
    >>> db = Database.of({"R": Relation.from_tuples(2, [("o1", "o2")])})
    >>> q = build_ra_query(Base("R").project(1), ["R"], {"R": 2})
    >>> run_query(q, db, arity=1).relation.tuples
    (('o2',),)

Layers:

* :mod:`repro.lam` — the lambda-calculus kernel (terms, parser, reduction,
  NBE) and the Section 2.3 combinators;
* :mod:`repro.types` — simple types, functionality order, unification,
  TLC= and core-ML= reconstruction;
* :mod:`repro.db` — relations as lambda terms (encode/decode, Lemma 3.2);
* :mod:`repro.queries` — TLI=_i / MLI=_i query terms: the Section 4
  operator library, relational algebra and first-order compilation
  (Theorem 4.1), and the fixpoint machinery (Theorem 4.2);
* :mod:`repro.eval` — evaluation: reduction drivers, the Section 5.2
  first-order translation (Theorem 5.1), and the polynomial-time fixpoint
  evaluator (Theorem 5.2);
* :mod:`repro.relalg`, :mod:`repro.folog`, :mod:`repro.datalog` — the
  independent baseline engines;
* :mod:`repro.hardness` — the Section 6 type-reconstruction complexity lab.
"""

from repro.db.relations import Database, Relation
from repro.db.encode import encode_database, encode_relation
from repro.db.decode import decode_relation
from repro.eval.driver import run_query
from repro.eval.ptime import run_fixpoint_query
from repro.eval.fo_translation import translate_query
from repro.lam.parser import parse
from repro.lam.pretty import pretty
from repro.lam.reduce import Strategy, normalize
from repro.lam.nbe import nbe_normalize
from repro.queries.language import (
    QueryArity,
    is_mli_query_term,
    is_tli_query_term,
)
from repro.queries.relalg_compile import build_ra_query
from repro.queries.fixpoint import FixpointQuery, build_fixpoint_query
from repro.types.infer import infer, principal_type
from repro.types.ml import ml_infer, ml_principal_type

__version__ = "1.0.0"

__all__ = [
    "Database",
    "FixpointQuery",
    "QueryArity",
    "Relation",
    "Strategy",
    "__version__",
    "build_fixpoint_query",
    "build_ra_query",
    "decode_relation",
    "encode_database",
    "encode_relation",
    "infer",
    "is_mli_query_term",
    "is_tli_query_term",
    "ml_infer",
    "ml_principal_type",
    "nbe_normalize",
    "normalize",
    "parse",
    "pretty",
    "principal_type",
    "run_fixpoint_query",
    "run_query",
    "translate_query",
]
