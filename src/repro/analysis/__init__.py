"""Static query certifier (the Section 3/5 guarantees, checked up front).

The analyzer runs multi-pass static checks over query plans — ``Term``
plans and :class:`~repro.queries.fixpoint.FixpointQuery` specs — and
produces :class:`AnalysisReport` objects carrying stable-coded diagnostics
(``TLI001`` ...) plus the positive certificates: the derivation order, the
TLI=_i fragment, and a static cost polynomial that upper-bounds NBE
normalization steps (Theorem 5.1) and seeds the runtime's fuel budgets.

Entry points: :func:`analyze` / :func:`analyze_term` /
:func:`analyze_fixpoint`, the ``repro lint`` CLI subcommand, and
``Catalog.register_query`` (which refuses plans whose report has errors).
"""

from repro.analysis.absint import (
    AbstractFacts,
    Interval,
    ScanSite,
    abstract_fixpoint_facts,
    abstract_term_facts,
    demanded_occurrences,
    let_liveness,
    tighten_fixpoint_profile,
    tighten_term_profile,
)
from repro.analysis.analyzer import (
    FIXPOINT_TOWER_ORDER,
    analyze,
    analyze_fixpoint,
    analyze_term,
    fuel_budget,
)
from repro.analysis.simplify import SimplificationOutcome, simplify_term
from repro.analysis.cost import (
    DEFAULT_COEFFICIENT,
    CostProfile,
    DatabaseStats,
    fixpoint_cost_profile,
    term_cost_profile,
)
from repro.analysis.diagnostics import (
    CODES,
    AnalysisReport,
    CodeInfo,
    Diagnostic,
    Severity,
    render_reports_json,
)
from repro.analysis.corpus import (
    CorpusError,
    LintTarget,
    collect_lam_files,
    load_lam_file,
    load_lam_source,
    operator_library_targets,
)
from repro.analysis.provenance import (
    ProvenanceFacts,
    RelationRead,
    check_schema_contract,
    database_schema,
    fixpoint_provenance,
    read_set_stats,
    restrict_database,
    scanned_relation_names,
    term_provenance,
    version_subvector,
)

__all__ = [
    "AbstractFacts",
    "AnalysisReport",
    "CODES",
    "CodeInfo",
    "CorpusError",
    "CostProfile",
    "DEFAULT_COEFFICIENT",
    "DatabaseStats",
    "Diagnostic",
    "FIXPOINT_TOWER_ORDER",
    "Interval",
    "LintTarget",
    "ProvenanceFacts",
    "RelationRead",
    "ScanSite",
    "Severity",
    "SimplificationOutcome",
    "abstract_fixpoint_facts",
    "abstract_term_facts",
    "analyze",
    "analyze_fixpoint",
    "analyze_term",
    "check_schema_contract",
    "collect_lam_files",
    "database_schema",
    "demanded_occurrences",
    "fixpoint_cost_profile",
    "fixpoint_provenance",
    "fuel_budget",
    "let_liveness",
    "load_lam_file",
    "load_lam_source",
    "operator_library_targets",
    "read_set_stats",
    "render_reports_json",
    "restrict_database",
    "scanned_relation_names",
    "simplify_term",
    "term_cost_profile",
    "term_provenance",
    "tighten_fixpoint_profile",
    "tighten_term_profile",
    "version_subvector",
]
