"""Abstract interpretation over query plans (the certifier's pass 5).

The Theorem 5.1 envelopes of :mod:`repro.analysis.cost` are *syntactic*:
the degree of the cost polynomial is the raw occurrence count of the
input binders in the let-expanded body, so a plan that mentions an input
twice in parallel (two sibling folds) is charged as if the folds were
nested.  This module recovers the lost precision with three cooperating
abstract domains, evaluated over the plan's *data-independent normal
form* (the same pre-normalization the shard planner performs):

* **Usage / liveness** — a backward dataflow with multiplicities over the
  ``let`` graph: :func:`demanded_occurrences` computes exactly the
  occurrence count the paper's let-expansion would produce, in one linear
  pass instead of a potentially exponential substitution, and
  :func:`let_liveness` reports which bindings are never demanded at all
  (the simplifier's dead-code facts).

* **Occurrence counting** — :func:`abstract_term_facts` walks the normal
  form's application spines and records every *scan site*: an occurrence
  of an input relation in head position, together with its fold-nesting
  depth.  A site at depth ``d`` is entered at most ``T^d`` times (one
  activation per enclosing loop iteration) and enumerates at most ``T``
  tuples per entry, so the total number of loop-body entries is bounded
  by ``sum_i T^(d_i + 1)`` — per input, an interval of scan counts
  replacing the syntactic ``q``.

* **Cardinality intervals** — output rows come from emission sites (the
  output constructor, or an input in copy/result position); a site at
  depth ``d`` emits at most ``T^d`` (resp. ``T^(d+1)``) rows, so the
  result cardinality is bounded by ``emit_sites * T^emit_degree`` —
  selections shrink the lower bound to zero, copy folds multiply, and
  fixpoint stage counts are capped by ``|D|^k`` (the inflationary crank
  adds at least one of the ``|D|^k`` candidate tuples per stage).

:func:`tighten_term_profile` turns the facts into a sharper
:class:`~repro.analysis.cost.CostProfile` — degree ``max_i(d_i + 1)``
instead of ``max(q, k)`` — and adopts it only under a dominance guard
(degree strictly reduced, or equal degree with a smaller constant), so a
plan the walk cannot classify keeps its syntactic envelope unchanged.
The tightened bound is still a sound envelope: every loop-body entry
costs at most the plan size in steps and readback is covered by the
emission-site accounting, which the differential benchmark gate
(``benchmarks/bench_certifier.py``) asserts against observed NBE steps.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.cost import DEFAULT_COEFFICIENT, CostProfile, DatabaseStats
from repro.lam.nbe import nbe_normalize_counted
from repro.lam.terms import (
    Abs,
    App,
    Const,
    EqConst,
    Let,
    Term,
    Var,
    binder_prefix,
    spine,
    term_size,
)

#: Depth cap for the data-independent pre-normalization (matches the
#: shard planner's cap).
NORMALIZE_MAX_DEPTH = 200_000

#: Step budget for the pre-normalization: a plan whose *data-independent*
#: normalization exceeds this is left on its syntactic envelope.
NORMALIZE_FUEL = 200_000

#: Normal forms larger than this are not walked (the spine walk is linear,
#: but facts on a megabyte normal form would not pay for themselves).
WALK_SIZE_CAP = 50_000


@dataclass(frozen=True)
class Interval:
    """A closed integer interval; ``hi=None`` means unbounded above."""

    lo: int
    hi: Optional[int]

    def render(self) -> str:
        hi = "inf" if self.hi is None else str(self.hi)
        return f"[{self.lo}, {hi}]"

    def as_dict(self) -> dict:
        return {"lo": self.lo, "hi": self.hi}


@dataclass(frozen=True)
class ScanSite:
    """One occurrence of an input relation in fold/head position."""

    input_name: str
    depth: int       # enclosing fold-nesting depth (0 = top level)
    guarded: bool    # under an Eq branch (reached only when the test picks it)

    def as_dict(self) -> dict:
        return {
            "input": self.input_name,
            "depth": self.depth,
            "guarded": self.guarded,
        }


@dataclass
class AbstractFacts:
    """Everything the abstract interpreter learned about one plan."""

    kind: str                               # "term" | "fixpoint"
    fallback: Optional[str] = None          # walk aborted: syntactic model stands
    scan_sites: Tuple[ScanSite, ...] = ()
    scan_degree: int = 0                    # max_i (depth_i + 1); 0 = no scans
    input_scans: Dict[str, Interval] = None  # type: ignore[assignment]
    emit_sites: int = 0
    emit_degree: int = 0                    # rows <= emit_sites * T^emit_degree
    dead_bindings: Tuple[str, ...] = ()
    let_bindings: int = 0
    normalize_steps: int = 0                # data-independent normalization cost
    stage_interval: Optional[Interval] = None  # fixpoint stages: [0, |D|^k]

    def __post_init__(self) -> None:
        if self.input_scans is None:
            self.input_scans = {}

    def cardinality(self, stats: DatabaseStats) -> Interval:
        """The output-row interval instantiated at concrete statistics."""
        tuples = max(stats.tuples, 1)
        hi = self.emit_sites * tuples ** self.emit_degree
        return Interval(lo=0, hi=hi)

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "fallback": self.fallback,
            "scan_sites": [site.as_dict() for site in self.scan_sites],
            "scan_degree": self.scan_degree,
            "input_scans": {
                name: interval.as_dict()
                for name, interval in self.input_scans.items()
            },
            "emit_sites": self.emit_sites,
            "emit_degree": self.emit_degree,
            "dead_bindings": list(self.dead_bindings),
            "let_bindings": self.let_bindings,
            "normalize_steps": self.normalize_steps,
            "stage_interval": (
                self.stage_interval.as_dict()
                if self.stage_interval is not None
                else None
            ),
        }

    def render(self) -> List[str]:
        """Human-readable fact lines (the ``repro lint --analyze`` view)."""
        lines: List[str] = []
        if self.fallback is not None:
            lines.append(f"abstract interpretation fell back: {self.fallback}")
            return lines
        if self.kind == "fixpoint":
            if self.stage_interval is not None:
                lines.append(
                    f"stage interval {self.stage_interval.render()} "
                    f"(inflationary crank, capped by |D|^k)"
                )
            for name, interval in sorted(self.input_scans.items()):
                lines.append(
                    f"input {name}: {interval.render()} step occurrences"
                )
            return lines
        for name, interval in sorted(self.input_scans.items()):
            depths = sorted(
                site.depth
                for site in self.scan_sites
                if site.input_name == name
            )
            lines.append(
                f"input {name}: {interval.render()} scan sites "
                f"at depths {depths}"
            )
        lines.append(
            f"loop-entry degree {self.scan_degree} "
            f"({len(self.scan_sites)} scan sites)"
        )
        lines.append(
            f"output cardinality <= {self.emit_sites}"
            f"*T^{self.emit_degree} rows"
        )
        if self.let_bindings:
            dead = (
                f", dead: {', '.join(self.dead_bindings)}"
                if self.dead_bindings
                else ""
            )
            lines.append(f"{self.let_bindings} let binding(s){dead}")
        return lines


# ---------------------------------------------------------------------------
# Usage / liveness: backward dataflow with multiplicities
# ---------------------------------------------------------------------------

def demanded_occurrences(term: Term, names: Sequence[str]) -> int:
    """Occurrences of ``names`` in the let-expansion of ``term`` — without
    expanding.

    The dataflow equation is ``occ(let x = M in N) = occ(N) +
    uses(x, N) * occ(M)`` with ``uses`` computed under the same
    multiplicity semantics (and dropped entirely when zero, matching dead
    bindings vanishing under expansion).  Memoized and iterative, so the
    count is linear-ish in the term even where the expansion itself is
    exponential.
    """
    targets0 = frozenset(names)
    memo: Dict[Tuple[int, FrozenSet[str]], int] = {}
    stack: List[Tuple[Term, FrozenSet[str]]] = [(term, targets0)]
    while stack:
        node, targets = stack[-1]
        key = (id(node), targets)
        if key in memo:
            stack.pop()
            continue
        if isinstance(node, Var):
            memo[key] = 1 if node.name in targets else 0
            stack.pop()
        elif isinstance(node, (Const, EqConst)):
            memo[key] = 0
            stack.pop()
        elif isinstance(node, Abs):
            inner = targets - {node.var}
            child = (id(node.body), inner)
            if child in memo:
                memo[key] = memo[child]
                stack.pop()
            else:
                stack.append((node.body, inner))
        elif isinstance(node, App):
            left = (id(node.fn), targets)
            right = (id(node.arg), targets)
            if left in memo and right in memo:
                memo[key] = memo[left] + memo[right]
                stack.pop()
            else:
                if right not in memo:
                    stack.append((node.arg, targets))
                if left not in memo:
                    stack.append((node.fn, targets))
        elif isinstance(node, Let):
            uses_key = (id(node.body), frozenset((node.var,)))
            body_key = (id(node.body), targets - {node.var})
            bound_key = (id(node.bound), targets)
            if uses_key in memo and body_key in memo and bound_key in memo:
                uses = memo[uses_key]
                total = memo[body_key]
                if uses:
                    total += uses * memo[bound_key]
                memo[key] = total
                stack.pop()
            else:
                if bound_key not in memo:
                    stack.append((node.bound, targets))
                if body_key not in memo:
                    stack.append((node.body, targets - {node.var}))
                if uses_key not in memo:
                    stack.append((node.body, frozenset((node.var,))))
        else:
            raise TypeError(f"not a term: {node!r}")
    return memo[(id(term), targets0)]


def let_liveness(term: Term) -> Tuple[int, Tuple[str, ...]]:
    """``(total let bindings, names of the dead ones)``.

    A binding is dead when its body never demands it (zero occurrences
    under the multiplicity dataflow); dead bindings are what the
    simplifier eliminates, and each one costs a ``let`` step per
    evaluation for nothing.
    """
    total = 0
    dead: List[str] = []
    stack: List[Term] = [term]
    while stack:
        node = stack.pop()
        if isinstance(node, Abs):
            stack.append(node.body)
        elif isinstance(node, App):
            stack.append(node.fn)
            stack.append(node.arg)
        elif isinstance(node, Let):
            total += 1
            if demanded_occurrences(node.body, (node.var,)) == 0:
                dead.append(node.var)
            stack.append(node.bound)
            stack.append(node.body)
    return total, tuple(dead)


# ---------------------------------------------------------------------------
# Occurrence counting + cardinality: the normal-form spine walk
# ---------------------------------------------------------------------------

class _WalkAbort(Exception):
    """Raised when the spine walk meets a shape it cannot bound."""


def _mentions_any(term: Term, names: FrozenSet[str]) -> bool:
    stack = [(term, names)]
    while stack:
        node, live = stack.pop()
        if not live:
            continue
        if isinstance(node, Var):
            if node.name in live:
                return True
        elif isinstance(node, Abs):
            stack.append((node.body, live - {node.var}))
        elif isinstance(node, App):
            stack.append((node.fn, live))
            stack.append((node.arg, live))
        elif isinstance(node, Let):
            stack.append((node.bound, live))
            stack.append((node.body, live - {node.var}))
    return False


def _walk(
    node: Term,
    *,
    depth: int,
    guarded: bool,
    inputs: FrozenSet[str],
    cons: Optional[str],
    loop: FrozenSet[str],
    sites: List[ScanSite],
    emits: List[Tuple[int, bool]],
) -> None:
    """Record scan and emission sites of a normal-form body.

    ``depth`` counts enclosing fold loops; ``loop`` is the set of binders
    introduced *inside* the body (loop parameters and accumulators, whose
    runtime values may be list closures — an input relation consumed
    through one of those cannot be bounded structurally and aborts the
    walk).
    """
    head, args = spine(node)
    if isinstance(head, Abs):
        if args:
            raise _WalkAbort("unexpected beta redex in normal form")
        _walk(
            head.body,
            depth=depth,
            guarded=guarded,
            inputs=inputs,
            cons=cons,
            loop=loop | {head.var},
            sites=sites,
            emits=emits,
        )
        return
    if isinstance(head, Let):
        raise _WalkAbort("unexpected let in normal form")
    if isinstance(head, EqConst):
        # Eq a b B_true B_false: the atoms are forced eagerly, the
        # branches are taken one-per-activation (guarded).
        for index, arg in enumerate(args):
            _walk(
                arg,
                depth=depth,
                guarded=guarded or index >= 2,
                inputs=inputs,
                cons=cons,
                loop=loop,
                sites=sites,
                emits=emits,
            )
        return
    if isinstance(head, Const):
        for arg in args:
            _walk(
                arg,
                depth=depth,
                guarded=guarded,
                inputs=inputs,
                cons=cons,
                loop=loop,
                sites=sites,
                emits=emits,
            )
        return
    # head is a Var.
    name = head.name
    if name in inputs and name not in loop:
        # A scan site: the input's list is enumerated once per activation.
        sites.append(ScanSite(input_name=name, depth=depth, guarded=guarded))
        # In copy/result position (no structured loop body) the scan also
        # emits its tuples into the output.
        emits.append((depth + 1, guarded))
        if args:
            _walk(
                args[0],
                depth=depth + 1,
                guarded=guarded,
                inputs=inputs,
                cons=cons,
                loop=loop,
                sites=sites,
                emits=emits,
            )
            for arg in args[1:]:
                _walk(
                    arg,
                    depth=depth,
                    guarded=guarded,
                    inputs=inputs,
                    cons=cons,
                    loop=loop,
                    sites=sites,
                    emits=emits,
                )
        return
    if name in loop:
        # A loop binder in head position: its runtime value may be an
        # accumulated list closure, which would re-iterate anything passed
        # to it — safe only when no input reaches it.
        if args and any(_mentions_any(arg, inputs) for arg in args):
            raise _WalkAbort(
                f"input relation applied under loop binder {name!r}"
            )
        for arg in args:
            _walk(
                arg,
                depth=depth,
                guarded=guarded,
                inputs=inputs,
                cons=cons,
                loop=loop,
                sites=sites,
                emits=emits,
            )
        return
    # Output constructor, output terminal, or a free variable: neutral at
    # readback, so arguments are forced once per activation.
    if cons is not None and name == cons:
        emits.append((depth, guarded))
    for arg in args:
        _walk(
            arg,
            depth=depth,
            guarded=guarded,
            inputs=inputs,
            cons=cons,
            loop=loop,
            sites=sites,
            emits=emits,
        )


def abstract_term_facts(
    term: Term,
    *,
    input_count: Optional[int] = None,
) -> AbstractFacts:
    """Run the abstract domains over one term plan.

    The plan is normalized without data first (fuel-capped; a plan that
    cannot be normalized falls back), its leading ``input_count`` binders
    are the inputs (all of them when ``None``, matching
    :func:`~repro.analysis.cost.term_cost_profile`), and the body is
    walked for scan and emission sites.  The liveness domain runs over
    the *original* term (the normal form has no lets left).
    """
    lets, dead = let_liveness(term)
    facts = AbstractFacts(
        kind="term", let_bindings=lets, dead_bindings=dead
    )

    # Labels for the inputs: the original binder names where available
    # (readable in reports), else the normal form's fresh names.
    original_names, _ = binder_prefix(term)

    try:
        normal, steps = nbe_normalize_counted(
            term, max_depth=NORMALIZE_MAX_DEPTH, fuel=NORMALIZE_FUEL
        )
    except Exception as exc:  # noqa: BLE001 - any failure means fallback
        facts.fallback = f"plan does not normalize without data: {exc}"
        return facts
    facts.normalize_steps = steps
    if term_size(normal) > WALK_SIZE_CAP:
        facts.fallback = (
            f"normal form exceeds the walk cap "
            f"({term_size(normal)} > {WALK_SIZE_CAP} nodes)"
        )
        return facts

    names, body = binder_prefix(normal)
    count = len(names) if input_count is None else input_count
    if len(names) < count:
        facts.fallback = (
            f"normal form binds {len(names)} inputs, expected {count}"
        )
        return facts
    input_names = names[:count]
    rest = names[count:]
    cons = rest[0] if rest else None
    labels = {
        name: (
            original_names[index]
            if index < len(original_names)
            else name
        )
        for index, name in enumerate(input_names)
    }

    sites: List[ScanSite] = []
    emits: List[Tuple[int, bool]] = []
    try:
        _walk(
            body,
            depth=0,
            guarded=False,
            inputs=frozenset(input_names),
            cons=cons,
            loop=frozenset(),
            sites=sites,
            emits=emits,
        )
    except _WalkAbort as exc:
        facts.fallback = str(exc)
        return facts
    except RecursionError:
        facts.fallback = "normal form too deep for the spine walk"
        return facts

    facts.scan_sites = tuple(
        ScanSite(
            input_name=labels[site.input_name],
            depth=site.depth,
            guarded=site.guarded,
        )
        for site in sites
    )
    facts.scan_degree = max(
        (site.depth + 1 for site in sites), default=0
    )
    per_input: Dict[str, List[ScanSite]] = {}
    for site in facts.scan_sites:
        per_input.setdefault(site.input_name, []).append(site)
    facts.input_scans = {
        labels[name]: Interval(lo=0, hi=0) for name in input_names
    }
    for name, group in per_input.items():
        unguarded = sum(1 for site in group if not site.guarded)
        facts.input_scans[name] = Interval(lo=unguarded, hi=len(group))
    facts.emit_sites = len(emits)
    facts.emit_degree = max((d for d, _ in emits), default=0)
    return facts


# ---------------------------------------------------------------------------
# Profile tightening
# ---------------------------------------------------------------------------

def tighten_term_profile(
    term: Term,
    *,
    base: CostProfile,
    input_count: Optional[int] = None,
    facts: Optional[AbstractFacts] = None,
) -> Tuple[Optional[CostProfile], AbstractFacts]:
    """Derive a sharper profile for a term plan from its abstract facts.

    The tightened model: a scan site at depth ``d`` performs at most
    ``T^(d+1) <= (N+2)^(d+1)`` loop-body entries, each costing at most
    the plan size in steps; emission/readback is covered by the
    cardinality domain (``emit_degree <= scan_degree``); the plan's own
    data-independent redexes add ``normalize_steps`` once.  Hence

        (s + 1) * DEFAULT_COEFFICIENT * size * (N + 2) ** scan_degree

    plus the normalization overhead folded into the coefficient.  The
    profile is adopted only when it dominates the syntactic one (degree
    strictly smaller, or equal with a smaller constant); otherwise
    ``None`` is returned and the syntactic envelope stands.
    """
    if facts is None:
        facts = abstract_term_facts(term, input_count=input_count)
    if facts.fallback is not None:
        return None, facts
    size = max(base.size, term_size(term), 1)
    degree = max(facts.scan_degree, facts.emit_degree)
    sites = len(facts.scan_sites)
    coefficient = (
        DEFAULT_COEFFICIENT * (sites + 1)
        + facts.normalize_steps // size
        + 1
    )
    tightened = CostProfile(
        kind="term",
        size=size,
        degree=degree,
        stage_arity=0,
        coefficient=coefficient,
    )
    if degree < base.degree:
        return tightened, facts
    if (
        degree == base.degree
        and coefficient * size < base.coefficient * base.size
    ):
        return tightened, facts
    return None, facts


def abstract_fixpoint_facts(query) -> AbstractFacts:
    """The abstract facts of a fixpoint spec (RA level).

    The occurrence domain counts base-relation mentions in the effective
    step; the cardinality domain caps the inflationary crank at
    ``|D|^k`` stages (each stage adds at least one of the ``|D|^k``
    candidate tuples, or the iteration has converged).
    """
    from repro.relalg.ast import Base, RAExpr

    counts: Dict[str, int] = {name: 0 for name in query.input_names()}

    def visit(expr) -> None:
        if isinstance(expr, Base):
            if expr.name in counts:
                counts[expr.name] += 1
            return
        for attr in getattr(expr, "__slots__", ()):
            child = getattr(expr, attr)
            if isinstance(child, RAExpr):
                visit(child)

    visit(query.effective_step())
    k = query.output_arity
    return AbstractFacts(
        kind="fixpoint",
        input_scans={
            name: Interval(lo=0, hi=count)
            for name, count in counts.items()
        },
        emit_degree=k,
        emit_sites=1,
        stage_interval=Interval(lo=0, hi=None),
    )


def tighten_fixpoint_profile(base: CostProfile) -> CostProfile:
    """Cap the stage multiplier of a fixpoint profile by the domain.

    The syntactic envelope charges ``(N+2)^k`` stages; the evaluator
    (:func:`repro.eval.ptime.run_fixpoint_query`) cranks at most
    ``|D|^k`` stages plus the initial and the convergence-detecting one,
    and ``|D|^k + 2 <= (N+2)^k`` for every database (``|D| <= N``), so
    the swap is a pointwise tightening of a still-sound bound.
    """
    return replace(base, stage_cap="domain")
