"""The analyzer driver: one call per query plan, all passes in order.

:func:`analyze_term` runs the term passes (well-formedness, typing /
order-budget certification, iterator-accumulator check, cost profile) and
:func:`analyze_fixpoint` runs the spec-level passes plus the tower cost
profile; :func:`analyze` dispatches on the plan shape.  Each returns an
:class:`~repro.analysis.diagnostics.AnalysisReport` — the catalog attaches
it to the registered entry, and ``repro lint`` renders it.
"""

from __future__ import annotations

from typing import Optional, Set, Union

from repro.analysis.cost import (
    CostProfile,
    DatabaseStats,
    fixpoint_cost_profile,
    term_cost_profile,
)
from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.fixpoint_passes import fixpoint_pass
from repro.analysis.term_passes import (
    accumulator_pass,
    body_typing_prefix,
    structural_pass,
    typing_pass,
)
from repro.lam.terms import Term
from repro.queries.fixpoint import FixpointQuery, build_fixpoint_query
from repro.queries.language import QueryArity

#: Derivation order of every Theorem 4.2 fixpoint tower: the towers are
#: TLI=1 plans (order 4) regardless of the step expression.
FIXPOINT_TOWER_ORDER = 4


def analyze_term(
    term: Term,
    *,
    name: str = "<term>",
    signature: Optional[QueryArity] = None,
    max_order: Optional[int] = None,
    known_constants: Optional[Set[str]] = None,
    stats: Optional[DatabaseStats] = None,
    default_fuel: Optional[int] = None,
) -> AnalysisReport:
    """Run every term-level pass over ``term`` and return the report.

    ``signature`` certifies the plan against a declared arity signature
    (Lemma 3.9) and pins the TLI= fragment; without one the term is typed
    standalone.  ``known_constants`` enables the unknown-constant check;
    ``stats``/``default_fuel`` enable the TLI011 fuel-headroom check.
    """
    report = AnalysisReport(name=name, kind="term")
    structural_pass(term, report, known_constants=known_constants)
    typing = typing_pass(
        term, report, signature=signature, max_order=max_order
    )
    # The typing result's occurrence paths are relative to the typed body
    # (the plan minus its input binders) when a signature is given.
    _, body = body_typing_prefix(term, signature)
    accumulator_pass(body, report, typing)

    if typing is not None:
        input_count = len(signature.inputs) if signature is not None else None
        output_arity = signature.output if signature is not None else 0
        report.cost = term_cost_profile(
            term, input_count=input_count, output_arity=output_arity
        )
        _certify_cost(report, stats=stats, default_fuel=default_fuel)
    return report


def analyze_fixpoint(
    query: FixpointQuery,
    *,
    name: str = "<fixpoint>",
    compiled: Optional[Term] = None,
    max_order: Optional[int] = None,
    stats: Optional[DatabaseStats] = None,
    default_fuel: Optional[int] = None,
) -> AnalysisReport:
    """Run the spec-level passes over a fixpoint query and return the
    report.  ``compiled`` (the Theorem 4.2 tower) is built on demand when
    not supplied; it only sizes the cost profile."""
    report = AnalysisReport(name=name, kind="fixpoint")
    fixpoint_pass(query, report)
    if not report.ok:
        return report

    report.order = FIXPOINT_TOWER_ORDER
    report.fragment = f"TLI={FIXPOINT_TOWER_ORDER - 3}"
    report.add(
        "TLI006",
        f"derivation order {report.order} (Theorem 4.2 tower); the query "
        f"lands in {report.fragment}",
    )
    if max_order is not None and report.order > max_order:
        report.add(
            "TLI007",
            f"derivation order {report.order} exceeds the declared budget "
            f"{max_order} (fragment budget TLI={max(max_order - 3, 0)})",
        )

    if compiled is None:
        compiled = build_fixpoint_query(query)
    report.cost = fixpoint_cost_profile(query, compiled)
    _certify_cost(report, stats=stats, default_fuel=default_fuel)
    return report


def analyze(
    plan: Union[Term, FixpointQuery],
    *,
    name: str = "<plan>",
    signature: Optional[QueryArity] = None,
    max_order: Optional[int] = None,
    known_constants: Optional[Set[str]] = None,
    stats: Optional[DatabaseStats] = None,
    default_fuel: Optional[int] = None,
) -> AnalysisReport:
    """Dispatch on the plan shape (``signature`` applies to terms only)."""
    if isinstance(plan, FixpointQuery):
        return analyze_fixpoint(
            plan,
            name=name,
            max_order=max_order,
            stats=stats,
            default_fuel=default_fuel,
        )
    return analyze_term(
        plan,
        name=name,
        signature=signature,
        max_order=max_order,
        known_constants=known_constants,
        stats=stats,
        default_fuel=default_fuel,
    )


def _certify_cost(
    report: AnalysisReport,
    *,
    stats: Optional[DatabaseStats],
    default_fuel: Optional[int],
) -> None:
    """Emit the TLI010 certificate (and TLI011 when the bound outgrows the
    deployment's default fuel against concrete database statistics)."""
    profile = report.cost
    if profile is None:
        return
    message = f"static cost bound {profile.describe()}"
    if stats is not None:
        message += (
            f"; on N={stats.atoms}, D={stats.domain}: "
            f"{profile.bound(stats)} steps"
        )
    report.add("TLI010", message)
    if (
        stats is not None
        and default_fuel is not None
        and profile.bound(stats) > default_fuel
    ):
        report.add(
            "TLI011",
            f"static cost bound {profile.bound(stats)} exceeds the default "
            f"fuel budget {default_fuel}; requests against a database this "
            f"size need a derived or explicit budget",
        )


def fuel_budget(
    profile: Optional[CostProfile],
    stats: Optional[DatabaseStats],
    *,
    default: int,
    floor: int = 10_000,
) -> int:
    """The per-request fuel the runtime should grant a plan.

    With a cost certificate and database statistics, the static bound
    (never below ``floor``) replaces the flat ``default``: Theorem 5.1
    guarantees honest plans finish inside it, so anything that exhausts it
    is a runaway.  Without a certificate the flat default stands.
    """
    if profile is None or stats is None:
        return default
    return max(profile.bound(stats), floor)
