"""The analyzer driver: one call per query plan, all passes in order.

:func:`analyze_term` runs the term passes (well-formedness, typing /
order-budget certification, iterator-accumulator check, cost profile) and
:func:`analyze_fixpoint` runs the spec-level passes plus the tower cost
profile; :func:`analyze` dispatches on the plan shape.  Each returns an
:class:`~repro.analysis.diagnostics.AnalysisReport` — the catalog attaches
it to the registered entry, and ``repro lint`` renders it.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set, Tuple, Union

from repro.analysis.cost import (
    CostProfile,
    DatabaseStats,
    fixpoint_cost_profile,
    term_cost_profile,
)
from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.fixpoint_passes import fixpoint_pass
from repro.analysis.term_passes import (
    accumulator_pass,
    body_typing_prefix,
    structural_pass,
    typing_pass,
)
from repro.lam.terms import Term
from repro.queries.fixpoint import FixpointQuery, build_fixpoint_query
from repro.queries.language import QueryArity

#: Derivation order of every Theorem 4.2 fixpoint tower: the towers are
#: TLI=1 plans (order 4) regardless of the step expression.
FIXPOINT_TOWER_ORDER = 4


def analyze_term(
    term: Term,
    *,
    name: str = "<term>",
    signature: Optional[QueryArity] = None,
    max_order: Optional[int] = None,
    known_constants: Optional[Set[str]] = None,
    stats: Optional[DatabaseStats] = None,
    default_fuel: Optional[int] = None,
    target_schema: Optional[Sequence[Tuple[str, int]]] = None,
) -> AnalysisReport:
    """Run every term-level pass over ``term`` and return the report.

    ``signature`` certifies the plan against a declared arity signature
    (Lemma 3.9) and pins the TLI= fragment; without one the term is typed
    standalone.  ``known_constants`` enables the unknown-constant check;
    ``stats``/``default_fuel`` enable the TLI011 fuel-headroom check.
    ``target_schema`` — an ordered ``(name, arity)`` database schema —
    enables the schema-contract checks (TLI024/TLI025).
    """
    report = AnalysisReport(name=name, kind="term")
    structural_pass(term, report, known_constants=known_constants)
    typing = typing_pass(
        term, report, signature=signature, max_order=max_order
    )
    # The typing result's occurrence paths are relative to the typed body
    # (the plan minus its input binders) when a signature is given.
    _, body = body_typing_prefix(term, signature)
    accumulator_pass(body, report, typing)

    if typing is not None:
        input_count = len(signature.inputs) if signature is not None else None
        output_arity = signature.output if signature is not None else 0
        events: list = []
        report.cost = term_cost_profile(
            term,
            input_count=input_count,
            output_arity=output_arity,
            events=events,
        )
        for _tag, message in events:
            report.add("TLI022", message)

        effective = _simplify_pass(term, report)
        facts = _absint_pass(effective, report, input_count=input_count)
        if signature is not None:
            _provenance_pass(
                report, signature, facts, target_schema=target_schema
            )
        _certify_cost(report, stats=stats, default_fuel=default_fuel)
        if signature is not None:
            _distribution_pass(report, effective, signature)
    return report


def _simplify_pass(term: Term, report: AnalysisReport) -> Term:
    """Run the plan simplifier; returns the plan the runtime should
    evaluate (the simplified one when any rewrite applied)."""
    from repro.analysis.simplify import simplify_term

    outcome = simplify_term(term)
    if outcome.skipped is not None:
        report.add("TLI022", outcome.skipped)
        return term
    if outcome.dead_bindings:
        names = ", ".join(outcome.dead_bindings)
        report.add(
            "TLI019",
            f"eliminated dead let-binding(s) {names}: never demanded by "
            "the liveness dataflow; the simplified plan skips their "
            "let-steps entirely",
        )
    if outcome.changed:
        report.simplified = outcome.term
    return outcome.term if outcome.changed else term


def _absint_pass(
    term: Term,
    report: AnalysisReport,
    *,
    input_count: Optional[int],
) -> Optional["AbstractFacts"]:  # noqa: F821 - see analysis.absint
    """Run the abstract interpreter; adopt a tightened profile (TLI020).

    Returns the abstract facts so the provenance pass can reuse the scan
    counts without re-walking the normal form.
    """
    from repro.analysis.absint import tighten_term_profile

    if report.cost is None:
        return None
    tightened, facts = tighten_term_profile(
        term, base=report.cost, input_count=input_count
    )
    report.facts = facts.as_dict()
    if tightened is not None:
        report.tightened_cost = tightened
        report.add(
            "TLI020",
            f"abstract interpretation tightened the cost certificate: "
            f"{report.cost.describe()} -> {tightened.describe()} "
            f"({len(facts.scan_sites)} scan site(s), loop-entry degree "
            f"{facts.scan_degree})",
        )
    return facts


def _provenance_pass(
    report: AnalysisReport,
    signature: "QueryArity",
    facts: Optional["AbstractFacts"],  # noqa: F821 - see analysis.absint
    *,
    target_schema: Optional[Sequence[Tuple[str, int]]],
) -> None:
    """Derive the read-set certificate (TLI023/TLI027) and, when a target
    schema is known, check the plan's schema contract (TLI024/TLI025)."""
    from repro.analysis.absint import AbstractFacts
    from repro.analysis.provenance import (
        check_schema_contract,
        term_provenance,
    )

    if facts is None:
        facts = AbstractFacts(
            kind="term", fallback="no abstract facts available"
        )
    provenance = term_provenance(signature, facts)
    report.provenance = provenance
    if provenance.exact:
        report.add("TLI023", f"read-set: {provenance.describe()}")
    else:
        report.add(
            "TLI027",
            f"read-set analysis fell back to the conservative top "
            f"({provenance.fallback}); every input is treated as "
            f"scanned with unbounded multiplicity",
        )
    if target_schema is not None:
        mismatches, unused = check_schema_contract(
            provenance, target_schema
        )
        for message in mismatches:
            report.add("TLI024", message)
        for message in unused:
            report.add("TLI025", message)


def _distribution_pass(
    report: AnalysisReport,
    term: Term,
    signature: "QueryArity",
) -> None:
    """Classify the plan for sharded execution (TLI017/TLI018), refine it
    by the read-set (TLI026), and note when the per-shard fuel split
    rides the tightened certificate (TLI021)."""
    # Imported lazily: the shard planner imports this module.
    from repro.shard.planner import (
        plan_term_distribution,
        refine_distribution,
    )

    provenance = report.provenance
    input_names: Optional[Tuple[str, ...]] = None
    if provenance is not None and provenance.exact:
        names = tuple(read.name for read in provenance.reads)
        if len(set(names)) == len(names):
            input_names = names
    plan = plan_term_distribution(term, signature, input_names=input_names)
    if provenance is not None and provenance.exact:
        scanned = {read.name for read in provenance.scanned_reads()}
        plan, dropped = refine_distribution(plan, scanned)
        if dropped:
            report.add(
                "TLI026",
                f"distribution plan refined by the read-set: unscanned "
                f"input(s) {', '.join(dropped)} dropped from the "
                f"partition candidates; shard fuel is priced against "
                f"read-set-restricted statistics",
            )
    report.add(plan.code, f"[{plan.mode}] {plan.reason}")
    if plan.distributable and report.tightened_cost is not None:
        report.add(
            "TLI021",
            "per-shard fuel budgets derive from the tightened "
            f"certificate {report.tightened_cost.describe()} instantiated "
            "at each shard's statistics (instead of the syntactic "
            f"envelope {report.cost.describe()})",
        )


def analyze_fixpoint(
    query: FixpointQuery,
    *,
    name: str = "<fixpoint>",
    compiled: Optional[Term] = None,
    max_order: Optional[int] = None,
    stats: Optional[DatabaseStats] = None,
    default_fuel: Optional[int] = None,
    target_schema: Optional[Sequence[Tuple[str, int]]] = None,
) -> AnalysisReport:
    """Run the spec-level passes over a fixpoint query and return the
    report.  ``compiled`` (the Theorem 4.2 tower) is built on demand when
    not supplied; it only sizes the cost profile.  ``target_schema``
    enables the schema-contract checks (TLI024/TLI025)."""
    report = AnalysisReport(name=name, kind="fixpoint")
    fixpoint_pass(query, report)
    if not report.ok:
        return report

    report.order = FIXPOINT_TOWER_ORDER
    report.fragment = f"TLI={FIXPOINT_TOWER_ORDER - 3}"
    report.add(
        "TLI006",
        f"derivation order {report.order} (Theorem 4.2 tower); the query "
        f"lands in {report.fragment}",
    )
    if max_order is not None and report.order > max_order:
        report.add(
            "TLI007",
            f"derivation order {report.order} exceeds the declared budget "
            f"{max_order} (fragment budget TLI={max(max_order - 3, 0)})",
        )

    if compiled is None:
        compiled = build_fixpoint_query(query)
    report.cost = fixpoint_cost_profile(query, compiled)

    from repro.analysis.absint import (
        abstract_fixpoint_facts,
        tighten_fixpoint_profile,
    )

    report.facts = abstract_fixpoint_facts(query).as_dict()

    from repro.analysis.provenance import (
        check_schema_contract,
        fixpoint_provenance,
    )

    report.provenance = fixpoint_provenance(query)
    report.add("TLI023", f"read-set: {report.provenance.describe()}")
    if target_schema is not None:
        mismatches, unused = check_schema_contract(
            report.provenance, target_schema
        )
        for message in mismatches:
            report.add("TLI024", message)
        for message in unused:
            report.add("TLI025", message)

    report.tightened_cost = tighten_fixpoint_profile(report.cost)
    report.add(
        "TLI020",
        "abstract interpretation capped the crank's stage multiplier by "
        f"the domain: {report.cost.describe()} -> "
        f"{report.tightened_cost.describe()} (the inflationary crank "
        f"runs at most |D|^{query.output_arity} stages)",
    )
    _certify_cost(report, stats=stats, default_fuel=default_fuel)

    # Imported lazily: the shard planner imports this module.
    from repro.shard.planner import plan_fixpoint_distribution

    plan = plan_fixpoint_distribution(query)
    report.add(plan.code, f"[{plan.mode}] {plan.reason}")
    if plan.distributable:
        report.add(
            "TLI021",
            "per-shard fuel budgets derive from the tightened "
            f"certificate {report.tightened_cost.describe()} instantiated "
            "at each shard's statistics (instead of the syntactic "
            f"envelope {report.cost.describe()})",
        )
    return report


def analyze(
    plan: Union[Term, FixpointQuery],
    *,
    name: str = "<plan>",
    signature: Optional[QueryArity] = None,
    max_order: Optional[int] = None,
    known_constants: Optional[Set[str]] = None,
    stats: Optional[DatabaseStats] = None,
    default_fuel: Optional[int] = None,
    target_schema: Optional[Sequence[Tuple[str, int]]] = None,
) -> AnalysisReport:
    """Dispatch on the plan shape (``signature`` applies to terms only)."""
    if isinstance(plan, FixpointQuery):
        return analyze_fixpoint(
            plan,
            name=name,
            max_order=max_order,
            stats=stats,
            default_fuel=default_fuel,
            target_schema=target_schema,
        )
    return analyze_term(
        plan,
        name=name,
        signature=signature,
        max_order=max_order,
        known_constants=known_constants,
        stats=stats,
        default_fuel=default_fuel,
        target_schema=target_schema,
    )


def _certify_cost(
    report: AnalysisReport,
    *,
    stats: Optional[DatabaseStats],
    default_fuel: Optional[int],
) -> None:
    """Emit the TLI010 certificate (and TLI011 when the bound outgrows the
    deployment's default fuel against concrete database statistics)."""
    profile = report.cost
    if profile is None:
        return
    message = f"static cost bound {profile.describe()}"
    if stats is not None:
        message += (
            f"; on N={stats.atoms}, D={stats.domain}: "
            f"{profile.bound(stats)} steps"
        )
    report.add("TLI010", message)
    # Fuel derivation rides the tightened certificate when one was
    # adopted, so the headroom check does too.
    effective = report.tightened_cost or profile
    if (
        stats is not None
        and default_fuel is not None
        and effective.bound(stats) > default_fuel
    ):
        report.add(
            "TLI011",
            f"static cost bound {effective.bound(stats)} exceeds the "
            f"default fuel budget {default_fuel}; requests against a "
            f"database this size need a derived or explicit budget",
        )


def fuel_budget(
    profile: Optional[CostProfile],
    stats: Optional[DatabaseStats],
    *,
    default: int,
    floor: int = 10_000,
) -> int:
    """The per-request fuel the runtime should grant a plan.

    With a cost certificate and database statistics, the static bound
    (never below ``floor``) replaces the flat ``default``: Theorem 5.1
    guarantees honest plans finish inside it, so anything that exhausts it
    is a runaway.  Without a certificate the flat default stands.
    """
    if profile is None or stats is None:
        return default
    return max(profile.bound(stats), floor)
