"""Lint targets: where ``repro lint`` (and the CI job) find things to check.

Two sources:

* :func:`operator_library_targets` — representative instantiations of every
  builder in :mod:`repro.queries.operators`, each with the arity signature
  it certifies against (helpers like ``Equal_k`` that are not query-shaped
  are typed standalone);
* :func:`load_lam_file` — a ``.lam`` source file whose leading ``#`` comment
  lines carry lint directives:

      # name: my-query
      # inputs: 2 2
      # output: 2
      # max-order: 4
      # constants: a b c
      # database: E=2 S=1
      # expect: TLI001 TLI008

  ``inputs``/``output`` together declare the arity signature; ``expect``
  lists diagnostic codes the file is *supposed* to trigger (the seeded
  bad-query corpus under ``tests/fixtures`` uses it, and ``repro lint``
  treats an expected code as satisfied rather than failing).
  ``database`` declares a target schema — an ordered ``name=arity`` list —
  that the plan's provenance certificate (TLI023) is cross-checked
  against, firing TLI024/TLI025 on contract violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Set, Tuple, Union

from repro.errors import ReproError
from repro.lam.parser import parse
from repro.lam.terms import Term
from repro.queries.fixpoint import FixpointQuery
from repro.queries.language import QueryArity
from repro.queries import operators as ops
from repro.relalg.ast import ColumnEqualsColumn


class CorpusError(ReproError):
    """A ``.lam`` lint file that cannot be loaded (bad directive or
    unparseable source)."""


@dataclass
class LintTarget:
    """One unit of work for the analyzer driver."""

    name: str
    plan: Union[Term, FixpointQuery]
    signature: Optional[QueryArity] = None
    max_order: Optional[int] = None
    known_constants: Optional[Set[str]] = None
    #: Codes this target is *expected* to raise (seeded-corpus fixtures).
    expect: Set[str] = field(default_factory=set)
    #: Ordered ``(relation_name, arity)`` schema the plan's provenance is
    #: checked against (the ``database:`` directive); None skips the check.
    target_schema: Optional[Tuple[Tuple[str, int], ...]] = None
    source: str = "<builtin>"


def operator_library_targets() -> List[LintTarget]:
    """Every operator-library builder, instantiated at representative
    arities, paired with the signature it must certify against."""

    def query(name: str, term: Term, inputs: Tuple[int, ...], output: int):
        return LintTarget(
            name=name,
            plan=term,
            signature=QueryArity(inputs=inputs, output=output),
        )

    def helper(name: str, term: Term) -> LintTarget:
        return LintTarget(name=name, plan=term)

    return [
        helper("equal_2", ops.equal_term(2)),
        helper("member_2", ops.member_term(2)),
        helper("order_2", ops.order_term(2)),
        helper("empty_relation", ops.empty_relation_term()),
        query("intersection_1", ops.intersection_term(1), (1, 1), 1),
        query("intersection_2", ops.intersection_term(2), (2, 2), 2),
        query("union_2", ops.union_term(2), (2, 2), 2),
        query("difference_2", ops.difference_term(2), (2, 2), 2),
        query("product_1_2", ops.product_term(1, 2), (1, 2), 3),
        query("project_3_to_20", ops.project_term(3, (2, 0)), (3,), 2),
        query(
            "select_2_col0_eq_col1",
            ops.select_term(2, ColumnEqualsColumn(0, 1)),
            (2,),
            2,
        ),
        query(
            "distinct_projection_2_col0",
            ops.distinct_projection_term(2, 0),
            (2,),
            1,
        ),
        query("distinct_union_2", ops.distinct_union_term(2), (2, 2), 2),
        query(
            "precedes_relation_1", ops.precedes_relation_term(1), (1,), 2
        ),
    ]


_DIRECTIVES = (
    "name", "inputs", "output", "max-order", "constants", "expect",
    "database",
)


def _parse_directives(lines: List[str], where: str) -> dict:
    values: dict = {}
    for line in lines:
        stripped = line.strip()
        if not stripped.startswith("#"):
            break
        body = stripped.lstrip("#").strip()
        if ":" not in body:
            continue
        key, _, raw = body.partition(":")
        key = key.strip().lower()
        if key not in _DIRECTIVES:
            continue
        value = raw.strip()
        try:
            if key == "inputs":
                values[key] = tuple(
                    int(piece)
                    for piece in value.replace(",", " ").split()
                )
            elif key in ("output", "max-order"):
                values[key] = int(value)
            elif key in ("constants", "expect"):
                values[key] = set(value.replace(",", " ").split())
            elif key == "database":
                schema = []
                for piece in value.replace(",", " ").split():
                    rel, eq, arity = piece.partition("=")
                    if not eq or not rel:
                        raise ValueError(
                            f"expected 'name=arity', got {piece!r}"
                        )
                    schema.append((rel, int(arity)))
                values[key] = tuple(schema)
            else:
                values[key] = value
        except ValueError as exc:
            raise CorpusError(
                f"{where}: bad '{key}' directive {value!r}: {exc}"
            ) from exc
    return values


def load_lam_source(
    source: str, *, name: str, where: str = "<string>"
) -> LintTarget:
    """Parse ``.lam`` source text (directive header + term) into a target."""
    lines = source.splitlines()
    directives = _parse_directives(lines, where)
    term_source = "\n".join(
        line for line in lines if not line.strip().startswith("#")
    )
    if not term_source.strip():
        raise CorpusError(f"{where}: no term after the directive header")
    constants = directives.get("constants", set())
    try:
        term = parse(term_source, constants=sorted(constants))
    except ReproError as exc:
        raise CorpusError(f"{where}: cannot parse term: {exc}") from exc

    signature: Optional[QueryArity] = None
    if "inputs" in directives or "output" in directives:
        if "inputs" not in directives or "output" not in directives:
            raise CorpusError(
                f"{where}: 'inputs' and 'output' directives must be given "
                f"together to declare a signature"
            )
        signature = QueryArity(
            inputs=directives["inputs"], output=directives["output"]
        )
    return LintTarget(
        name=directives.get("name", name),
        plan=term,
        signature=signature,
        max_order=directives.get("max-order"),
        known_constants=constants or None,
        expect=directives.get("expect", set()),
        target_schema=directives.get("database"),
        source=where,
    )


def load_lam_file(path: Union[str, Path]) -> LintTarget:
    path = Path(path)
    return load_lam_source(
        path.read_text(encoding="utf-8"),
        name=path.stem,
        where=str(path),
    )


def collect_lam_files(paths: List[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into the sorted list of ``.lam`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.lam")))
        else:
            out.append(path)
    return out
