"""Static cost-bound estimation (pass 4 of the certifier).

Theorem 5.1 proves that order-<=4 query terms normalize in a number of
steps polynomial in the database size; this module computes a *concrete*
polynomial for each plan so the bound can be used operationally: the
service runtime derives per-request fuel budgets from it instead of a flat
default, and the acceptance tests assert the bound dominates the observed
NBE step counts on the benchmark corpus.

The model follows the iterator discipline of the Section 4 compilers
(every occurrence of an encoded input is a list iterator that scans its
list once per enclosing iteration level):

* **Term plans.**  With ``q`` occurrences of input-relation variables in
  the (let-expanded) body, nesting can multiply at most one full scan per
  occurrence, so evaluation performs at most ``(N + 2)^q`` loop-body
  entries on a database with ``N`` constant occurrences; each entry costs
  at most the plan size in steps, and readback adds at most one
  ``(N + 2)^k`` term for output arity ``k``.  The bound is

      coefficient * size * (N + 2) ** degree,
      degree = max(q, output_arity)

* **Fixpoint plans.**  The Theorem 4.2 tower cranks ``(N + 2)^k`` stages;
  each stage converts between list and characteristic-function form
  (enumerating ``D^k`` twice) and runs the TLI=0 step over the inputs plus
  the current stage (at most ``k * D^k`` additional atoms).  The bound is

      coefficient * size * (N + 2)**k * (N + k * D**k + 2)**(b + 2 * k)

  with ``b`` the number of base-relation occurrences in the effective
  step.

Both are deliberately loose upper envelopes — soundness over tightness:
a fuel budget that is 100x the real cost still stops runaway evaluation
six orders of magnitude before the flat default would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.db.relations import Database
from repro.lam.terms import Abs, App, Let, Term, Var, term_size

#: Multiplicative safety margin of every bound.
DEFAULT_COEFFICIENT = 16

#: Let-expansion guard: beyond this many nodes the expansion is abandoned
#: and occurrences come from the liveness dataflow of
#: :func:`repro.analysis.absint.demanded_occurrences` instead (same count,
#: computed without materializing the expansion); the event is surfaced to
#: the analyzer as a TLI022 diagnostic.
_EXPANSION_CAP = 200_000

#: Event tag recorded on the ``events`` out-parameter of
#: :func:`term_cost_profile` when the expansion guard trips.
EXPANSION_GUARD_EVENT = "expansion-guard"


@dataclass(frozen=True)
class DatabaseStats:
    """The database-size quantities the cost polynomials range over."""

    atoms: int      # total constant occurrences: sum of arity * |r|
    tuples: int     # total tuple count
    domain: int     # |active domain|
    relations: int

    @staticmethod
    def of(database: Database) -> "DatabaseStats":
        atoms = 0
        tuples = 0
        for _, relation in database:
            atoms += relation.arity * len(relation)
            tuples += len(relation)
        return DatabaseStats(
            atoms=atoms,
            tuples=tuples,
            domain=len(database.active_domain()),
            relations=len(database),
        )

    def as_dict(self) -> dict:
        return {
            "atoms": self.atoms,
            "tuples": self.tuples,
            "domain": self.domain,
            "relations": self.relations,
        }


@dataclass(frozen=True)
class CostProfile:
    """A database-independent cost polynomial for one registered plan.

    ``bound(stats)`` instantiates it against concrete database statistics;
    the result is measured in NBE evaluation steps (see
    :func:`repro.lam.nbe.nbe_normalize_counted`).
    """

    kind: str            # "term" | "fixpoint"
    size: int            # AST size of the plan (compiled tower if fixpoint)
    degree: int          # scan degree (see module docstring)
    stage_arity: int     # fixpoint output arity k; 0 for term plans
    coefficient: int = DEFAULT_COEFFICIENT
    #: Fixpoint stage multiplier: "atoms" charges the syntactic
    #: ``(N+2)^k``; "domain" the abstract-interpretation cap ``D^k + 2``
    #: (the inflationary crank runs at most ``|D|^k`` stages plus the
    #: initial and convergence ones, and ``D^k + 2 <= (N+2)^k`` always).
    stage_cap: str = "atoms"

    def bound(self, stats: DatabaseStats) -> int:
        base = stats.atoms + 2
        if self.kind == "fixpoint":
            k = self.stage_arity
            if self.stage_cap == "domain":
                stages = stats.domain ** k + 2
            else:
                stages = base ** k
            stage_atoms = stats.atoms + k * (max(stats.domain, 1) ** k) + 2
            per_stage = self.size * stage_atoms ** self.degree
            return self.coefficient * stages * per_stage
        return self.coefficient * self.size * base ** self.degree

    def describe(self) -> str:
        if self.kind == "fixpoint":
            if self.stage_cap == "domain":
                stages = f"(D^{self.stage_arity}+2)"
            else:
                stages = f"(N+2)^{self.stage_arity}"
            return (
                f"{self.coefficient}·{self.size}·{stages}"
                f"·(N+k·D^k+2)^{self.degree}"
            )
        return f"{self.coefficient}·{self.size}·(N+2)^{self.degree}"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "size": self.size,
            "degree": self.degree,
            "stage_arity": self.stage_arity,
            "coefficient": self.coefficient,
            "stage_cap": self.stage_cap,
            "formula": self.describe(),
        }


def _free_occurrences(term: Term, names: Sequence[str]) -> int:
    """Count free occurrences of ``names`` in ``term`` (shadow-aware)."""
    targets = set(names)
    count = 0
    stack = [(term, frozenset())]
    while stack:
        node, bound = stack.pop()
        if isinstance(node, Var):
            if node.name in targets and node.name not in bound:
                count += 1
        elif isinstance(node, Abs):
            stack.append((node.body, bound | {node.var}))
        elif isinstance(node, App):
            stack.append((node.fn, bound))
            stack.append((node.arg, bound))
        elif isinstance(node, Let):
            stack.append((node.bound, bound))
            stack.append((node.body, bound | {node.var}))
    return count


def _count_lets(term: Term) -> int:
    from repro.lam.terms import subterms

    return sum(1 for node in subterms(term) if isinstance(node, Let))


def _strip_binders(term: Term, count: Optional[int]):
    """Strip up to ``count`` leading binders (all of them when ``None``);
    returns the stripped names and the remaining body."""
    names = []
    node = term
    while isinstance(node, Abs) and (count is None or len(names) < count):
        names.append(node.var)
        node = node.body
    return names, node


def term_cost_profile(
    term: Term,
    *,
    input_count: Optional[int] = None,
    output_arity: int = 0,
    coefficient: int = DEFAULT_COEFFICIENT,
    events: Optional[list] = None,
) -> CostProfile:
    """The cost profile of a term plan ``λR1 ... λRl. body``.

    ``input_count`` fixes how many leading binders are database inputs;
    by default the whole binder prefix is (which matches how the engines
    apply a plan to every encoded relation of the database).

    ``events``, when given, collects ``(tag, message)`` pairs for
    noteworthy estimation events — currently only
    :data:`EXPANSION_GUARD_EVENT`, recorded when the let-expansion guard
    trips and the occurrence count comes from the liveness dataflow
    instead of the materialized expansion.
    """
    names, counted_on = _strip_binders(term, input_count)
    lets = _count_lets(counted_on)
    occurrences: Optional[int] = None
    if lets:
        from repro.lam.terms import expand_lets

        # Reuse through a let multiplies scans; expand when affordable so
        # the occurrence count sees every copy.
        expanded = None
        if term_size(counted_on) <= _EXPANSION_CAP:
            try:
                expanded = expand_lets(counted_on)
            except RecursionError:  # pragma: no cover - pathological nesting
                expanded = None
            if (
                expanded is not None
                and term_size(expanded) > _EXPANSION_CAP
            ):
                expanded = None
        if expanded is not None:
            counted_on = expanded
        else:
            # Guard tripped: the backward multiplicity dataflow computes
            # the same count the expansion would, without materializing
            # it.  Surfaced so the analyzer can report TLI022.
            from repro.analysis.absint import demanded_occurrences

            occurrences = demanded_occurrences(counted_on, names)
            if events is not None:
                events.append(
                    (
                        EXPANSION_GUARD_EVENT,
                        "let-expansion guard tripped "
                        f"({term_size(counted_on)} nodes > "
                        f"{_EXPANSION_CAP}); occurrence count "
                        f"({occurrences}) derived by liveness dataflow "
                        "instead of expansion",
                    )
                )

    if occurrences is None:
        occurrences = _free_occurrences(counted_on, names)
    degree = max(occurrences, output_arity)
    return CostProfile(
        kind="term",
        size=max(term_size(term), 1),
        degree=degree,
        stage_arity=0,
        coefficient=coefficient,
    )


def fixpoint_cost_profile(
    query,  # FixpointQuery; untyped to avoid an import cycle
    compiled: Term,
    *,
    coefficient: int = DEFAULT_COEFFICIENT,
) -> CostProfile:
    """The cost profile of a Theorem 4.2 fixpoint tower."""
    from repro.relalg.ast import RAExpr

    def base_occurrences(expr: RAExpr) -> int:
        from repro.relalg.ast import Base

        if isinstance(expr, Base):
            return 1
        total = 0
        for attr in getattr(expr, "__slots__", ()):
            child = getattr(expr, attr)
            if isinstance(child, RAExpr):
                total += base_occurrences(child)
        return total

    k = query.output_arity
    b = base_occurrences(query.effective_step())
    return CostProfile(
        kind="fixpoint",
        size=max(term_size(compiled), 1),
        degree=b + 2 * k,
        stage_arity=k,
        coefficient=coefficient,
    )
