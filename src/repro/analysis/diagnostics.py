"""The diagnostic framework of the static query certifier.

Every finding of the analyzer is a :class:`Diagnostic` with a *stable*
code (``TLI001``, ``TLI002``, ...), a severity, a human message, and —
when it concerns a specific subterm — a term path (the child-index tuples
the type-inference engines also use, see
:class:`repro.types.infer.TypingResult`).  A run over one query produces
an :class:`AnalysisReport`, which also carries the positive certificates:
the derivation order, the TLI= fragment, and the static cost profile.

Codes are registered in :data:`CODES`; ``docs/analysis.md`` documents each
one with a minimal triggering example, and a test asserts the registry and
the docs stay in sync.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lam.terms import Abs, App, Let, Term


class Severity(enum.IntEnum):
    """Diagnostic severities, ordered so ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one stable diagnostic code."""

    code: str
    title: str
    severity: Severity
    summary: str


#: The stable diagnostic codes.  Never renumber; retire codes by leaving
#: the entry in place and no longer emitting it.
CODES: Dict[str, CodeInfo] = {
    info.code: info
    for info in (
        CodeInfo(
            "TLI001",
            "free variable",
            Severity.ERROR,
            "A query plan must be closed: every variable is bound by a "
            "lambda, a let, or one of the declared relation inputs.",
        ),
        CodeInfo(
            "TLI002",
            "unknown constant",
            Severity.WARNING,
            "The term mentions an atomic constant that appears in no "
            "registered database; the comparison can never succeed.",
        ),
        CodeInfo(
            "TLI003",
            "shadowed binder",
            Severity.WARNING,
            "A binder reuses a name already in scope; the outer binding "
            "is unreachable inside, which is a frequent source of wrong "
            "iterator bodies.",
        ),
        CodeInfo(
            "TLI004",
            "unused iterator accumulator",
            Severity.WARNING,
            "A loop body handed to a relation iterator ignores its "
            "accumulator binder, so the fold degenerates to its first "
            "element (the rest of the list is dead).",
        ),
        CodeInfo(
            "TLI005",
            "ill-typed term",
            Severity.ERROR,
            "The term has no TLC= typing, so strong normalization — and "
            "with it every Section 5 complexity guarantee — is void.",
        ),
        CodeInfo(
            "TLI006",
            "order certificate",
            Severity.INFO,
            "The principal derivation order and the TLI=_i fragment the "
            "query lands in (Definition 3.7: fragment index = order - 3).",
        ),
        CodeInfo(
            "TLI007",
            "order budget exceeded",
            Severity.ERROR,
            "The derivation order exceeds the declared budget; the query "
            "leaves the complexity class the deployment certified for "
            "(Theorems 5.1/5.2).",
        ),
        CodeInfo(
            "TLI008",
            "equality at non-atomic type",
            Severity.ERROR,
            "``Eq`` is the constant o -> o -> g -> g -> g: its first two "
            "arguments must be atoms, the delta rule is undefined on "
            "abstractions or boolean results.",
        ),
        CodeInfo(
            "TLI009",
            "not a query term for its signature",
            Severity.ERROR,
            "The term does not type as a query of the declared arity "
            "signature (Lemma 3.9): wrong binder count, wrong result "
            "type, or a result accumulator forced to a concrete type.",
        ),
        CodeInfo(
            "TLI010",
            "cost certificate",
            Severity.INFO,
            "The static normalization cost profile: a polynomial in the "
            "database size that upper-bounds NBE evaluation steps and "
            "seeds the runtime's fuel budget.",
        ),
        CodeInfo(
            "TLI011",
            "cost bound above default fuel",
            Severity.WARNING,
            "Against the given database statistics the static cost bound "
            "exceeds the service's default fuel budget; requests must "
            "carry a derived or explicit budget to finish.",
        ),
        CodeInfo(
            "TLI012",
            "fixpoint step schema error",
            Severity.ERROR,
            "The step expression of a fixpoint query references unknown "
            "relations or combines arities inconsistently.",
        ),
        CodeInfo(
            "TLI013",
            "stage explosion",
            Severity.WARNING,
            "The crank runs |D|^k stages for output arity k; k >= 3 makes "
            "the stage count cubic (or worse) in the domain.",
        ),
        CodeInfo(
            "TLI014",
            "non-monotone non-inflationary step",
            Severity.WARNING,
            "A non-inflationary step using difference or negation need "
            "not be monotone, so the |D|^k-stage crank may stop short of "
            "a fixpoint (or oscillate).",
        ),
        CodeInfo(
            "TLI015",
            "unused fixpoint input",
            Severity.WARNING,
            "A declared input relation never appears in the step "
            "expression; it still pads the crank and the active domain.",
        ),
        CodeInfo(
            "TLI016",
            "step ignores the fixpoint variable",
            Severity.INFO,
            "The step never reads the current stage, so the iteration "
            "converges after one stage; a plain TLI=0 query would do.",
        ),
        CodeInfo(
            "TLI017",
            "plan is shard-distributable",
            Severity.INFO,
            "Every input relation is consumed by a single tuple-local "
            "fold (or the plan joins inputs so that one side can be "
            "split with the rest broadcast), so partitioned evaluation "
            "followed by the canonical merge equals single-shard "
            "evaluation by fold/concatenation distributivity.",
        ),
        CodeInfo(
            "TLI018",
            "plan is not partition-distributable",
            Severity.INFO,
            "The plan re-iterates an input, folds one inside another "
            "(a self-join), or depends on a global property of the "
            "whole database (active domain, tuple order), so shards "
            "cannot evaluate it independently; it runs in-process.",
        ),
        CodeInfo(
            "TLI019",
            "dead subplan eliminated",
            Severity.INFO,
            "A let-binding is never demanded by its body (liveness "
            "dataflow), so the simplifier removed it; the plan pays one "
            "less let-step per evaluation and the registered simplified "
            "plan no longer contains the subterm.",
        ),
        CodeInfo(
            "TLI020",
            "tightened cost certificate",
            Severity.INFO,
            "Abstract interpretation over the plan's data-independent "
            "normal form produced a sharper cost polynomial than the "
            "syntactic occurrence count; the message carries the "
            "before/after formulas and the runtime derives fuel from "
            "the tightened one.",
        ),
        CodeInfo(
            "TLI021",
            "cardinality-refined shard fuel split",
            Severity.INFO,
            "The plan is shard-distributable and carries a tightened "
            "cost certificate, so the shard planner's per-shard fuel "
            "budgets are derived from the abstract cardinality facts "
            "instead of the loose syntactic envelope.",
        ),
        CodeInfo(
            "TLI022",
            "analysis guard: simplification or expansion skipped",
            Severity.WARNING,
            "A size guard stopped an analysis transformation: either "
            "the plan simplifier skipped a plan too large to rewrite, "
            "or the cost estimator's let-expansion guard tripped and "
            "the occurrence count came from the liveness dataflow "
            "instead of the materialized expansion.",
        ),
        CodeInfo(
            "TLI023",
            "read-set certificate",
            Severity.INFO,
            "The static read-set of the plan: which input relations it "
            "scans, with per-relation scan multiplicities from the "
            "abstract scan-count domain.  Unscanned relations cannot "
            "influence the result, so cached results survive their "
            "updates (relation-granular invalidation).",
        ),
        CodeInfo(
            "TLI024",
            "schema contract violation",
            Severity.ERROR,
            "The plan's schema contract does not fit the target "
            "database: wrong relation count for a positional term "
            "plan, wrong arity, or a missing named fixpoint input.  "
            "Running anyway produces a stuck encoding that fails only "
            "at decode time.",
        ),
        CodeInfo(
            "TLI025",
            "unused relation in target database",
            Severity.INFO,
            "The target database supplies a relation the plan never "
            "scans; harmless, but updates to it will never invalidate "
            "this plan's cached results.",
        ),
        CodeInfo(
            "TLI026",
            "read-set-refined shard plan",
            Severity.INFO,
            "The distribution plan was derived over the plan's read-set "
            "only: relations never scanned were dropped from the "
            "partition candidates and shard fuel is priced against "
            "read-set-restricted database statistics.",
        ),
        CodeInfo(
            "TLI027",
            "provenance fallback on conservative top",
            Severity.INFO,
            "The read-set analysis fell back to the conservative top "
            "(every input potentially scanned, unbounded multiplicity); "
            "caching degrades to whole-version invalidation and "
            "admission prices against the full database statistics.",
        ),
        CodeInfo(
            "TLI028",
            "compiled to relational algebra",
            Severity.INFO,
            "The plan's normal form lowered to a set-backed "
            "relational-algebra program (hash joins/probes, no "
            "beta-reduction on the hot path); the service runs it on "
            "the \"ra\" engine, with NBE kept as differential oracle "
            "and runtime fallback.",
        ),
        CodeInfo(
            "TLI029",
            "compile fallback to reduction",
            Severity.INFO,
            "The plan falls outside the compiler's liftable normal-form "
            "grammar (the message carries the fallback-taxonomy reason); "
            "evaluation stays on the certified reduction engines — a "
            "correctness-neutral, performance-only decision.",
        ),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str
    severity: Severity
    message: str
    #: Child-index path from the root of the analyzed term ("()" is the
    #: whole term); ``None`` when the finding has no term location (e.g.
    #: fixpoint-spec findings).
    path: Optional[Tuple[int, ...]] = None
    #: Human rendering of ``path`` (e.g. ``body.fn.arg``), plus a snippet.
    location: str = ""

    @property
    def title(self) -> str:
        info = CODES.get(self.code)
        return info.title if info else self.code

    def format(self) -> str:
        where = f" at {self.location}" if self.location else ""
        return f"{self.code} {self.severity.label}{where}: {self.message}"

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.label,
            "title": self.title,
            "message": self.message,
            "path": list(self.path) if self.path is not None else None,
            "location": self.location or None,
        }


_CHILD_LABELS = {
    Abs: ("body",),
    App: ("fn", "arg"),
    Let: ("bound", "body"),
}


def describe_path(term: Term, path: Tuple[int, ...]) -> str:
    """Render a child-index path as dotted constructor steps, with a
    snippet of the subterm it lands on (for messages)."""
    labels: List[str] = []
    node = term
    for index in path:
        for cls, names in _CHILD_LABELS.items():
            if isinstance(node, cls) and index < len(names):
                labels.append(names[index])
                node = (
                    node.body
                    if names[index] == "body"
                    else node.fn if names[index] == "fn"
                    else node.arg if names[index] == "arg"
                    else node.bound
                )
                break
        else:
            labels.append(str(index))
            break
    snippet = node.pretty()
    if len(snippet) > 40:
        snippet = snippet[:37] + "..."
    dotted = ".".join(labels) if labels else "root"
    return f"{dotted} ({snippet})"


@dataclass
class AnalysisReport:
    """All findings and certificates for one analyzed query."""

    name: str
    kind: str  # "term" | "fixpoint"
    diagnostics: List[Diagnostic] = field(default_factory=list)
    order: Optional[int] = None
    fragment: Optional[str] = None
    cost: Optional["CostProfile"] = None  # noqa: F821 - see analysis.cost
    #: The absint-tightened profile, when adopted (TLI020); the syntactic
    #: profile in ``cost`` is kept for comparison and cache continuity.
    tightened_cost: Optional["CostProfile"] = None  # noqa: F821
    #: The simplified plan, when the simplifier changed it (TLI019 etc.);
    #: the runtime evaluates this one.
    simplified: Optional[Term] = None
    #: Abstract facts (``AbstractFacts.as_dict()``) for ``lint --analyze``.
    facts: Optional[dict] = None
    #: The read-set / schema-contract certificate (TLI023/TLI027); the
    #: runtime keys caches and prices admission from it.
    provenance: Optional["ProvenanceFacts"] = None  # noqa: F821

    # -- accounting ----------------------------------------------------------

    def add(
        self,
        code: str,
        message: str,
        *,
        severity: Optional[Severity] = None,
        path: Optional[Tuple[int, ...]] = None,
        location: str = "",
    ) -> Diagnostic:
        resolved = (
            severity if severity is not None else CODES[code].severity
        )
        diagnostic = Diagnostic(
            code=code,
            severity=resolved,
            message=message,
            path=path,
            location=location,
        )
        self.diagnostics.append(diagnostic)
        return diagnostic

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.INFO]

    def codes(self) -> List[str]:
        seen: List[str] = []
        for diagnostic in self.diagnostics:
            if diagnostic.code not in seen:
                seen.append(diagnostic.code)
        return seen

    @property
    def ok(self) -> bool:
        """No errors (warnings and infos allowed)."""
        return not self.errors()

    def max_severity(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    # -- rendering -----------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "ok": self.ok,
            "order": self.order,
            "fragment": self.fragment,
            "cost": self.cost.as_dict() if self.cost is not None else None,
            "tightened_cost": (
                self.tightened_cost.as_dict()
                if self.tightened_cost is not None
                else None
            ),
            "simplified": self.simplified is not None,
            "facts": self.facts,
            "provenance": (
                self.provenance.as_dict()
                if self.provenance is not None
                else None
            ),
            "errors": len(self.errors()),
            "warnings": len(self.warnings()),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def render(self, *, verbose: bool = False) -> str:
        """Multi-line text rendering (the ``repro lint`` output)."""
        headline = f"{self.name} [{self.kind}]"
        facts = []
        if self.order is not None:
            fragment = f" ({self.fragment})" if self.fragment else ""
            facts.append(f"order {self.order}{fragment}")
        if self.cost is not None:
            facts.append(f"cost {self.cost.describe()}")
        if self.tightened_cost is not None:
            facts.append(f"tightened {self.tightened_cost.describe()}")
        status = "ok" if self.ok else "FAIL"
        lines = [f"{headline}: {status}"
                 + (f" — {', '.join(facts)}" if facts else "")]
        for diagnostic in self.diagnostics:
            if diagnostic.severity == Severity.INFO and not verbose:
                continue
            lines.append(f"  {diagnostic.format()}")
        return "\n".join(lines)


def render_reports_json(reports: List[AnalysisReport]) -> dict:
    """The machine-readable batch shape of ``repro lint --json``."""
    return {
        "reports": [report.as_dict() for report in reports],
        "summary": {
            "analyzed": len(reports),
            "failed": sum(1 for r in reports if not r.ok),
            "errors": sum(len(r.errors()) for r in reports),
            "warnings": sum(len(r.warnings()) for r in reports),
        },
    }
