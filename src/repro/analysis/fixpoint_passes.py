"""Pass 5: fixpoint-query sanity checks (TLI012-TLI016).

These run on the :class:`~repro.queries.fixpoint.FixpointQuery` *spec*,
before (and independently of) compiling the Theorem 4.2 tower: schema
consistency of the step expression, stage-count sanity, monotonicity of
non-inflationary steps, and dead inputs.
"""

from __future__ import annotations

from typing import List, Set

from repro.analysis.diagnostics import AnalysisReport
from repro.errors import SchemaError
from repro.queries.fixpoint import FIX_NAME, FixpointQuery
from repro.relalg.ast import (
    Base,
    CondNot,
    Condition,
    Difference,
    RAExpr,
    schema_with_derived,
)


def _walk_expr(expr: RAExpr) -> List[RAExpr]:
    out: List[RAExpr] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        out.append(node)
        for attr in getattr(type(node), "__slots__", ()):
            child = getattr(node, attr)
            if isinstance(child, RAExpr):
                stack.append(child)
    return out


def _has_negation(expr: RAExpr) -> bool:
    def condition_negates(condition: Condition) -> bool:
        if isinstance(condition, CondNot):
            return True
        for attr in getattr(type(condition), "__slots__", ()):
            child = getattr(condition, attr)
            if isinstance(child, Condition) and condition_negates(child):
                return True
        return False

    for node in _walk_expr(expr):
        if isinstance(node, Difference):
            return True
        condition = getattr(node, "condition", None)
        if isinstance(condition, Condition) and condition_negates(condition):
            return True
    return False


def fixpoint_pass(query: FixpointQuery, report: AnalysisReport) -> None:
    """All spec-level checks; populates order/fragment on success."""
    schema = query.schema()
    step_schema = dict(schema)
    step_schema[FIX_NAME] = query.output_arity
    step = query.effective_step()

    # TLI012: schema consistency (unknown relations, arity clashes, and a
    # step whose arity differs from the declared output arity).
    try:
        step_arity = step.arity(schema_with_derived(step_schema))
    except SchemaError as exc:
        report.add("TLI012", f"step expression is not schema-valid: {exc}")
        return
    if step_arity != query.output_arity:
        report.add(
            "TLI012",
            f"step produces arity {step_arity}, the fixpoint is declared "
            f"at arity {query.output_arity}",
        )
        return

    base_names: Set[str] = {
        node.name for node in _walk_expr(step) if isinstance(node, Base)
    }

    # TLI015: dead inputs.
    for name, _ in query.input_schema:
        if name not in base_names and not any(
            base.endswith(name) and base.startswith("__")
            for base in base_names
        ):
            report.add(
                "TLI015",
                f"input relation {name!r} never appears in the step; it "
                f"still pads the crank and the active domain",
            )

    # TLI016: the stage never feeds back.  Checked on the *raw* step: the
    # inflationary wrapper injects FIX into the effective step, but a raw
    # step that ignores it still converges after one stage.
    raw_bases = {
        node.name
        for node in _walk_expr(query.step)
        if isinstance(node, Base)
    }
    if FIX_NAME not in raw_bases:
        report.add(
            "TLI016",
            "the step ignores the fixpoint variable: the iteration "
            "converges after one stage (a plain TLI=0 query suffices)",
        )

    # TLI013: stage explosion.
    if query.output_arity >= 3:
        report.add(
            "TLI013",
            f"output arity {query.output_arity} cranks |D|^"
            f"{query.output_arity} stages; expect heavy evaluation even "
            f"on small domains",
        )

    # TLI014: possible non-convergence.
    if not query.inflationary and _has_negation(query.step):
        report.add(
            "TLI014",
            "non-inflationary step uses difference/negation: the step "
            "need not be monotone, so the crank may stop before (or "
            "oscillate around) a fixpoint",
        )
