"""Static read-set & schema provenance analysis (the certifier's pass 6).

The cost passes answer *how much* a plan may cost; this pass answers
*what it touches*.  Strong normalization of the query fragment makes the
question decidable on the plan's data-independent normal form: the
abstract interpreter (:mod:`repro.analysis.absint`) already records every
occurrence of an input relation in head position of the normal form as a
:class:`~repro.analysis.absint.ScanSite`, and an input with **no** scan
site does not occur in the normal form at all — so the evaluation result
cannot depend on it.  That observation turns the absint scan-count domain
into three verified facts per plan:

* **Read-set** — which inputs the plan scans, with per-input scan-count
  intervals (:class:`RelationRead`).  Term plans bind inputs
  *positionally* (the engines apply the plan to the database's relations
  in schema order), fixpoint plans bind them *by name*; fixpoint plans
  scan **every** schema input regardless of step mentions, because the
  active-domain sweep and the Crank length range over all of them.

* **Schema contract** — the arity/shape each target database must supply.
  A term plan of signature ``(k_1, ..., k_l) -> k`` demands exactly ``l``
  relations of those arities in order (applying it to more or fewer is
  the multi-relation-encoding bug class: the spine gets stuck and fails
  only at decode time); a fixpoint plan demands each named schema input
  at its declared arity and tolerates (but never reads) extras.

* **Determinism** — normalization is strongly normalizing and confluent
  (Section 2.1), so the result is a pure function of (plan, read
  relations); cached results may be reused across any update that leaves
  the read-set's relations untouched.

Diagnostic codes (registered in :mod:`repro.analysis.diagnostics`):
``TLI023`` (read-set certificate), ``TLI024`` (schema contract
violation), ``TLI025`` (unused relation in the target database),
``TLI026`` (read-set-refined shard plan), ``TLI027`` (provenance
fallback on the conservative top).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.absint import (
    AbstractFacts,
    Interval,
    abstract_fixpoint_facts,
)
from repro.analysis.cost import DatabaseStats
from repro.db.relations import Database
from repro.queries.fixpoint import FixpointQuery
from repro.queries.language import QueryArity

__all__ = [
    "RelationRead",
    "ProvenanceFacts",
    "SchemaTuple",
    "term_provenance",
    "fixpoint_provenance",
    "database_schema",
    "check_schema_contract",
    "scanned_relation_names",
    "restrict_database",
    "read_set_stats",
    "version_subvector",
]

#: An ordered relation schema: ``((name, arity), ...)``.
SchemaTuple = Tuple[Tuple[str, int], ...]

#: The wildcard name in a cache version sub-vector: the entry depends on
#: the whole database (no exact read-set), so any relation bump kills it.
WILDCARD = "*"


@dataclass(frozen=True)
class RelationRead:
    """One input relation of a plan, with its static scan interval.

    ``position`` is the binder slot for positional (term) plans and
    ``None`` for named (fixpoint) inputs; ``arity`` is the arity the
    schema contract demands (``None`` when the plan carries no
    signature).  ``scans`` reuses the absint scan-count domain: an input
    whose interval is ``[0, 0]`` is *bound but never scanned* — it cannot
    influence the result.
    """

    name: str
    arity: Optional[int]
    scans: Interval
    position: Optional[int] = None

    @property
    def scanned(self) -> bool:
        return self.scans.hi is None or self.scans.hi > 0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "arity": self.arity,
            "position": self.position,
            "scans": self.scans.as_dict(),
            "scanned": self.scanned,
        }


@dataclass(frozen=True)
class ProvenanceFacts:
    """The read-set / schema-contract / determinism certificate of a plan.

    ``positional`` is True for term plans (inputs are binder slots filled
    from the database in schema order) and False for fixpoint plans
    (inputs resolved by name).  ``exact=False`` means the analysis fell
    back to the conservative top — every input potentially scanned with
    unbounded multiplicity (``fallback`` carries the reason) — and
    relation-granular cache reuse degrades to whole-version invalidation.
    ``deterministic`` is always True for certified plans: strong
    normalization plus confluence make the normal form a function of the
    plan and the relations it reads, which is what justifies reusing a
    cached result across updates that leave the read-set untouched.
    """

    kind: str  # "term" | "fixpoint"
    reads: Tuple[RelationRead, ...]
    exact: bool
    positional: bool
    fallback: Optional[str] = None
    deterministic: bool = True

    def scanned_reads(self) -> Tuple[RelationRead, ...]:
        return tuple(read for read in self.reads if read.scanned)

    def describe(self) -> str:
        """A compact one-line rendering (catalog / lint output)."""
        if not self.exact:
            return "⊤ (every input, unbounded)"
        parts = []
        for read in self.reads:
            if read.scanned:
                parts.append(f"{read.name}{read.scans.render()}")
        if not parts:
            return "∅ (result is data-independent)"
        return ", ".join(parts)

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "exact": self.exact,
            "positional": self.positional,
            "deterministic": self.deterministic,
            "fallback": self.fallback,
            "reads": [read.as_dict() for read in self.reads],
        }

    def render(self) -> List[str]:
        """Human-readable fact lines (the ``repro lint --analyze`` view)."""
        lines: List[str] = []
        if not self.exact:
            lines.append(
                f"provenance fell back to the conservative top: "
                f"{self.fallback}"
            )
            return lines
        lines.append(f"read-set: {self.describe()}")
        unread = [read.name for read in self.reads if not read.scanned]
        if unread:
            lines.append(
                f"bound but never scanned: {', '.join(unread)} "
                f"(updates to these cannot invalidate cached results)"
            )
        return lines


# ---------------------------------------------------------------------------
# Building provenance from the abstract facts
# ---------------------------------------------------------------------------

def term_provenance(
    signature: QueryArity, facts: AbstractFacts
) -> ProvenanceFacts:
    """Provenance of a term plan from its signature and abstract facts.

    The positional reads carry the absint scan intervals; when the
    abstract walk fell back (or its input accounting does not line up
    with the signature) the provenance is the conservative top: every
    input read with unbounded multiplicity.
    """
    count = len(signature.inputs)

    def top(reason: str) -> ProvenanceFacts:
        reads = tuple(
            RelationRead(
                name=f"input{index}",
                arity=signature.inputs[index],
                scans=Interval(lo=0, hi=None),
                position=index,
            )
            for index in range(count)
        )
        return ProvenanceFacts(
            kind="term",
            reads=reads,
            exact=False,
            positional=True,
            fallback=reason,
        )

    if facts.fallback is not None:
        return top(facts.fallback)
    labels = list(facts.input_scans)
    if len(labels) != count or len(set(labels)) != count:
        return top(
            f"abstract facts cover {len(labels)} input(s), signature "
            f"declares {count}"
        )
    reads = tuple(
        RelationRead(
            name=label,
            arity=signature.inputs[index],
            scans=facts.input_scans[label],
            position=index,
        )
        for index, label in enumerate(labels)
    )
    return ProvenanceFacts(
        kind="term", reads=reads, exact=True, positional=True
    )


def fixpoint_provenance(query: FixpointQuery) -> ProvenanceFacts:
    """Provenance of a fixpoint plan: every schema input is read.

    Even an input the step never mentions is scanned — the active-domain
    list (swept by ``FuncToList`` at every stage) and the Crank length
    ``|D|^k`` are computed over *all* inputs, so changing any input can
    change the result.  The scan interval is therefore ``[1, inf)`` for
    every input; the analysis is always exact.
    """
    facts = abstract_fixpoint_facts(query)
    reads = tuple(
        RelationRead(
            name=name,
            arity=arity,
            scans=Interval(
                lo=1 + facts.input_scans.get(name, Interval(0, 0)).lo,
                hi=None,
            ),
            position=None,
        )
        for name, arity in query.input_schema
    )
    return ProvenanceFacts(
        kind="fixpoint", reads=reads, exact=True, positional=False
    )


# ---------------------------------------------------------------------------
# Schema contracts
# ---------------------------------------------------------------------------

def database_schema(database: Database) -> SchemaTuple:
    """The ordered ``((name, arity), ...)`` schema of a database."""
    return tuple(
        (name, relation.arity) for name, relation in database
    )


def check_schema_contract(
    provenance: ProvenanceFacts, schema: Sequence[Tuple[str, int]]
) -> Tuple[List[str], List[str]]:
    """Check a plan's schema contract against a target database schema.

    Returns ``(mismatches, unused)``: ``mismatches`` are TLI024 findings
    (the plan cannot run against this schema — wrong relation count,
    wrong arity, or a missing named input); ``unused`` are TLI025
    findings (relations the database supplies that the plan never
    scans).  Both lists are human-readable message fragments.
    """
    mismatches: List[str] = []
    unused: List[str] = []
    schema = tuple(schema)
    if provenance.positional:
        if len(schema) != len(provenance.reads):
            mismatches.append(
                f"plan binds {len(provenance.reads)} input relation(s), "
                f"database supplies {len(schema)} — term plans consume "
                f"the database positionally, so the counts must match "
                f"exactly"
            )
            return mismatches, unused
        for read, (db_name, db_arity) in zip(provenance.reads, schema):
            if read.arity is not None and read.arity != db_arity:
                mismatches.append(
                    f"input {read.position} ({read.name}) expects arity "
                    f"{read.arity}, database relation {db_name!r} has "
                    f"arity {db_arity}"
                )
        if not mismatches and provenance.exact:
            for read, (db_name, _) in zip(provenance.reads, schema):
                if not read.scanned:
                    unused.append(
                        f"relation {db_name!r} (input {read.position}) "
                        f"is bound but never scanned"
                    )
        return mismatches, unused
    # Named (fixpoint) contract: each schema input present at its arity,
    # extras tolerated but reported unused.
    supplied: Dict[str, int] = dict(schema)
    for read in provenance.reads:
        if read.name not in supplied:
            mismatches.append(
                f"input relation {read.name!r} is missing from the "
                f"database"
            )
        elif read.arity is not None and supplied[read.name] != read.arity:
            mismatches.append(
                f"input {read.name!r} expects arity {read.arity}, "
                f"database has arity {supplied[read.name]}"
            )
    declared = {read.name for read in provenance.reads}
    for db_name, _ in schema:
        if db_name not in declared:
            unused.append(
                f"relation {db_name!r} is not in the plan's input schema "
                f"and is never read"
            )
    return mismatches, unused


# ---------------------------------------------------------------------------
# Read-set projections against a concrete database
# ---------------------------------------------------------------------------

def scanned_relation_names(
    provenance: Optional[ProvenanceFacts], database: Database
) -> Optional[Tuple[str, ...]]:
    """The *database* relation names the plan actually scans.

    Resolves positional reads through the database's schema order.
    Returns ``None`` when the read-set cannot be trusted (no provenance,
    a non-exact one, or a database whose shape does not fit the
    contract) — callers must then fall back to the whole database.
    """
    if provenance is None or not provenance.exact:
        return None
    names = database.names
    if provenance.positional:
        if len(names) != len(provenance.reads):
            return None
        return tuple(
            names[read.position]
            for read in provenance.reads
            if read.scanned and read.position is not None
        )
    present = set(names)
    resolved = tuple(
        read.name
        for read in provenance.reads
        if read.scanned and read.name in present
    )
    if len(resolved) != len(provenance.scanned_reads()):
        return None
    return resolved


def restrict_database(
    database: Database, names: Sequence[str]
) -> Database:
    """The sub-database holding only ``names`` (schema order kept)."""
    keep = set(names)
    return Database(
        tuple(
            (name, relation)
            for name, relation in database
            if name in keep
        )
    )


def read_set_stats(
    provenance: Optional[ProvenanceFacts],
    database: Database,
    stats: Optional[DatabaseStats] = None,
) -> DatabaseStats:
    """Database statistics restricted to the plan's read-set.

    Admission pricing and shard fuel splits instantiate cost polynomials
    at these statistics: a plan that scans one small relation of a large
    database is priced for what it reads, not for what happens to sit
    next to it.  Falls back to the full statistics when the read-set is
    not exact (or covers the whole database anyway).
    """
    names = scanned_relation_names(provenance, database)
    if names is None or set(names) >= set(database.names):
        if stats is not None:
            return stats
        return DatabaseStats.of(database)
    return DatabaseStats.of(restrict_database(database, names))


def version_subvector(
    provenance: Optional[ProvenanceFacts],
    database: Database,
    versions: Sequence[Tuple[str, int]],
    global_version: int,
) -> Tuple[Tuple[str, int], ...]:
    """The cache key's version component for one (plan, database) pair.

    With an exact read-set this is the sorted ``(name, version)``
    sub-vector of the scanned relations — updates that bump only other
    relations leave the key (and the cached result) valid.  Without one
    it is the wildcard vector ``((WILDCARD, global_version),)``, which
    any relation bump invalidates: exactly the old whole-version
    behavior.  An empty sub-vector (the plan scans nothing) is sound
    too: a data-independent result survives every update.
    """
    names = scanned_relation_names(provenance, database)
    if names is None:
        return ((WILDCARD, global_version),)
    version_of = dict(versions)
    return tuple(
        sorted(
            (name, version_of.get(name, global_version))
            for name in set(names)
        )
    )
