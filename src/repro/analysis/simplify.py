"""Registration-time plan simplifier (driven by the absint liveness facts).

Three rewrites, all meaning-preserving under the call-by-need NBE
semantics (``let x = M in N  ==  N[x := M]`` in a pure calculus) and all
differentially verified against the NBE oracle in the test suite:

* **Dead-binding elimination** — a ``let`` whose body never demands the
  binding (zero occurrences under the multiplicity dataflow of
  :func:`repro.analysis.absint.demanded_occurrences`) evaluates its
  ``let``-step every run for nothing; drop it.  Surfaced as TLI019.

* **Occurrence-reducing let-inlining** — a binding demanded exactly once,
  or bound to a trivial payload (a variable or constant), is inlined:
  this removes a ``let`` step per evaluation without duplicating work.

* **Duplicate-subterm let-factoring** — a subterm repeated verbatim
  whose free variables are all prefix binders (never rebound in the
  body) is hoisted into a fresh ``let`` under the plan's binder prefix,
  so call-by-need evaluates it once instead of ``count`` times.  Applied
  only when it shrinks the plan (the repeats must outweigh the new
  binding).

A size guard skips plans too large to rewrite safely; the skip is
surfaced as TLI022 rather than silently returning the plan unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.absint import demanded_occurrences
from repro.lam.subst import substitute
from repro.lam.terms import (
    Abs,
    App,
    Const,
    EqConst,
    Let,
    Term,
    Var,
    all_vars,
    bound_vars,
    free_vars,
    subterms,
    term_size,
)

#: Plans beyond this size are not rewritten (TLI022).
SIMPLIFY_SIZE_CAP = 50_000

#: Bounded rewrite rounds (each round is already a fixpoint-ish sweep;
#: the bound only guards against pathological interactions).
_MAX_ROUNDS = 8

#: Closed subterms smaller than this are not worth a let of their own.
_FACTOR_MIN_SIZE = 12


@dataclass
class SimplificationOutcome:
    """What the simplifier did to one plan."""

    term: Term
    changed: bool = False
    dead_bindings: Tuple[str, ...] = ()
    inlined: Tuple[str, ...] = ()
    factored: Tuple[str, ...] = ()
    skipped: Optional[str] = None   # guard reason; term is the original

    def as_dict(self) -> dict:
        return {
            "changed": self.changed,
            "dead_bindings": list(self.dead_bindings),
            "inlined": list(self.inlined),
            "factored": list(self.factored),
            "skipped": self.skipped,
        }


@dataclass
class _Log:
    dead: List[str] = field(default_factory=list)
    inlined: List[str] = field(default_factory=list)
    factored: List[str] = field(default_factory=list)


def _is_trivial(term: Term) -> bool:
    return isinstance(term, (Var, Const, EqConst))


def _occurs_under_binder(term: Term, name: str) -> bool:
    """Does ``name`` occur free inside an ``Abs`` within ``term``?

    A let binding is shared across every call of an enclosing lambda;
    inlining a payload into a lambda body would re-evaluate it per call,
    so single-use inlining is restricted to occurrences outside binders.
    """
    stack: List[Tuple[Term, bool]] = [(term, False)]
    while stack:
        node, inside = stack.pop()
        if isinstance(node, Var):
            if inside and node.name == name:
                return True
        elif isinstance(node, Abs):
            if node.var != name:
                stack.append((node.body, True))
        elif isinstance(node, App):
            stack.append((node.fn, inside))
            stack.append((node.arg, inside))
        elif isinstance(node, Let):
            stack.append((node.bound, inside))
            if node.var != name:
                stack.append((node.body, inside))
    return False


def _let_pass(term: Term, log: _Log) -> Term:
    """One bottom-up sweep of dead-elimination and inlining."""
    if isinstance(term, Abs):
        body = _let_pass(term.body, log)
        if body is term.body:
            return term
        return Abs(term.var, body, term.annotation)
    if isinstance(term, App):
        fn = _let_pass(term.fn, log)
        arg = _let_pass(term.arg, log)
        if fn is term.fn and arg is term.arg:
            return term
        return App(fn, arg)
    if isinstance(term, Let):
        bound = _let_pass(term.bound, log)
        body = _let_pass(term.body, log)
        uses = demanded_occurrences(body, (term.var,))
        if uses == 0:
            log.dead.append(term.var)
            return body
        if _is_trivial(bound) or (
            uses == 1 and not _occurs_under_binder(body, term.var)
        ):
            log.inlined.append(term.var)
            return substitute(body, term.var, bound)
        if bound is term.bound and body is term.body:
            return term
        return Let(term.var, bound, body)
    return term


def _shared_duplicates(body: Term, allowed: frozenset) -> Optional[Term]:
    """The most profitable subterm of ``body`` repeated at least twice and
    safe to hoist under the binder prefix, or ``None``.

    Safe means: every free variable of the candidate is a prefix binder
    (``allowed``) that is never rebound inside ``body`` — then every
    occurrence refers to the same bindings and a single shared ``let``
    preserves meaning.  Equality is literal/structural, so alpha-variant
    duplicates are missed (acceptable: the compilers emit repeats
    verbatim)."""
    shadowed = bound_vars(body)
    counts: Dict[Term, int] = {}
    sizes: Dict[Term, int] = {}
    for node in subterms(body):
        if isinstance(node, (Var, Const, EqConst)):
            continue
        size = term_size(node)
        if size < _FACTOR_MIN_SIZE:
            continue
        counts[node] = counts.get(node, 0) + 1
        sizes[node] = size
    best: Optional[Term] = None
    best_gain = 0
    for node, count in counts.items():
        if count < 2:
            continue
        free = free_vars(node)
        if not free <= allowed or free & shadowed:
            continue
        # count copies (count*size nodes) become count vars plus one
        # let-bound copy (count + 1 + size nodes); require a real gain.
        gain = (count - 1) * sizes[node] - count - 1
        if gain > best_gain:
            best, best_gain = node, gain
    return best


def _replace_subterm(term: Term, target: Term, replacement: Term) -> Term:
    if term == target:
        return replacement
    if isinstance(term, Abs):
        body = _replace_subterm(term.body, target, replacement)
        if body is term.body:
            return term
        return Abs(term.var, body, term.annotation)
    if isinstance(term, App):
        fn = _replace_subterm(term.fn, target, replacement)
        arg = _replace_subterm(term.arg, target, replacement)
        if fn is term.fn and arg is term.arg:
            return term
        return App(fn, arg)
    if isinstance(term, Let):
        bound = _replace_subterm(term.bound, target, replacement)
        body = _replace_subterm(term.body, target, replacement)
        if bound is term.bound and body is term.body:
            return term
        return Let(term.var, bound, body)
    return term


def _fresh_name(term: Term, base: str = "shared") -> str:
    taken = all_vars(term)
    if base not in taken:
        return base
    index = 0
    while f"{base}{index}" in taken:
        index += 1
    return f"{base}{index}"


def _factor_pass(term: Term, log: _Log) -> Term:
    """Hoist one repeated closed subterm under the binder prefix."""
    prefix: List[Abs] = []
    body = term
    while isinstance(body, Abs):
        prefix.append(body)
        body = body.body
    allowed = frozenset(binder.var for binder in prefix)
    target = _shared_duplicates(body, allowed)
    if target is None:
        return term
    name = _fresh_name(term)
    replaced = _replace_subterm(body, target, Var(name))
    rebuilt: Term = Let(name, target, replaced)
    for binder in reversed(prefix):
        rebuilt = Abs(binder.var, rebuilt, binder.annotation)
    if term_size(rebuilt) >= term_size(term):
        return term
    log.factored.append(name)
    return rebuilt


def simplify_term(term: Term) -> SimplificationOutcome:
    """Simplify one term plan; never changes its meaning.

    Returns the original term (with ``skipped`` set) when the size guard
    trips — the caller surfaces that as TLI022 instead of the old silent
    behavior.
    """
    size = term_size(term)
    if size > SIMPLIFY_SIZE_CAP:
        return SimplificationOutcome(
            term=term,
            skipped=(
                f"plan has {size} nodes, beyond the simplifier guard "
                f"({SIMPLIFY_SIZE_CAP})"
            ),
        )
    log = _Log()
    current = term
    for _ in range(_MAX_ROUNDS):
        previous = current
        current = _let_pass(current, log)
        current = _factor_pass(current, log)
        if current is previous or current == previous:
            break
    return SimplificationOutcome(
        term=current,
        changed=current != term,
        dead_bindings=tuple(log.dead),
        inlined=tuple(log.inlined),
        factored=tuple(log.factored),
    )
