"""Term-level analysis passes (well-formedness, equality-safety, order).

Each pass appends :class:`~repro.analysis.diagnostics.Diagnostic` entries
to a shared report.  The structural passes run on every term, typed or
not; the typed passes run when inference succeeds and reuse the same
machinery the catalog's registration path uses (Lemma 3.9), so linting a
query and registering it can never disagree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import AnalysisReport, describe_path
from repro.errors import TypeInferenceError
from repro.lam.terms import (
    Abs,
    App,
    Const,
    EqConst,
    Let,
    Term,
    binder_prefix,
    free_vars,
    spine,
)
from repro.types.infer import TypingResult, infer
from repro.types.order import min_ground_order
from repro.types.types import Arrow, BaseO, Type, TypeVar


# ---------------------------------------------------------------------------
# Pass 1: well-formedness (TLI001, TLI002, TLI003) + structural equality
# safety (TLI008)
# ---------------------------------------------------------------------------

def structural_pass(
    term: Term,
    report: AnalysisReport,
    *,
    known_constants: Optional[Set[str]] = None,
) -> None:
    """One walk collecting the purely syntactic diagnostics."""
    for name in sorted(free_vars(term)):
        report.add(
            "TLI001",
            f"free variable {name!r}; query plans must be closed "
            f"(bind it or declare it a relation input)",
        )

    flagged_constants: Set[str] = set()
    # (node, path, scope, is_fn_child): the last flag marks App-fn
    # children, whose spine the parent App already inspected.
    stack: List[Tuple[Term, Tuple[int, ...], Tuple[str, ...], bool]] = [
        (term, (), (), False)
    ]
    while stack:
        node, path, scope, is_fn_child = stack.pop()
        # A closed subterm is a standalone combinator spliced in (the
        # operator library inlines Equal_k and friends everywhere): its
        # binders cannot capture an intended outer reference, so shadowing
        # inside it is benign.
        if scope and not free_vars(node):
            scope = ()
        if isinstance(node, Const):
            if (
                known_constants is not None
                and node.name not in known_constants
                and node.name not in flagged_constants
            ):
                flagged_constants.add(node.name)
                report.add(
                    "TLI002",
                    f"constant {node.name!r} appears in no registered "
                    f"database; comparisons against it never succeed",
                    path=path,
                    location=describe_path(term, path),
                )
        elif isinstance(node, Abs):
            if node.var in scope:
                report.add(
                    "TLI003",
                    f"binder {node.var!r} shadows an enclosing binding",
                    path=path,
                    location=describe_path(term, path),
                )
            stack.append(
                (node.body, path + (0,), scope + (node.var,), False)
            )
        elif isinstance(node, App):
            if not is_fn_child:
                _equality_safety(node, path, term, report)
            stack.append((node.fn, path + (0,), scope, True))
            stack.append((node.arg, path + (1,), scope, False))
        elif isinstance(node, Let):
            if node.var in scope:
                report.add(
                    "TLI003",
                    f"let binder {node.var!r} shadows an enclosing binding",
                    path=path,
                    location=describe_path(term, path),
                )
            stack.append((node.bound, path + (0,), scope, False))
            stack.append(
                (node.body, path + (1,), scope + (node.var,), False)
            )


def _equality_safety(
    node: App, path: Tuple[int, ...], root: Term, report: AnalysisReport
) -> None:
    """Structural TLI008: ``Eq`` fed an operand that is manifestly not an
    atom (an abstraction, or a boolean produced by another ``Eq``)."""
    head, args = spine(node)
    if not isinstance(head, EqConst) or not args:
        return
    for position, arg in enumerate(args[:2]):
        operand_head, operand_args = spine(arg)
        bad: Optional[str] = None
        if isinstance(operand_head, Abs):
            bad = "an abstraction"
        elif isinstance(operand_head, EqConst) and len(operand_args) >= 2:
            bad = "a boolean (another Eq application)"
        if bad is not None:
            report.add(
                "TLI008",
                f"Eq argument {position + 1} is {bad}; the delta rule "
                f"Eq o_i o_j is only defined on atomic constants",
                path=path,
                location=describe_path(root, path),
            )


# ---------------------------------------------------------------------------
# Pass 2: typing / order-budget certification (TLI005, TLI006, TLI007,
# TLI009) — mirrors repro.queries.language.recognize_tli
# ---------------------------------------------------------------------------

def typing_pass(
    term: Term,
    report: AnalysisReport,
    *,
    signature=None,  # Optional[QueryArity]
    max_order: Optional[int] = None,
) -> Optional[TypingResult]:
    """Type the plan, certify its derivation order, enforce the budget.

    Returns the :class:`TypingResult` of the *body* (under the signature's
    input assumptions when one is given) so later passes can consult
    occurrence types; ``None`` when typing failed.
    """
    from repro.queries.language import _check_result_accumulator, _split_query
    from repro.errors import QueryTermError
    from repro.types.types import relation_type

    result: Optional[TypingResult] = None
    order_needed: Optional[int] = None

    if signature is not None:
        try:
            names, body = _split_query(term, len(signature.inputs))
        except QueryTermError as exc:
            report.add("TLI009", str(exc))
            return None
        env: Dict[str, Type] = {
            name: relation_type(k, TypeVar(f"?acc_{name}"))
            for name, k in zip(names, signature.inputs)
        }
        try:
            result = infer(body, env)
        except TypeInferenceError as exc:
            report.add("TLI005", f"query body does not type: {exc}")
            return None
        try:
            _check_result_accumulator(
                result.occurrence_types[()], result.subst, signature.output
            )
        except QueryTermError as exc:
            report.add("TLI009", str(exc))
            return result
        order_needed = result.derivation_order()
        for assumed in env.values():
            order_needed = max(
                order_needed,
                1 + min_ground_order(result.subst.apply(assumed)),
            )
    else:
        try:
            result = infer(term)
        except TypeInferenceError as exc:
            report.add("TLI005", str(exc))
            return None
        order_needed = result.derivation_order()

    report.order = order_needed
    if signature is not None:
        fragment_index = max(order_needed - 3, 0)
        report.fragment = f"TLI={fragment_index}"
        fragment_note = f"; the query lands in TLI={fragment_index}"
    else:
        report.fragment = None
        fragment_note = ""
    report.add(
        "TLI006",
        f"derivation order {order_needed}{fragment_note}",
    )
    if max_order is not None and order_needed > max_order:
        report.add(
            "TLI007",
            f"derivation order {order_needed} exceeds the declared "
            f"budget {max_order} (fragment budget TLI="
            f"{max(max_order - 3, 0)})",
        )
    return result


# ---------------------------------------------------------------------------
# Pass 3: typed iterator-accumulator check (TLI004)
# ---------------------------------------------------------------------------

def _relation_shape(type_: Type) -> Optional[int]:
    """If ``type_`` (ground) is ``(o^k -> a -> a) -> a -> a`` with k >= 1,
    return ``k``; otherwise ``None``."""
    if not isinstance(type_, Arrow):
        return None
    cons, rest = type_.left, type_.right
    if not isinstance(rest, Arrow) or rest.left != rest.right:
        return None
    expected = Arrow(rest.left, rest.right)
    k = 0
    node = cons
    while (
        node != expected
        and isinstance(node, Arrow)
        and isinstance(node.left, BaseO)
    ):
        k += 1
        node = node.right
    if k < 1 or node != expected:
        return None
    return k


def accumulator_pass(
    term: Term,
    report: AnalysisReport,
    typing: Optional[TypingResult],
    *,
    path_prefix: Tuple[int, ...] = (),
) -> None:
    """TLI004: a literal loop body handed to a relation-typed iterator must
    use its accumulator binder, else the fold is degenerate."""
    if typing is None:
        return
    from repro.types.order import ground

    stack: List[Tuple[Term, Tuple[int, ...]]] = [(term, ())]
    while stack:
        node, path = stack.pop()
        if isinstance(node, Abs):
            stack.append((node.body, path + (0,)))
        elif isinstance(node, Let):
            stack.append((node.bound, path + (0,)))
            stack.append((node.body, path + (1,)))
        elif isinstance(node, App):
            stack.append((node.fn, path + (0,)))
            stack.append((node.arg, path + (1,)))
            if not isinstance(node.arg, Abs):
                continue
            fn_path = path_prefix + path + (0,)
            raw = typing.occurrence_types.get(fn_path)
            if raw is None:
                continue
            fn_type = ground(typing.subst.apply(raw))
            k = _relation_shape(fn_type)
            if k is None:
                continue
            binders, body = binder_prefix(node.arg)
            if len(binders) < k + 1:
                continue  # eta-contracted loop; nothing to check
            accumulator = binders[k]
            inner = body
            # Rebuild any binders beyond the accumulator back onto the
            # body so its free variables are computed correctly.
            from repro.lam.terms import lam

            extra = list(binders[k + 1:])
            if extra:
                inner = lam(extra, body)
            if accumulator not in free_vars(inner):
                report.add(
                    "TLI004",
                    f"loop body ignores its accumulator binder "
                    f"{accumulator!r}: the fold over this relation "
                    f"degenerates to its first element",
                    path=path + (1,),
                    location=describe_path(term, path + (1,)),
                )


# ---------------------------------------------------------------------------
# Helpers shared with the analyzer driver
# ---------------------------------------------------------------------------

def body_typing_prefix(
    term: Term, signature
) -> Tuple[Tuple[int, ...], Term]:
    """Where, inside ``term``, the typed *body* of a signatured query
    starts: the path under the input binder prefix, and the body itself.

    The typing pass types the body (not the whole plan) when a signature
    is given; occurrence paths in its result are relative to the body.
    """
    if signature is None:
        return (), term
    path: Tuple[int, ...] = ()
    node = term
    for _ in range(len(signature.inputs)):
        if not isinstance(node, Abs):
            break
        node = node.body
        path = path + (0,)
    return path, node
