"""Command-line interface: ``repro <command> ...`` (or ``python -m repro``).

Commands:

* ``normalize`` — reduce a term to normal form (any engine, step counts);
* ``type`` — reconstruct the principal TLC= or core-ML= type and order;
* ``run`` — apply a query term to a database (JSON) and print the answer;
* ``translate`` — compile a TLI=0/MLI=0 query term to a first-order
  formula (Theorem 5.1) and optionally evaluate it;
* ``fo`` — evaluate a first-order query (text syntax), either directly or
  compiled through relational algebra into a TLI=0 term and reduced
  (the Theorem 4.1 pipeline);
* ``datalog`` — evaluate a Datalog(-not) program over a database, either
  with the baseline engine or (single-IDB programs) compiled to a TLI=1
  term and evaluated by the Theorem 5.2 fixpoint evaluator;
* ``encode`` / ``decode`` — move between relations and lambda terms.

The database JSON format maps relation names to tuple lists, e.g.::

    {"E": [["o1", "o2"], ["o2", "o3"]], "S": [["o1"]]}

Relation order in the file is the list-representation order
(Definition 3.4).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

from repro.db.decode import decode_relation
from repro.db.encode import encode_relation
from repro.db.relations import Database, Relation
from repro.errors import ReproError
from repro.eval.driver import run_query
from repro.eval.fo_translation import translate_query
from repro.lam.parser import parse
from repro.lam.pretty import pretty
from repro.lam.reduce import Strategy, normalize
from repro.lam.nbe import nbe_normalize
from repro.queries.language import QueryArity, recognize_mli, recognize_tli
from repro.types.infer import infer
from repro.types.ml import ml_infer
from repro.types.order import ground
from repro.types.order import order as type_order


def load_database(path: str) -> Database:
    try:
        with open(path) as handle:
            raw = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read database {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"database {path!r} is not valid JSON: {exc}") from exc
    relations: Dict[str, Relation] = {}
    for name, rows in raw.items():
        if not isinstance(rows, list):
            raise ReproError(f"relation {name!r} must be a list of rows")
        arity = len(rows[0]) if rows else 0
        relations[name] = Relation.from_tuples(
            arity, [tuple(str(v) for v in row) for row in rows]
        )
    return Database.of(relations)


def read_term_argument(value: str, constants=()):
    """A term given inline, or @path to read it from a file."""
    if value.startswith("@"):
        try:
            with open(value[1:]) as handle:
                value = handle.read()
        except OSError as exc:
            raise ReproError(
                f"cannot read term file {value[1:]!r}: {exc}"
            ) from exc
    return parse(value, constants=constants)


def cmd_normalize(args) -> int:
    term = read_term_argument(args.term, constants=args.constants or ())
    if args.engine == "nbe":
        print(pretty(nbe_normalize(term)))
        return 0
    strategy = (
        Strategy.APPLICATIVE_ORDER
        if args.engine == "applicative"
        else Strategy.NORMAL_ORDER
    )
    outcome = normalize(term, strategy, fuel=args.fuel)
    print(pretty(outcome.term))
    if args.steps:
        print(
            f"# steps: {outcome.steps} "
            f"(beta {outcome.beta_steps}, delta {outcome.delta_steps}, "
            f"let {outcome.let_steps})",
            file=sys.stderr,
        )
    return 0


def cmd_type(args) -> int:
    term = read_term_argument(args.term, constants=args.constants or ())
    if args.ml:
        result = ml_infer(term)
        label = "core-ML="
    else:
        result = infer(term)
        label = "TLC="
    print(f"{label} principal type: {result.type}")
    print(f"order (minimal ground instance): "
          f"{type_order(ground(result.type))}")
    print(f"derivation order: {result.derivation_order()}")
    return 0


def cmd_run(args) -> int:
    term = read_term_argument(args.query, constants=args.constants or ())
    database = load_database(args.db)
    outcome = run_query(
        term, database, arity=args.arity, engine=args.engine
    )
    for row in outcome.relation.tuples:
        print("\t".join(row))
    if args.verbose:
        print(f"# normal form: {pretty(outcome.normal_form)}",
              file=sys.stderr)
    return 0


def cmd_translate(args) -> int:
    term = read_term_argument(args.query, constants=args.constants or ())
    signature = QueryArity(tuple(args.inputs), args.output)
    translation = translate_query(term, signature)
    print(translation.formula)
    if args.db:
        database = load_database(args.db)
        print("# evaluation:", file=sys.stderr)
        for row in translation.evaluate(database).tuples:
            print("\t".join(row))
    return 0


def cmd_recognize(args) -> int:
    term = read_term_argument(args.query, constants=args.constants or ())
    signature = QueryArity(tuple(args.inputs), args.output)
    for label, recognize in (("TLI=", recognize_tli), ("MLI=", recognize_mli)):
        try:
            result = recognize(term, signature)
            print(
                f"{label}{max(result.derivation_order - 3, 0)} query term "
                f"(order {result.derivation_order})"
            )
        except ReproError as exc:
            print(f"not a {label} query term: {exc}")
    return 0


def cmd_fo(args) -> int:
    from repro.eval.materialize import run_ra_query_materialized
    from repro.folog.evaluate import evaluate_fo_query
    from repro.folog.parser import parse_formula
    from repro.queries.fo_compile import compile_fo

    formula = parse_formula(args.formula, constants=args.constants or ())
    database = load_database(args.db)
    output_vars = args.vars
    if args.engine == "lambda":
        schema = {name: relation.arity for name, relation in database}
        expr = compile_fo(formula, output_vars, schema)
        relation = run_ra_query_materialized(expr, database).relation
    else:
        relation = evaluate_fo_query(formula, output_vars, database)
    for row in relation.tuples:
        print("\t".join(row))
    return 0


def cmd_datalog(args) -> int:
    from repro.datalog.compile import datalog_to_fixpoint
    from repro.datalog.engine import evaluate_program
    from repro.datalog.parser import parse_program
    from repro.eval.ptime import run_fixpoint_query

    try:
        with open(args.program) as handle:
            source = handle.read()
    except OSError as exc:
        raise ReproError(
            f"cannot read program {args.program!r}: {exc}"
        ) from exc
    program = parse_program(source)
    database = load_database(args.db)
    if args.engine == "lambda":
        fixpoint = datalog_to_fixpoint(program)
        run = run_fixpoint_query(database=database, query=fixpoint)
        name = program.idb_predicates()[0]
        results = {name: run.relation}
    else:
        derived = evaluate_program(
            program, database, semantics=args.semantics
        )
        results = {name: relation for name, relation in derived}
    for name, relation in results.items():
        for row in relation.tuples:
            print(f"{name}\t" + "\t".join(row))
    return 0


def cmd_encode(args) -> int:
    database = load_database(args.db)
    for name, relation in database:
        if args.relation and name != args.relation:
            continue
        print(f"{name} = {pretty(encode_relation(relation))}")
    return 0


def cmd_decode(args) -> int:
    term = read_term_argument(args.term, constants=args.constants or ())
    # In a valid encoding every tuple component is a constant (Lemma 3.2),
    # so free variables can only be constants written without the o<digits>
    # convention — promote them, matching what ``repro encode`` prints.
    from repro.lam.subst import substitute_many
    from repro.lam.terms import Const, free_vars

    term = substitute_many(
        term, {name: Const(name) for name in free_vars(term)}
    )
    decoded = decode_relation(term, args.arity)
    for row in decoded.relation.tuples:
        print("\t".join(row))
    if decoded.had_duplicates:
        print("# encoding contained duplicate tuples", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Functional database query languages as typed lambda calculi "
            "(Hillebrand & Kanellakis, PODS 1994)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    p = commands.add_parser("normalize", help="reduce a term to normal form")
    p.add_argument("term", help="a term, or @file")
    p.add_argument("--constants", nargs="*", metavar="NAME",
                   help="extra names to read as atomic constants")
    p.add_argument("--engine", choices=["nbe", "normal", "applicative"],
                   default="nbe")
    p.add_argument("--fuel", type=int, default=1_000_000)
    p.add_argument("--steps", action="store_true",
                   help="report step counts (small-step engines)")
    p.set_defaults(handler=cmd_normalize)

    p = commands.add_parser("type", help="reconstruct the principal type")
    p.add_argument("term", help="a term, or @file")
    p.add_argument("--constants", nargs="*", metavar="NAME",
                   help="extra names to read as atomic constants")
    p.add_argument("--ml", action="store_true",
                   help="use core-ML= (let-polymorphic) reconstruction")
    p.set_defaults(handler=cmd_type)

    p = commands.add_parser("run", help="run a query term over a database")
    p.add_argument("query", help="a query term, or @file")
    p.add_argument("--constants", nargs="*", metavar="NAME",
                   help="extra names to read as atomic constants")
    p.add_argument("--db", required=True, help="database JSON file")
    p.add_argument("--arity", type=int, default=None,
                   help="expected output arity")
    p.add_argument("--engine", choices=["nbe", "smallstep", "applicative"],
                   default="nbe")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(handler=cmd_run)

    p = commands.add_parser(
        "translate",
        help="compile a TLI=0/MLI=0 query to first-order logic",
    )
    p.add_argument("query", help="a query term, or @file")
    p.add_argument("--constants", nargs="*", metavar="NAME",
                   help="extra names to read as atomic constants")
    p.add_argument("--inputs", type=int, nargs="+", required=True,
                   help="input arities k1 ... kl")
    p.add_argument("--output", type=int, required=True,
                   help="output arity k")
    p.add_argument("--db", help="optionally evaluate over this database")
    p.set_defaults(handler=cmd_translate)

    p = commands.add_parser(
        "recognize", help="Lemma 3.9: is this a TLI=/MLI= query term?"
    )
    p.add_argument("query", help="a query term, or @file")
    p.add_argument("--constants", nargs="*", metavar="NAME",
                   help="extra names to read as atomic constants")
    p.add_argument("--inputs", type=int, nargs="+", required=True)
    p.add_argument("--output", type=int, required=True)
    p.set_defaults(handler=cmd_recognize)

    p = commands.add_parser(
        "fo", help="evaluate a first-order query (Definition 3.5)"
    )
    p.add_argument("formula",
                   help="e.g. \"exists y. R(x, y) & ~S(y, x)\"")
    p.add_argument("--vars", nargs="+", required=True,
                   help="output variables (column order)")
    p.add_argument("--db", required=True, help="database JSON file")
    p.add_argument("--engine", choices=["fo", "lambda"], default="fo",
                   help="direct FO evaluation, or compile through RA to a "
                        "TLI=0 term and reduce (Theorem 4.1)")
    p.add_argument("--constants", nargs="*", metavar="NAME",
                   help="extra names to read as constants")
    p.set_defaults(handler=cmd_fo)

    p = commands.add_parser(
        "datalog", help="evaluate a Datalog(-not) program"
    )
    p.add_argument("program", help="program file (name(X,Y) :- ... syntax)")
    p.add_argument("--db", required=True, help="database JSON file")
    p.add_argument("--engine", choices=["datalog", "lambda"],
                   default="datalog",
                   help="baseline engine, or compile to a TLI=1 term and "
                        "run the Theorem 5.2 evaluator (single IDB only)")
    p.add_argument("--semantics", choices=["stratified", "inflationary"],
                   default="stratified")
    p.set_defaults(handler=cmd_datalog)

    p = commands.add_parser("encode", help="encode database relations")
    p.add_argument("--db", required=True)
    p.add_argument("--relation", help="encode only this relation")
    p.set_defaults(handler=cmd_encode)

    p = commands.add_parser("decode", help="decode a relation encoding")
    p.add_argument("term", help="a normal-form encoding, or @file")
    p.add_argument("--arity", type=int, default=None)
    p.add_argument("--constants", nargs="*", metavar="NAME",
                   help="extra names to read as atomic constants")
    p.set_defaults(handler=cmd_decode)

    return parser


def main(argv: List[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
