"""Command-line interface: ``repro <command> ...`` (or ``python -m repro``).

Commands:

* ``normalize`` — reduce a term to normal form (any engine, step counts);
* ``type`` — reconstruct the principal TLC= or core-ML= type and order;
* ``run`` — apply a query term to a database (JSON) and print the answer;
* ``translate`` — compile a TLI=0/MLI=0 query term to a first-order
  formula (Theorem 5.1) and optionally evaluate it;
* ``fo`` — evaluate a first-order query (text syntax), either directly or
  compiled through relational algebra into a TLI=0 term and reduced
  (the Theorem 4.1 pipeline);
* ``datalog`` — evaluate a Datalog(-not) program over a database, either
  with the baseline engine or (single-IDB programs) compiled to a TLI=1
  term and evaluated by the Theorem 5.2 fixpoint evaluator;
* ``encode`` / ``decode`` — move between relations and lambda terms;
* ``catalog`` — register databases/queries in a service catalog and print
  the registration summary (engines, orders, digests);
* ``batch`` — serve a JSON batch of requests through the query service
  runtime (shared encodings, result cache, thread-pool execution);
* ``stats`` — serve an optional batch, then dump the service's metrics
  registry (JSON or Prometheus text exposition);
* ``trace`` — serve one request with tracing enabled and print its span
  tree (resolve → cache → fuel → evaluate → decode, with the reduction
  profiler's beta/delta/let/quote breakdown on the evaluation span;
  ``--shards k`` shows the merged tree with per-shard worker spans);
* ``explain`` — EXPLAIN ANALYZE one request: the static side (order
  certificate, cost polynomial before/after abstract-interpretation
  tightening, read-set, distribution class) joined with the observed
  side (engine, cache path, per-shard fuel vs. steps, bound ratio,
  span timings), as JSON;
* ``flight`` — serve an optional batch with the flight recorder on and
  dump the retained records (slow/errored/bound-breaching/explained)
  plus recorder stats;
* ``serve`` — serve the catalog over HTTP: the asyncio edge with bearer
  auth, per-client rate limiting, fuel-denominated admission control,
  ``/health`` + ``/metrics``, and graceful drain on SIGTERM.

The database JSON format maps relation names to tuple lists, e.g.::

    {"E": [["o1", "o2"], ["o2", "o3"]], "S": [["o1"]]}

Relation order in the file is the list-representation order
(Definition 3.4).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

from repro.db.decode import decode_relation
from repro.db.encode import encode_relation
from repro.db.relations import Database, Relation
from repro.errors import ReproError
from repro.eval.driver import run_query
from repro.eval.fo_translation import translate_query
from repro.lam.parser import parse
from repro.lam.pretty import pretty
from repro.lam.reduce import Strategy, normalize
from repro.lam.nbe import nbe_normalize
from repro.queries.language import QueryArity, recognize_mli, recognize_tli
from repro.types.infer import infer
from repro.types.ml import ml_infer
from repro.types.order import ground
from repro.types.order import order as type_order


def load_database(path: str) -> Database:
    try:
        with open(path) as handle:
            raw = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read database {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"database {path!r} is not valid JSON: {exc}") from exc
    relations: Dict[str, Relation] = {}
    for name, rows in raw.items():
        if not isinstance(rows, list):
            raise ReproError(f"relation {name!r} must be a list of rows")
        arity = len(rows[0]) if rows else 0
        relations[name] = Relation.from_tuples(
            arity, [tuple(str(v) for v in row) for row in rows]
        )
    return Database.of(relations)


def read_term_argument(value: str, constants=()):
    """A term given inline, or @path to read it from a file."""
    if value.startswith("@"):
        try:
            with open(value[1:]) as handle:
                value = handle.read()
        except OSError as exc:
            raise ReproError(
                f"cannot read term file {value[1:]!r}: {exc}"
            ) from exc
    return parse(value, constants=constants)


def cmd_normalize(args) -> int:
    term = read_term_argument(args.term, constants=args.constants or ())
    if args.engine == "nbe":
        print(pretty(nbe_normalize(term)))
        return 0
    strategy = (
        Strategy.APPLICATIVE_ORDER
        if args.engine == "applicative"
        else Strategy.NORMAL_ORDER
    )
    outcome = normalize(term, strategy, fuel=args.fuel)
    print(pretty(outcome.term))
    if args.steps:
        print(
            f"# steps: {outcome.steps} "
            f"(beta {outcome.beta_steps}, delta {outcome.delta_steps}, "
            f"let {outcome.let_steps})",
            file=sys.stderr,
        )
    return 0


def cmd_type(args) -> int:
    term = read_term_argument(args.term, constants=args.constants or ())
    if args.ml:
        result = ml_infer(term)
        label = "core-ML="
    else:
        result = infer(term)
        label = "TLC="
    print(f"{label} principal type: {result.type}")
    print(f"order (minimal ground instance): "
          f"{type_order(ground(result.type))}")
    print(f"derivation order: {result.derivation_order()}")
    return 0


def cmd_run(args) -> int:
    term = read_term_argument(args.query, constants=args.constants or ())
    database = load_database(args.db)
    outcome = run_query(
        term, database, arity=args.arity, engine=args.engine
    )
    for row in outcome.relation.tuples:
        print("\t".join(row))
    if args.verbose:
        print(f"# normal form: {pretty(outcome.normal_form)}",
              file=sys.stderr)
    return 0


def cmd_translate(args) -> int:
    term = read_term_argument(args.query, constants=args.constants or ())
    signature = QueryArity(tuple(args.inputs), args.output)
    translation = translate_query(term, signature)
    print(translation.formula)
    if args.db:
        database = load_database(args.db)
        print("# evaluation:", file=sys.stderr)
        for row in translation.evaluate(database).tuples:
            print("\t".join(row))
    return 0


def cmd_recognize(args) -> int:
    term = read_term_argument(args.query, constants=args.constants or ())
    signature = QueryArity(tuple(args.inputs), args.output)
    for label, recognize in (("TLI=", recognize_tli), ("MLI=", recognize_mli)):
        try:
            result = recognize(term, signature)
            print(
                f"{label}{max(result.derivation_order - 3, 0)} query term "
                f"(order {result.derivation_order})"
            )
        except ReproError as exc:
            print(f"not a {label} query term: {exc}")
    return 0


def cmd_fo(args) -> int:
    from repro.eval.materialize import run_ra_query_materialized
    from repro.folog.evaluate import evaluate_fo_query
    from repro.folog.parser import parse_formula
    from repro.queries.fo_compile import compile_fo

    formula = parse_formula(args.formula, constants=args.constants or ())
    database = load_database(args.db)
    output_vars = args.vars
    if args.engine == "lambda":
        schema = {name: relation.arity for name, relation in database}
        expr = compile_fo(formula, output_vars, schema)
        relation = run_ra_query_materialized(expr, database).relation
    else:
        relation = evaluate_fo_query(formula, output_vars, database)
    for row in relation.tuples:
        print("\t".join(row))
    return 0


def cmd_datalog(args) -> int:
    from repro.datalog.compile import datalog_to_fixpoint
    from repro.datalog.engine import evaluate_program
    from repro.datalog.parser import parse_program
    from repro.eval.ptime import run_fixpoint_query

    try:
        with open(args.program) as handle:
            source = handle.read()
    except OSError as exc:
        raise ReproError(
            f"cannot read program {args.program!r}: {exc}"
        ) from exc
    program = parse_program(source)
    database = load_database(args.db)
    if args.engine == "lambda":
        fixpoint = datalog_to_fixpoint(program)
        run = run_fixpoint_query(database=database, query=fixpoint)
        name = program.idb_predicates()[0]
        results = {name: run.relation}
    else:
        derived = evaluate_program(
            program, database, semantics=args.semantics
        )
        results = {name: relation for name, relation in derived}
    for name, relation in results.items():
        for row in relation.tuples:
            print(f"{name}\t" + "\t".join(row))
    return 0


def _split_named(values, what: str):
    """Parse repeated ``NAME=VALUE`` options into an ordered dict."""
    out = {}
    for value in values or ():
        if "=" not in value:
            raise ReproError(
                f"{what} must look like NAME={'PATH' if what == '--db' else 'SPEC'}, "
                f"got {value!r}"
            )
        name, _, rest = value.partition("=")
        if not name or not rest:
            raise ReproError(f"{what} {value!r} has an empty name or value")
        out[name] = rest
    return out


_FIXPOINT_BUILDERS = {
    "tc": ("transitive_closure_query", 1),
    "reach": ("reachability_query", 2),
    "sg": ("same_generation_query", 3),
}


def _parse_fixpoint_spec(spec: str):
    """``tc[:E]``, ``reach[:S,E]``, ``sg[:flat,up,down]`` — the paper's
    three worked fixpoint examples, with optional relation renaming."""
    import repro.queries.fixpoint as fixpoint

    kind, _, rest = spec.partition(":")
    if kind not in _FIXPOINT_BUILDERS:
        raise ReproError(
            f"unknown fixpoint kind {kind!r}; "
            f"choose from {sorted(_FIXPOINT_BUILDERS)}"
        )
    builder_name, argc = _FIXPOINT_BUILDERS[kind]
    builder = getattr(fixpoint, builder_name)
    if not rest:
        return builder()
    names = [n.strip() for n in rest.split(",")]
    if len(names) != argc:
        raise ReproError(
            f"fixpoint kind {kind!r} takes {argc} relation name(s), "
            f"got {len(names)}"
        )
    return builder(*names)


def _build_service(args, tracer=None):
    """Register the ``--db`` / ``--query`` / ``--fixpoint`` options into a
    fresh :class:`repro.service.QueryService`."""
    from repro.service import QueryService

    service = QueryService(
        cache_capacity=args.cache_capacity,
        tracer=tracer,
        slow_query_ms=getattr(args, "slow_query_ms", None),
    )
    for name, path in _split_named(args.db, "--db").items():
        service.catalog.register_database(name, load_database(path))
    signature = None
    if args.inputs is not None or args.output is not None:
        if args.inputs is None or args.output is None:
            raise ReproError("--inputs and --output must be given together")
        signature = QueryArity(tuple(args.inputs), args.output)
    for name, spec in _split_named(args.query, "--query").items():
        term = read_term_argument(spec, constants=args.constants or ())
        service.catalog.register_query(
            name, term, signature=signature, check=not args.no_check
        )
    for name, spec in _split_named(args.fixpoint, "--fixpoint").items():
        service.catalog.register_query(name, _parse_fixpoint_spec(spec))
    return service


def cmd_catalog(args) -> int:
    service = _build_service(args)
    summary = service.catalog.summary()
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    for entry in summary["databases"]:
        versions = entry.get("relation_versions") or {}
        relations = ", ".join(
            f"{name}[{count}]"
            + (f"@v{versions[name]}" if name in versions else "")
            for name, count in entry["relations"].items()
        )
        print(
            f"db {entry['name']} v{entry['version']} "
            f"digest={entry['digest']} |D|={entry['active_domain']} "
            f"({relations})"
        )
    for entry in summary["queries"]:
        order = f" order={entry['order']}" if entry["order"] else ""
        sig = f" sig={entry['signature']}" if entry["signature"] else ""
        cost = f" cost={entry['cost']}" if entry.get("cost") else ""
        reads = f" reads={entry['reads']}" if entry.get("reads") else ""
        print(
            f"query {entry['name']} kind={entry['kind']} "
            f"engine={entry['engine']} digest={entry['digest']}"
            f"{order}{sig}{cost}{reads}"
        )
        for warning in entry.get("warnings", ()):
            print(f"  warning: {warning}")
    return 0


def cmd_lint(args) -> int:
    """Run the static query certifier over files, catalog-style entries,
    and/or the built-in operator library."""
    from repro.analysis import (
        LintTarget,
        Severity,
        analyze,
        collect_lam_files,
        load_lam_file,
        operator_library_targets,
        render_reports_json,
    )

    signature = None
    if args.inputs is not None or args.output is not None:
        if args.inputs is None or args.output is None:
            raise ReproError("--inputs and --output must be given together")
        signature = QueryArity(tuple(args.inputs), args.output)

    targets = []
    if args.operators:
        targets.extend(operator_library_targets())
    for path in collect_lam_files(args.paths or []):
        targets.append(load_lam_file(path))
    constants = set(args.constants or ())
    for name, spec in _split_named(args.query, "--query").items():
        term = read_term_argument(spec, constants=sorted(constants))
        targets.append(
            LintTarget(
                name=name,
                plan=term,
                signature=signature,
                known_constants=constants or None,
            )
        )
    for name, spec in _split_named(args.fixpoint, "--fixpoint").items():
        targets.append(LintTarget(name=name, plan=_parse_fixpoint_spec(spec)))
    if not targets:
        raise ReproError(
            "nothing to lint: give .lam files/directories, --operators, "
            "--query, or --fixpoint"
        )

    reports = []
    failures = 0
    lines = []
    for target in targets:
        max_order = (
            target.max_order if target.max_order is not None else args.budget
        )
        report = analyze(
            target.plan,
            name=target.name,
            signature=target.signature,
            max_order=max_order,
            known_constants=target.known_constants,
            target_schema=getattr(target, "target_schema", None),
        )
        reports.append(report)
        # Expected codes (the seeded bad-query corpus) must fire and do
        # not count against the target; everything else does.
        fired = set(report.codes())
        missing = sorted(target.expect - fired)
        blocking = [
            d
            for d in report.diagnostics
            if d.code not in target.expect
            and (
                d.severity == Severity.ERROR
                or (args.strict and d.severity == Severity.WARNING)
            )
        ]
        ok = not blocking and not missing
        failures += 0 if ok else 1
        lines.append(report.render(verbose=args.verbose))
        if args.analyze:
            lines.extend(_render_abstract_facts(report))
            lines.extend(_render_compile_facts(target, report))
        if missing:
            lines.append(
                f"  expected diagnostic(s) did not fire: {', '.join(missing)}"
            )

    if args.json:
        payload = render_reports_json(reports)
        payload["summary"]["strict"] = args.strict
        payload["summary"]["exit_failures"] = failures
        print(json.dumps(payload, indent=2))
    else:
        print("\n".join(lines))
        print(
            f"{len(reports)} plan(s) analyzed, {failures} failing"
            f"{' (strict)' if args.strict else ''}"
        )
    return 1 if failures else 0


def _render_abstract_facts(report) -> list:
    """The ``repro lint --analyze`` fact block for one report."""
    facts = report.facts
    if facts is None:
        return ["  (no abstract facts: plan did not reach the absint pass)"]
    out = []
    if facts.get("fallback"):
        out.append(f"  absint fell back: {facts['fallback']}")
    else:
        for name, interval in sorted(
            (facts.get("input_scans") or {}).items()
        ):
            depths = sorted(
                site["depth"]
                for site in facts.get("scan_sites", ())
                if site["input"] == name
            )
            out.append(
                f"  input {name}: scan sites in "
                f"[{interval['lo']}, {interval['hi']}]"
                + (f" at depths {depths}" if depths else "")
            )
        if facts.get("kind") == "term":
            out.append(
                f"  loop-entry degree {facts.get('scan_degree', 0)}, "
                f"output rows <= {facts.get('emit_sites', 0)}"
                f"*T^{facts.get('emit_degree', 0)}"
            )
        stage = facts.get("stage_interval")
        if stage is not None:
            hi = stage["hi"] if stage["hi"] is not None else "|D|^k"
            out.append(f"  fixpoint stages in [{stage['lo']}, {hi}]")
        if facts.get("let_bindings"):
            dead = facts.get("dead_bindings") or []
            out.append(
                f"  {facts['let_bindings']} let binding(s)"
                + (f", dead: {', '.join(dead)}" if dead else "")
            )
    if report.tightened_cost is not None and report.cost is not None:
        out.append(
            f"  cost {report.cost.describe()} -> tightened "
            f"{report.tightened_cost.describe()}"
        )
    elif report.cost is not None:
        out.append(f"  cost {report.cost.describe()} (not tightened)")
    if getattr(report, "provenance", None) is not None:
        out.extend(f"  {line}" for line in report.provenance.render())
    return out


def _render_compile_facts(target, report) -> list:
    """The ``repro lint --analyze`` compile-decision line: what the
    plan compiler (`repro.compile`) would do with this plan — the
    physical operator chain when it lowers (TLI028), the fallback
    taxonomy tag when it doesn't (TLI029)."""
    from repro.compile import compile_decision, decision_for_fixpoint
    from repro.queries.fixpoint import FixpointQuery

    plan = target.plan
    if isinstance(plan, FixpointQuery):
        decision = decision_for_fixpoint(plan)
    elif target.signature is not None and report.ok:
        plan_term = (
            report.simplified if report.simplified is not None else plan
        )
        decision = compile_decision(
            plan_term, target.signature.inputs, target.signature.output
        )
    else:
        return [
            "  compile: not attempted "
            "(needs a passing analysis with an arity signature)"
        ]
    if decision.compiled:
        return [f"  compile: {decision.summary}"]
    return [f"  compile: fallback ({decision.reason}) {decision.summary}"]


def _load_batch_requests(path: str, service, constants):
    from repro.service import QueryRequest

    try:
        with open(path) as handle:
            raw = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read batch {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"batch {path!r} is not valid JSON: {exc}") from exc
    if isinstance(raw, dict):
        raw = raw.get("requests", [])
    if not isinstance(raw, list):
        raise ReproError("batch file must be a list or {\"requests\": [...]}")
    known_queries = {entry.name for entry in service.catalog.queries()}
    db_names = [entry.name for entry in service.catalog.databases()]
    requests = []
    for index, item in enumerate(raw):
        if not isinstance(item, dict) or "query" not in item:
            raise ReproError(
                f"batch request #{index} must be an object with a 'query'"
            )
        query = item["query"]
        if query not in known_queries:
            # Not a registered name: treat as an inline term (or @file).
            query = read_term_argument(query, constants=constants)
        database = item.get("db")
        if database is None:
            if len(db_names) != 1:
                raise ReproError(
                    f"batch request #{index} names no 'db' and "
                    f"{len(db_names)} databases are registered"
                )
            database = db_names[0]
        requests.append(
            QueryRequest(
                query=query,
                database=database,
                engine=item.get("engine"),
                arity=item.get("arity"),
                fuel=item.get("fuel"),
                timeout_s=item.get("timeout_s"),
                tag=item.get("tag", f"#{index}"),
            )
        )
    return requests


def cmd_batch(args) -> int:
    service = _build_service(args)
    requests = _load_batch_requests(
        args.requests, service, args.constants or ()
    )
    if args.repeat > 1:
        requests = [r for _ in range(args.repeat) for r in requests]
    result = service.execute_batch(requests, max_workers=args.workers)
    if args.json:
        print(
            json.dumps(
                {
                    "responses": [
                        r.as_dict(include_tuples=not args.no_tuples)
                        for r in result.responses
                    ],
                    "stats": result.stats,
                    "service": service.stats(),
                },
                indent=2,
            )
        )
        return 0
    for response in result.responses:
        cache = "hit" if response.cache_hit else "miss"
        print(
            f"== {response.tag} {response.query}@{response.database} "
            f"{response.status} engine={response.engine} cache={cache} "
            f"wall={response.wall_ms:.2f}ms"
        )
        if response.relation is not None and not args.no_tuples:
            for row in response.relation.tuples:
                print("\t".join(row))
        elif response.error:
            print(f"   {response.error}")
    stats = result.stats
    print(
        f"# {stats['requests']} requests, {stats['cache_hits']} cache hits "
        f"({stats['hit_rate']:.0%}), p50 {stats['latency_p50_ms']}ms, "
        f"p95 {stats['latency_p95_ms']}ms, "
        f"{stats['throughput_qps']} req/s",
        file=sys.stderr,
    )
    return 0 if all(r.ok for r in result.responses) else 1


def cmd_stats(args) -> int:
    """Dump the service's metrics registry, optionally after serving a
    batch (so the counters describe real traffic rather than zeros)."""
    service = _build_service(args)
    if args.requests:
        requests = _load_batch_requests(
            args.requests, service, args.constants or ()
        )
        if args.repeat > 1:
            requests = [r for _ in range(args.repeat) for r in requests]
        service.execute_batch(requests, max_workers=args.workers)
    if args.prometheus:
        print(service.registry.render_prometheus(), end="")
        return 0
    if args.json:
        from repro.obs.info import runtime_info

        payload = service.registry.as_dict()
        payload["service"] = service.stats()
        payload["runtime"] = runtime_info()
        print(json.dumps(payload, indent=2))
        return 0
    stats = service.stats()
    print(
        f"# {stats['requests']} requests, statuses={stats['statuses']}, "
        f"p50 {stats['latency_p50_ms']}ms, p95 {stats['latency_p95_ms']}ms, "
        f"{stats['slow_queries']} slow"
    )
    cache = stats["cache"]
    print(
        f"# cache: {cache['hits']} hits / {cache['misses']} misses "
        f"({cache['hit_rate']:.0%}), {cache['inflight_waits']} inflight "
        f"waits, {cache['size']}/{cache['capacity']} entries"
    )
    for metric in service.registry.as_dict()["metrics"]:
        for entry in metric["values"]:
            labels = entry.get("labels") or {}
            label_text = (
                "{" + ",".join(f"{k}={v}" for k, v in labels.items()) + "}"
                if labels
                else ""
            )
            if metric["type"] == "histogram":
                print(
                    f"{metric['name']}{label_text} "
                    f"count={entry['count']} sum={entry['sum']}"
                )
            else:
                print(f"{metric['name']}{label_text} {entry['value']}")
    return 0


def _resolve_target(service, args):
    """Resolve the CLI's QUERY/--database pair against the catalog:
    registered names pass through, anything else parses as an inline
    term; a lone registered database is the default."""
    query = args.query_ref
    known_queries = {entry.name for entry in service.catalog.queries()}
    if query not in known_queries:
        query = read_term_argument(query, constants=args.constants or ())
    database = args.database
    if database is None:
        db_names = [entry.name for entry in service.catalog.databases()]
        if len(db_names) != 1:
            raise ReproError(
                f"--database required: {len(db_names)} databases are "
                f"registered"
            )
        database = db_names[0]
    return query, database


def cmd_explain(args) -> int:
    """EXPLAIN ANALYZE one request: run it with the flight recorder on
    and print the report joining the static certificate side with the
    observed execution side (JSON)."""
    from repro.service import QueryRequest

    service = _build_service(args)
    service.enable_flight()
    try:
        query, database = _resolve_target(service, args)
        response = service.execute(
            QueryRequest(
                query=query,
                database=database,
                engine=args.engine,
                arity=args.arity,
                fuel=args.fuel,
                shards=args.shards,
                explain=True,
            )
        )
    finally:
        service.close()
    print(json.dumps(response.explain or {}, indent=2))
    return 0 if response.ok else 1


def cmd_flight(args) -> int:
    """Serve an optional batch with the flight recorder on, then dump
    the retained records and the recorder's stats (JSON)."""
    service = _build_service(args)
    flight = service.enable_flight()
    try:
        if args.requests:
            requests = _load_batch_requests(
                args.requests, service, args.constants or ()
            )
            if args.repeat > 1:
                requests = [r for _ in range(args.repeat) for r in requests]
            service.execute_batch(requests, max_workers=args.workers)
        payload = {
            "records": flight.records(
                trace_id=args.trace_id, limit=args.limit
            ),
            "stats": flight.snapshot(),
        }
    finally:
        service.close()
    print(json.dumps(payload, indent=2))
    return 0


def cmd_trace(args) -> int:
    """Serve one request with tracing on and print the span tree."""
    from repro.obs.tracing import (
        JsonlExporter,
        RingBufferExporter,
        Tracer,
        render_span_tree,
    )
    from repro.service import QueryRequest

    ring = RingBufferExporter()
    exporters = [ring]
    jsonl = None
    if args.trace_out:
        jsonl = JsonlExporter(args.trace_out)
        exporters.append(jsonl)
    tracer = Tracer(exporters=exporters, enabled=True)
    service = _build_service(args, tracer=tracer)

    try:
        query, database = _resolve_target(service, args)
        for _ in range(max(1, args.repeat)):
            response = service.execute(
                QueryRequest(
                    query=query,
                    database=database,
                    engine=args.engine,
                    arity=args.arity,
                    fuel=args.fuel,
                    shards=args.shards,
                )
            )
    finally:
        service.close()
        if jsonl is not None:
            jsonl.close()

    leaked = tracer.open_spans()
    if leaked:  # pragma: no cover - would be a runtime bug
        print(
            f"warning: {len(leaked)} span(s) never closed: "
            f"{[span.name for span in leaked]}",
            file=sys.stderr,
        )

    if args.json:
        print(
            json.dumps(
                {
                    "response": response.as_dict(
                        include_tuples=not args.no_tuples
                    ),
                    "spans": [span.as_dict() for span in ring.spans()],
                },
                indent=2,
            )
        )
        return 0 if response.ok else 1

    print(render_span_tree(ring.spans()))
    profile = response.profile or {}
    if profile:
        print(
            f"# profile: steps={profile.get('steps')} "
            f"beta={profile.get('beta')} delta={profile.get('delta')} "
            f"let={profile.get('let')} quote={profile.get('quote')} "
            f"max_depth={profile.get('max_depth')}",
            file=sys.stderr,
        )
        if profile.get("static_bound") is not None:
            print(
                f"# static bound: {profile['static_bound']} "
                f"(observed/bound = {profile['bound_ratio']})",
                file=sys.stderr,
            )
    if response.relation is not None and not args.no_tuples:
        for row in response.relation.tuples:
            print("\t".join(row))
    elif response.error:
        print(f"# {response.status}: {response.error}", file=sys.stderr)
    return 0 if response.ok else 1


def cmd_shard(args) -> int:
    """Evaluate one request on the sharded execution engine and (by
    default) check it against the in-process result."""
    from repro.service import QueryRequest
    from repro.shard import ShardPolicy, canonical_relation

    service = _build_service(args)
    try:
        query = args.query_ref
        known_queries = {entry.name for entry in service.catalog.queries()}
        if query not in known_queries:
            query = read_term_argument(query, constants=args.constants or ())
        db_names = [entry.name for entry in service.catalog.databases()]
        database = args.database
        if database is None:
            if len(db_names) != 1:
                raise ReproError(
                    f"--database required: {len(db_names)} databases are "
                    f"registered"
                )
            database = db_names[0]

        policy = ShardPolicy(
            shards=args.shards,
            partitioner=args.partitioner,
            fallback=args.fallback,
            task_timeout_s=args.task_timeout_s,
        )
        base = dict(
            query=query,
            database=database,
            engine=args.engine,
            arity=args.arity,
            fuel=args.fuel,
        )
        sharded = service.execute(
            QueryRequest(shard_policy=policy, **base)
        )
        local = None
        match = None
        speedup = None
        if not args.no_compare and sharded.ok:
            local = service.execute(QueryRequest(**base))
            if local.ok:
                match = canonical_relation(local.relation) == (
                    canonical_relation(sharded.relation)
                )
                if (
                    sharded.compute_wall_ms
                    and local.compute_wall_ms is not None
                ):
                    speedup = round(
                        local.compute_wall_ms / sharded.compute_wall_ms, 3
                    )
        shard_profile = (sharded.profile or {}).get("shard")

        if args.json:
            print(
                json.dumps(
                    {
                        "response": sharded.as_dict(
                            include_tuples=not args.no_tuples
                        ),
                        "plan": shard_profile,
                        "match": match,
                        "speedup": speedup,
                        "local_compute_wall_ms": (
                            round(local.compute_wall_ms, 3)
                            if local is not None
                            and local.compute_wall_ms is not None
                            else None
                        ),
                    },
                    indent=2,
                )
            )
            return 0 if sharded.ok and match is not False else 1

        if shard_profile is None:
            print(
                f"# plan is not shard-distributable; served "
                f"{sharded.status} in-process"
            )
        else:
            print(
                f"# mode={shard_profile['mode']} [{shard_profile['code']}] "
                f"shards={shard_profile['shards']} "
                f"partitioner={shard_profile['partitioner']} "
                f"split={','.join(shard_profile['partitioned'])}"
            )
            for row in shard_profile["rows"]:
                ratio = row.get("bound_ratio")
                print(
                    f"#   shard {row['shard']}: in={row['input_tuples']} "
                    f"steps={row['steps']} fuel={row['fuel']} "
                    f"bound_ratio={ratio if ratio is not None else '-'} "
                    f"worker={row['worker']} retries={row['retries']}"
                    + (" degraded" if row["degraded"] else "")
                )
        if match is not None:
            verdict = "equal" if match else "MISMATCH"
            print(
                f"# vs in-process: {verdict}"
                + (f", speedup {speedup}x" if speedup is not None else "")
            )
        if sharded.relation is not None and not args.no_tuples:
            for row in sharded.relation.tuples:
                print("\t".join(row))
        elif sharded.error:
            print(f"# {sharded.status}: {sharded.error}", file=sys.stderr)
        return 0 if sharded.ok and match is not False else 1
    finally:
        service.close()


def cmd_serve(args) -> int:
    """Serve the catalog over HTTP: the asyncio edge with auth, rate
    limiting, fuel-denominated admission control, and graceful drain."""
    import asyncio

    from repro.http import QueryEdge, ServerConfig, render_listen_line

    config = ServerConfig.from_env()
    for option in (
        "host", "port", "rate_limit", "rate_burst", "max_inflight_fuel",
        "max_queue_fuel", "queue_timeout_s", "uncertified_fuel",
        "retry_after_s", "workers", "drain_timeout_s", "request_timeout_s",
    ):
        value = getattr(args, option, None)
        if value is not None:
            setattr(config, option, value)
    if args.token:
        config.tokens = tuple(args.token)
    config.validate()

    service = _build_service(args)
    edge = QueryEdge(service, config)
    if not edge.auth.enabled and config.host not in (
        "127.0.0.1", "localhost", "::1"
    ):
        print(
            "warning: serving without bearer auth on a non-loopback "
            "address; pass --token or set REPRO_HTTP_TOKENS",
            file=sys.stderr,
        )

    def on_ready(started: "QueryEdge") -> None:
        print(render_listen_line(started), flush=True)

    try:
        asyncio.run(edge.run(on_ready=on_ready))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C fallback
        pass
    finally:
        service.close()
    print("repro-edge drained; shard pool closed", flush=True)
    return 0


def cmd_encode(args) -> int:
    database = load_database(args.db)
    for name, relation in database:
        if args.relation and name != args.relation:
            continue
        print(f"{name} = {pretty(encode_relation(relation))}")
    return 0


def cmd_decode(args) -> int:
    term = read_term_argument(args.term, constants=args.constants or ())
    # In a valid encoding every tuple component is a constant (Lemma 3.2),
    # so free variables can only be constants written without the o<digits>
    # convention — promote them, matching what ``repro encode`` prints.
    from repro.lam.subst import substitute_many
    from repro.lam.terms import Const, free_vars

    term = substitute_many(
        term, {name: Const(name) for name in free_vars(term)}
    )
    decoded = decode_relation(term, args.arity)
    for row in decoded.relation.tuples:
        print("\t".join(row))
    if decoded.had_duplicates:
        print("# encoding contained duplicate tuples", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Functional database query languages as typed lambda calculi "
            "(Hillebrand & Kanellakis, PODS 1994)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    p = commands.add_parser("normalize", help="reduce a term to normal form")
    p.add_argument("term", help="a term, or @file")
    p.add_argument("--constants", nargs="*", metavar="NAME",
                   help="extra names to read as atomic constants")
    p.add_argument("--engine", choices=["nbe", "normal", "applicative"],
                   default="nbe")
    p.add_argument("--fuel", type=int, default=1_000_000)
    p.add_argument("--steps", action="store_true",
                   help="report step counts (small-step engines)")
    p.set_defaults(handler=cmd_normalize)

    p = commands.add_parser("type", help="reconstruct the principal type")
    p.add_argument("term", help="a term, or @file")
    p.add_argument("--constants", nargs="*", metavar="NAME",
                   help="extra names to read as atomic constants")
    p.add_argument("--ml", action="store_true",
                   help="use core-ML= (let-polymorphic) reconstruction")
    p.set_defaults(handler=cmd_type)

    p = commands.add_parser("run", help="run a query term over a database")
    p.add_argument("query", help="a query term, or @file")
    p.add_argument("--constants", nargs="*", metavar="NAME",
                   help="extra names to read as atomic constants")
    p.add_argument("--db", required=True, help="database JSON file")
    p.add_argument("--arity", type=int, default=None,
                   help="expected output arity")
    p.add_argument("--engine",
                   choices=["nbe", "smallstep", "applicative", "ra"],
                   default="nbe")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(handler=cmd_run)

    p = commands.add_parser(
        "translate",
        help="compile a TLI=0/MLI=0 query to first-order logic",
    )
    p.add_argument("query", help="a query term, or @file")
    p.add_argument("--constants", nargs="*", metavar="NAME",
                   help="extra names to read as atomic constants")
    p.add_argument("--inputs", type=int, nargs="+", required=True,
                   help="input arities k1 ... kl")
    p.add_argument("--output", type=int, required=True,
                   help="output arity k")
    p.add_argument("--db", help="optionally evaluate over this database")
    p.set_defaults(handler=cmd_translate)

    p = commands.add_parser(
        "recognize", help="Lemma 3.9: is this a TLI=/MLI= query term?"
    )
    p.add_argument("query", help="a query term, or @file")
    p.add_argument("--constants", nargs="*", metavar="NAME",
                   help="extra names to read as atomic constants")
    p.add_argument("--inputs", type=int, nargs="+", required=True)
    p.add_argument("--output", type=int, required=True)
    p.set_defaults(handler=cmd_recognize)

    p = commands.add_parser(
        "fo", help="evaluate a first-order query (Definition 3.5)"
    )
    p.add_argument("formula",
                   help="e.g. \"exists y. R(x, y) & ~S(y, x)\"")
    p.add_argument("--vars", nargs="+", required=True,
                   help="output variables (column order)")
    p.add_argument("--db", required=True, help="database JSON file")
    p.add_argument("--engine", choices=["fo", "lambda"], default="fo",
                   help="direct FO evaluation, or compile through RA to a "
                        "TLI=0 term and reduce (Theorem 4.1)")
    p.add_argument("--constants", nargs="*", metavar="NAME",
                   help="extra names to read as constants")
    p.set_defaults(handler=cmd_fo)

    p = commands.add_parser(
        "datalog", help="evaluate a Datalog(-not) program"
    )
    p.add_argument("program", help="program file (name(X,Y) :- ... syntax)")
    p.add_argument("--db", required=True, help="database JSON file")
    p.add_argument("--engine", choices=["datalog", "lambda"],
                   default="datalog",
                   help="baseline engine, or compile to a TLI=1 term and "
                        "run the Theorem 5.2 evaluator (single IDB only)")
    p.add_argument("--semantics", choices=["stratified", "inflationary"],
                   default="stratified")
    p.set_defaults(handler=cmd_datalog)

    def add_service_options(p):
        p.add_argument("--db", action="append", metavar="NAME=PATH",
                       help="register a database (repeatable)")
        p.add_argument("--query", action="append", metavar="NAME=SPEC",
                       help="register a query term (SPEC is a term or "
                            "@file; repeatable)")
        p.add_argument("--fixpoint", action="append", metavar="NAME=KIND",
                       help="register a fixpoint query: tc[:E], "
                            "reach[:S,E], or sg[:flat,up,down] "
                            "(runs on the Theorem 5.2 PTIME evaluator)")
        p.add_argument("--inputs", type=int, nargs="+",
                       help="input arities for --query order checking")
        p.add_argument("--output", type=int,
                       help="output arity for --query order checking")
        p.add_argument("--constants", nargs="*", metavar="NAME",
                       help="extra names to read as atomic constants")
        p.add_argument("--no-check", action="store_true",
                       help="skip registration-time type/order checking")
        p.add_argument("--cache-capacity", type=int, default=256)
        p.add_argument("--slow-query-ms", type=float, default=None,
                       metavar="MS",
                       help="log requests slower than this threshold on "
                            "the repro.service.slow logger (and count "
                            "them in repro_slow_queries_total)")
        p.add_argument("--json", action="store_true",
                       help="machine-readable output")

    p = commands.add_parser(
        "catalog",
        help="register databases and query plans, print the catalog",
    )
    add_service_options(p)
    p.set_defaults(handler=cmd_catalog)

    p = commands.add_parser(
        "lint",
        help="statically certify query plans (order, cost, well-formedness)",
    )
    p.add_argument("paths", nargs="*", metavar="PATH",
                   help=".lam files or directories; leading '# key: value' "
                        "comment lines declare name/inputs/output/"
                        "max-order/constants/expect")
    p.add_argument("--operators", action="store_true",
                   help="lint the built-in relational operator library")
    p.add_argument("--query", action="append", metavar="NAME=SPEC",
                   help="lint a query term (SPEC is a term or @file; "
                        "repeatable)")
    p.add_argument("--fixpoint", action="append", metavar="NAME=KIND",
                   help="lint a fixpoint query: tc[:E], reach[:S,E], or "
                        "sg[:flat,up,down]")
    p.add_argument("--inputs", type=int, nargs="+",
                   help="input arities for --query signature checking")
    p.add_argument("--output", type=int,
                   help="output arity for --query signature checking")
    p.add_argument("--budget", type=int, default=None,
                   help="derivation-order budget (error above it; "
                        "TLI=i plans live at order i+3)")
    p.add_argument("--constants", nargs="*", metavar="NAME",
                   help="extra names to read as atomic constants")
    p.add_argument("--strict", action="store_true",
                   help="unexpected warnings fail the run too")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report")
    p.add_argument("--verbose", action="store_true",
                   help="include info-level certificates in text output")
    p.add_argument("--analyze", action="store_true",
                   help="show the abstract-interpretation facts per plan "
                        "(scan sites, per-input scan intervals, "
                        "cardinality, tightened cost)")
    p.set_defaults(handler=cmd_lint)

    p = commands.add_parser(
        "batch",
        help="serve a JSON batch of query requests through the service",
    )
    p.add_argument("requests",
                   help="JSON file: a list of {query, db?, engine?, "
                        "arity?, fuel?, timeout_s?, tag?} objects, or "
                        "{\"requests\": [...]}")
    add_service_options(p)
    p.add_argument("--workers", type=int, default=None,
                   help="thread-pool size (default: min(8, batch size))")
    p.add_argument("--repeat", type=int, default=1,
                   help="serve the request list this many times")
    p.add_argument("--no-tuples", action="store_true",
                   help="omit result tuples from the output")
    p.set_defaults(handler=cmd_batch)

    p = commands.add_parser(
        "stats",
        help="dump the service metrics registry (optionally after a batch)",
    )
    add_service_options(p)
    p.add_argument("--requests", default=None,
                   help="serve this JSON batch first, so the metrics "
                        "describe real traffic")
    p.add_argument("--workers", type=int, default=None,
                   help="thread-pool size for --requests")
    p.add_argument("--repeat", type=int, default=1,
                   help="serve the --requests list this many times")
    p.add_argument("--prometheus", action="store_true",
                   help="Prometheus text exposition instead of JSON/text")
    p.set_defaults(handler=cmd_stats)

    p = commands.add_parser(
        "trace",
        help="serve one request with tracing on and print the span tree",
    )
    p.add_argument("query_ref", metavar="QUERY",
                   help="a query registered via --query/--fixpoint, or an "
                        "inline term / @file")
    add_service_options(p)
    p.add_argument("--database", default=None,
                   help="which registered database to query (default: the "
                        "only one)")
    p.add_argument("--engine", default=None,
                   choices=["nbe", "smallstep", "applicative", "ra", "fixpoint"],
                   help="override the plan's engine")
    p.add_argument("--arity", type=int, default=None,
                   help="expected output arity")
    p.add_argument("--fuel", type=int, default=None,
                   help="explicit fuel budget (default: derived from the "
                        "static cost certificate)")
    p.add_argument("--shards", type=int, default=None, metavar="K",
                   help="evaluate on the sharded engine with K shards; "
                        "the tree shows per-shard worker spans merged "
                        "under the coordinator's trace")
    p.add_argument("--repeat", type=int, default=1,
                   help="serve the request this many times (later runs "
                        "show the cache-hit span shape)")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="also append finished spans to this JSONL file")
    p.add_argument("--no-tuples", action="store_true",
                   help="omit result tuples from the output")
    p.set_defaults(handler=cmd_trace)

    p = commands.add_parser(
        "explain",
        help="EXPLAIN ANALYZE one request: the static certificate joined "
             "with the observed execution, as JSON",
    )
    p.add_argument("query_ref", metavar="QUERY",
                   help="a query registered via --query/--fixpoint, or an "
                        "inline term / @file")
    add_service_options(p)
    p.add_argument("--database", default=None,
                   help="which registered database to query (default: the "
                        "only one)")
    p.add_argument("--engine", default=None,
                   choices=["nbe", "smallstep", "applicative", "ra", "fixpoint"],
                   help="override the plan's engine")
    p.add_argument("--arity", type=int, default=None,
                   help="expected output arity")
    p.add_argument("--fuel", type=int, default=None,
                   help="explicit fuel budget (default: derived from the "
                        "static cost certificate)")
    p.add_argument("--shards", type=int, default=None, metavar="K",
                   help="evaluate on the sharded engine with K shards "
                        "(the report gains per-shard fuel/steps rows)")
    p.set_defaults(handler=cmd_explain)

    p = commands.add_parser(
        "flight",
        help="dump flight-recorder records (optionally after serving a "
             "batch)",
    )
    add_service_options(p)
    p.add_argument("--requests", default=None,
                   help="serve this JSON batch first, so the recorder "
                        "holds real traffic")
    p.add_argument("--workers", type=int, default=None,
                   help="thread-pool size for --requests")
    p.add_argument("--repeat", type=int, default=1,
                   help="serve the --requests list this many times")
    p.add_argument("--trace-id", default=None, metavar="TRACE",
                   help="return only this trace's record")
    p.add_argument("--limit", type=int, default=None,
                   help="cap the record listing (newest first)")
    p.set_defaults(handler=cmd_flight)

    p = commands.add_parser(
        "shard",
        help="evaluate a request on the sharded execution engine",
    )
    p.add_argument("query_ref", metavar="QUERY",
                   help="a query registered via --query/--fixpoint, or an "
                        "inline term / @file")
    add_service_options(p)
    p.add_argument("--database", default=None,
                   help="which registered database to query (default: the "
                        "only one)")
    p.add_argument("--shards", type=int, default=2,
                   help="partition count k (default 2)")
    p.add_argument("--partitioner", default="hash",
                   choices=["hash", "round_robin"],
                   help="tuple-to-shard assignment rule")
    p.add_argument("--fallback", default="local",
                   choices=["local", "error"],
                   help="what a non-distributable plan does (default: "
                        "fall back to in-process evaluation)")
    p.add_argument("--task-timeout-s", type=float, default=None,
                   help="per-shard task deadline on the worker pool")
    p.add_argument("--engine", default=None,
                   choices=["nbe", "smallstep", "applicative", "ra", "fixpoint"],
                   help="override the plan's engine")
    p.add_argument("--arity", type=int, default=None,
                   help="expected output arity")
    p.add_argument("--fuel", type=int, default=None,
                   help="explicit per-shard fuel (default: the cost "
                        "certificate split over each shard's statistics)")
    p.add_argument("--no-compare", action="store_true",
                   help="skip the in-process comparison run")
    p.add_argument("--no-tuples", action="store_true",
                   help="omit result tuples from the output")
    p.set_defaults(handler=cmd_shard)

    p = commands.add_parser(
        "serve",
        help="serve the catalog over HTTP (asyncio edge with admission "
             "control and graceful drain)",
    )
    add_service_options(p)
    p.add_argument("--host", default=None,
                   help="bind address (default 127.0.0.1; env "
                        "REPRO_HTTP_HOST)")
    p.add_argument("--port", type=int, default=None,
                   help="bind port; 0 picks an ephemeral port "
                        "(default 8080; env REPRO_HTTP_PORT)")
    p.add_argument("--token", action="append", metavar="TOKEN",
                   help="accept this bearer token (repeatable; none = "
                        "open edge; env REPRO_HTTP_TOKENS=a,b)")
    p.add_argument("--rate-limit", type=float, default=None, metavar="RPS",
                   help="per-client sustained requests/second "
                        "(<= 0 disables; default 50)")
    p.add_argument("--rate-burst", type=int, default=None,
                   help="per-client token-bucket burst (default 100)")
    p.add_argument("--max-inflight-fuel", type=int, default=None,
                   metavar="FUEL",
                   help="certified fuel units allowed to execute "
                        "concurrently (admission capacity)")
    p.add_argument("--max-queue-fuel", type=int, default=None,
                   metavar="FUEL",
                   help="certified fuel units allowed to wait for "
                        "capacity")
    p.add_argument("--queue-timeout-s", type=float, default=None,
                   help="max seconds a request may wait for admission")
    p.add_argument("--uncertified-fuel", type=int, default=None,
                   metavar="FUEL",
                   help="fuel charged for plans without a cost "
                        "certificate")
    p.add_argument("--retry-after-s", type=int, default=None,
                   help="Retry-After hint on 429/503 responses")
    p.add_argument("--workers", type=int, default=None,
                   help="service-execution thread pool size (default 8)")
    p.add_argument("--drain-timeout-s", type=float, default=None,
                   help="max seconds SIGTERM waits for in-flight "
                        "requests")
    p.add_argument("--request-timeout-s", type=float, default=None,
                   help="default per-request deadline passed to the "
                        "service")
    p.set_defaults(handler=cmd_serve)

    p = commands.add_parser("encode", help="encode database relations")
    p.add_argument("--db", required=True)
    p.add_argument("--relation", help="encode only this relation")
    p.set_defaults(handler=cmd_encode)

    p = commands.add_parser("decode", help="decode a relation encoding")
    p.add_argument("term", help="a normal-form encoding, or @file")
    p.add_argument("--arity", type=int, default=None)
    p.add_argument("--constants", nargs="*", metavar="NAME",
                   help="extra names to read as atomic constants")
    p.set_defaults(handler=cmd_decode)

    return parser


def main(argv: List[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
