"""Certified-plan -> relational-algebra compilation engine (the ``"ra"`` engine).

The paper's Section 5 upper bounds are evaluation *algorithms*: canonical
TLI=0 terms translate to first-order / relational-algebra evaluation and
TLI=1 terms to PTIME fixpoint iteration — they were never meant to be run
by beta-reduction.  This package lowers the certifier's normalized plans
to a small fold-structured IR (:mod:`repro.compile.ir`), rewrites the IR
into hash-based physical operators (:mod:`repro.compile.planner`), and
executes the result directly on Python sets/dicts
(:mod:`repro.compile.executor`) — no beta-reduction on the hot path.
Fixpoint queries skip the lambda tower entirely and iterate their RA step
set-at-a-time (:mod:`repro.compile.fixpoint`).

Plans the lowering cannot classify raise :class:`CompileFallback`; the
service keeps NBE as the runtime fallback and differential oracle.
"""

from repro.compile.engine import (
    CompiledRun,
    CompiledTermPlan,
    CompileDecision,
    CompileFallback,
    compile_decision,
    compile_term_plan,
    decision_for_fixpoint,
)
from repro.compile.fixpoint import run_fixpoint_query_compiled

__all__ = [
    "CompileDecision",
    "CompileFallback",
    "CompiledRun",
    "CompiledTermPlan",
    "compile_decision",
    "compile_term_plan",
    "decision_for_fixpoint",
    "run_fixpoint_query_compiled",
]
