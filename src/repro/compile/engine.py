"""The ``"ra"`` engine façade: compile once, execute on sets forever.

:func:`compile_term_plan` runs lowering + physical planning for a
certified term plan and memoizes the result by the plan's alpha-invariant
digest, so the service compiles each registered plan at most once.
:func:`compile_decision` wraps the outcome as a :class:`CompileDecision`
— the record the catalog turns into a TLI028 ("compiled") or TLI029
("compile fallback") diagnostic and EXPLAIN carries in its static
section.

Execution (:meth:`CompiledTermPlan.execute`) never touches the lambda
runtime: rows come straight from the set-backed executor and the
response-side normal form is *synthesized* with
:func:`repro.db.encode.encode_relation` — building a Definition 3.1
encoding of an already-computed relation is list construction, not
beta-reduction.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.compile import executor as _executor
from repro.compile.ir import Node, describe, summarize
from repro.compile.lower import LoweringError, lower_term_plan
from repro.compile.planner import plan as plan_physical
from repro.db.decode import DecodedRelation
from repro.db.relations import Database, Relation
from repro.lam.terms import Term, digest
from repro.queries.fixpoint import FixpointQuery

#: Static plan-tree depth beyond which execution is refused: the
#: tree-walking executor recurses along the *static* IR, so the depth
#: bound keeps it comfortably inside the interpreter's stack.
MAX_PLAN_DEPTH = 200


class CompileFallback(Exception):
    """The plan cannot be compiled; ``reason`` tags the taxonomy entry."""

    def __init__(self, reason: str, detail: str = "") -> None:
        self.reason = reason
        self.detail = detail
        super().__init__(f"{reason}: {detail}" if detail else reason)


@dataclass(frozen=True)
class CompileDecision:
    """What the compiler decided for a plan (EXPLAIN's static record)."""

    status: str  # "compiled" | "fallback"
    kind: str  # "term" | "fixpoint"
    summary: str  # one-line operator chain or fallback reason
    reason: Optional[str] = None  # fallback taxonomy tag
    tree: Optional[Dict[str, object]] = None  # operator tree (compiled)

    @property
    def compiled(self) -> bool:
        return self.status == "compiled"

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "status": self.status,
            "kind": self.kind,
            "summary": self.summary,
        }
        if self.reason is not None:
            payload["reason"] = self.reason
        if self.tree is not None:
            payload["tree"] = self.tree
        return payload


@dataclass(frozen=True)
class CompiledRun:
    """One execution of a compiled term plan."""

    relation: Relation
    decoded: DecodedRelation
    normal_form: Term
    ops: int


@dataclass(frozen=True)
class CompiledTermPlan:
    """A term plan lowered and physically planned, ready to execute."""

    input_names: Tuple[str, ...]
    input_arities: Tuple[int, ...]
    output_arity: int
    body: Node

    @property
    def decision(self) -> CompileDecision:
        return CompileDecision(
            status="compiled",
            kind="term",
            summary=summarize(self.body),
            tree=describe(self.body),
        )

    def execute(self, database: Database) -> CompiledRun:
        rows, ops = _executor.execute(
            self.body, self.input_names, database, self.input_arities
        )
        relation = Relation.deduplicated(self.output_arity, rows)
        decoded = DecodedRelation(
            relation=relation,
            raw_tuples=tuple(rows),
            had_duplicates=len(rows) != len(relation),
            eta_variant=False,
        )
        from repro.db.encode import encode_relation

        return CompiledRun(
            relation=relation,
            decoded=decoded,
            normal_form=encode_relation(relation),
            ops=ops,
        )


def _depth(node: Node) -> int:
    children = []
    for attr in ("body", "tail", "then", "else_"):
        child = getattr(node, attr, None)
        if isinstance(child, Node):
            children.append(child)
    if not children:
        return 1
    return 1 + max(_depth(child) for child in children)


_CACHE_CAP = 256
_cache: Dict[
    Tuple[str, Tuple[int, ...], int],
    "CompiledTermPlan | CompileFallback",
] = {}
_cache_lock = threading.Lock()


def compile_term_plan(
    term: Term, input_arities: Sequence[int], output_arity: int
) -> CompiledTermPlan:
    """Compile a term plan, memoized by plan digest + signature.

    Raises :class:`CompileFallback` (also memoized — recompiling a plan
    that cannot lower would re-pay the normalization) when the plan
    falls outside the liftable grammar.
    """
    key = (digest(term), tuple(input_arities), output_arity)
    with _cache_lock:
        cached = _cache.get(key)
    if cached is not None:
        if isinstance(cached, CompileFallback):
            raise cached
        return cached
    try:
        lowered = lower_term_plan(term, input_arities, output_arity)
        body = plan_physical(lowered.body)
        if _depth(body) > MAX_PLAN_DEPTH:
            raise LoweringError(
                "plan-too-deep", f"operator depth > {MAX_PLAN_DEPTH}"
            )
        compiled = CompiledTermPlan(
            input_names=lowered.input_names,
            input_arities=lowered.input_arities,
            output_arity=output_arity,
            body=body,
        )
        outcome: "CompiledTermPlan | CompileFallback" = compiled
    except LoweringError as exc:
        outcome = CompileFallback(exc.reason, exc.detail)
    with _cache_lock:
        if len(_cache) >= _CACHE_CAP:
            _cache.clear()
        _cache[key] = outcome
    if isinstance(outcome, CompileFallback):
        raise outcome
    return outcome


def compile_decision(
    term: Term, input_arities: Sequence[int], output_arity: int
) -> CompileDecision:
    """The decision record for a term plan (never raises)."""
    try:
        return compile_term_plan(term, input_arities, output_arity).decision
    except CompileFallback as exc:
        return CompileDecision(
            status="fallback",
            kind="term",
            summary=str(exc),
            reason=exc.reason,
        )


def decision_for_fixpoint(query: FixpointQuery) -> CompileDecision:
    """Fixpoint steps are already RA — they always compile."""
    from repro.compile.fixpoint import step_read_set

    reads = ",".join(step_read_set(query)) or "-"
    return CompileDecision(
        status="compiled",
        kind="fixpoint",
        summary=(
            f"set-fixpoint(arity={query.output_arity}, reads={reads})"
        ),
    )
