"""Set-backed execution of physical plans — no beta-reduction anywhere.

Output lists are persistent cons cells ``(row, rest)`` / ``None`` so the
branch-heavy fold bodies can share accumulators in O(1), exactly like
the Church lists they replace — but each fold is a plain Python loop
over materialized tuples, each hash probe one frozen-set lookup, and
each hash join one dict-of-buckets build plus per-row probes.

The executor counts *operations* (tuples scanned, index entries built,
rows emitted, probes issued) and reports them as the run's step count;
every operation corresponds to at least one beta/delta step the NBE
engine would have spent, so the certifier's cost envelopes — and the
CI gate ``observed <= certified bound`` — remain sound for compiled
runs.

Hash indexes are cached per run, keyed by the relation name and the
index shape, so a probe nested inside an outer scan builds its index
once and answers each of the outer rows in O(1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.compile.ir import (
    AccRef,
    Branch,
    Col,
    Emit,
    Expr,
    Fold,
    HashJoin,
    HashProbe,
    Lit,
    Nil,
    Node,
)
from repro.db.relations import Database, Relation
from repro.errors import SchemaError

#: A persistent output list: ``None`` or ``(row, rest)``.
ConsList = Optional[Tuple[Tuple[str, ...], "ConsList"]]

#: Sentinel distinguishing "unbound" from a legitimately-``None`` (empty
#: list) environment entry during save/restore around fold scopes.
_ABSENT = object()


@dataclass
class _Run:
    """Per-execution state: the database view, env, indexes, op count."""

    relations: Dict[str, Relation]
    env: Dict[str, object] = field(default_factory=dict)
    sets: Dict[object, FrozenSet[Tuple[str, ...]]] = field(
        default_factory=dict
    )
    buckets: Dict[object, Dict[Tuple[str, ...], List[tuple]]] = field(
        default_factory=dict
    )
    ops: int = 0


def execute(
    body: Node,
    input_names: Tuple[str, ...],
    database: Database,
    arities: Tuple[int, ...],
) -> Tuple[List[Tuple[str, ...]], int]:
    """Run a plan body against ``database``.

    Binding is *positional* — the plan's i-th input binder takes the
    database's i-th relation, exactly as the lambda runtime applies the
    query term to the encoded relations in database order (the binder
    names themselves are readback-fresh ``v0, v1, ...``).

    Returns the emitted rows in list order (duplicates preserved —
    callers dedup into a :class:`Relation`) and the operation count.
    """
    supplied = list(database)
    if len(supplied) != len(input_names):
        raise SchemaError(
            f"plan binds {len(input_names)} inputs, database has "
            f"{len(supplied)} relations"
        )
    relations: Dict[str, Relation] = {}
    for (db_name, relation), name, arity in zip(
        supplied, input_names, arities
    ):
        if relation.arity != arity:
            raise SchemaError(
                f"input {db_name!r} has arity {relation.arity}, "
                f"plan compiled for {arity}"
            )
        relations[name] = relation
    run = _Run(relations)
    result = _eval(body, run)
    rows: List[Tuple[str, ...]] = []
    while result is not None:
        rows.append(result[0])
        result = result[1]
    run.ops += len(rows)
    return rows, run.ops


def _scalar(expr: Expr, run: _Run) -> str:
    if isinstance(expr, Col):
        return run.env[expr.name]  # type: ignore[return-value]
    if isinstance(expr, Lit):
        return expr.value
    raise TypeError(f"not an expr: {expr!r}")


def _eval(node: Node, run: _Run) -> ConsList:
    if isinstance(node, Nil):
        return None
    if isinstance(node, AccRef):
        return run.env[node.name]  # type: ignore[return-value]
    if isinstance(node, Emit):
        tail = _eval(node.tail, run)
        run.ops += 1
        return (tuple(_scalar(e, run) for e in node.exprs), tail)
    if isinstance(node, Branch):
        if _scalar(node.lhs, run) == _scalar(node.rhs, run):
            return _eval(node.then, run)
        return _eval(node.else_, run)
    if isinstance(node, Fold):
        return _eval_fold(node, run)
    if isinstance(node, HashProbe):
        return _eval_probe(node, run)
    if isinstance(node, HashJoin):
        return _eval_join(node, run)
    raise TypeError(f"not an IR node: {node!r}")


def _eval_fold(node: Fold, run: _Run) -> ConsList:
    acc = _eval(node.tail, run)
    tuples = run.relations[node.source].tuples
    env = run.env
    saved = {
        name: env.get(name, _ABSENT) for name in (*node.params, node.acc)
    }
    try:
        for row in reversed(tuples):
            run.ops += 1
            for name, value in zip(node.params, row):
                env[name] = value
            env[node.acc] = acc
            acc = _eval(node.body, run)
    finally:
        for name, value in saved.items():
            if value is _ABSENT:
                env.pop(name, None)
            else:
                env[name] = value
    return acc


def _key_set(node: HashProbe, run: _Run) -> FrozenSet[Tuple[str, ...]]:
    positions = tuple(i for i, _ in node.keys)
    filters = tuple(
        (i, _scalar(e, run)) for i, e in node.filters
    )
    cache_key = (node.source, positions, filters, node.same_filters)
    cached = run.sets.get(cache_key)
    if cached is not None:
        return cached
    rows = run.relations[node.source].tuples
    keys = set()
    for row in rows:
        run.ops += 1
        if any(row[i] != value for i, value in filters):
            continue
        if any(row[i] != row[j] for i, j in node.same_filters):
            continue
        keys.add(tuple(row[i] for i in positions))
    frozen = frozenset(keys)
    run.sets[cache_key] = frozen
    return frozen


def _eval_probe(node: HashProbe, run: _Run) -> ConsList:
    run.ops += 1
    for lhs, rhs in node.guards:
        if _scalar(lhs, run) != _scalar(rhs, run):
            return _eval(node.else_, run)
    index = _key_set(node, run)
    probe = tuple(_scalar(e, run) for _, e in node.keys)
    if probe in index:
        return _eval(node.then, run)
    return _eval(node.else_, run)


def _bucket_index(
    node: HashJoin, run: _Run
) -> Dict[Tuple[str, ...], List[tuple]]:
    positions = tuple(i for i, _ in node.keys)
    filters = tuple((i, _scalar(e, run)) for i, e in node.filters)
    cache_key = (node.inner, positions, filters, node.same_filters)
    cached = run.buckets.get(cache_key)
    if cached is not None:
        return cached
    index: Dict[Tuple[str, ...], List[tuple]] = {}
    for row in run.relations[node.inner].tuples:
        run.ops += 1
        if any(row[i] != value for i, value in filters):
            continue
        if any(row[i] != row[j] for i, j in node.same_filters):
            continue
        index.setdefault(tuple(row[i] for i in positions), []).append(row)
    run.buckets[cache_key] = index
    return index


def _eval_join(node: HashJoin, run: _Run) -> ConsList:
    for lhs, rhs in node.guards:
        if _scalar(lhs, run) != _scalar(rhs, run):
            return _eval(node.tail, run)
    env = run.env
    outer_rows = run.relations[node.outer].tuples
    saved = {
        name: env.get(name, _ABSENT)
        for name in (*node.outer_params, *node.inner_params)
    }
    emitted: List[Tuple[str, ...]] = []
    try:
        index = _bucket_index(node, run)
        key_exprs = tuple(e for _, e in node.keys)
        for row in outer_rows:
            run.ops += 1
            for name, value in zip(node.outer_params, row):
                env[name] = value
            if any(
                _scalar(lhs, run) != _scalar(rhs, run)
                for lhs, rhs in node.outer_tests
            ):
                continue
            probe = tuple(_scalar(e, run) for e in key_exprs)
            for match in index.get(probe, ()):
                run.ops += 1
                for name, value in zip(node.inner_params, match):
                    env[name] = value
                emitted.append(
                    tuple(_scalar(e, run) for e in node.exprs)
                )
    finally:
        for name, value in saved.items():
            if value is _ABSENT:
                env.pop(name, None)
            else:
                env[name] = value
    acc = _eval(node.tail, run)
    for row in reversed(emitted):
        acc = (row, acc)
    return acc
