"""Set-at-a-time fixpoint iteration — the compiled TLI=1 evaluator.

:func:`repro.eval.ptime.run_fixpoint_query` already avoids the
exponential redex towers by materializing each stage, but it still runs
every stage through NBE: one normalization per RA operator per stage,
plus a ``ListToFunc'``/``FuncToList'`` reencoding sweep over ``D^k``.
For a certified fixpoint query none of that lambda machinery is needed:
the step is an :class:`~repro.relalg.ast.RAExpr`, so each stage can be
evaluated directly on Python sets via :func:`repro.relalg.engine
.evaluate_ra` and compared by set equality.

Soundness relative to the reduction semantics: the NBE evaluator
reencodes every stage through ``FuncToList'``, which enumerates ``D^k``
and keeps exactly the accepted tuples — i.e. the reencoding is the
*identity on tuple sets* (stage outputs only ever contain constants of
``D``).  Convergence there compares consecutive reencoded stages, which
is set equality; so the set-based loop converges at the same stage with
the same relation as a set, and under the inflationary wrapper the
chain is monotone, letting the loop stop as soon as a stage adds no new
tuples (the delta is tracked per stage — the hook where a semi-naive
step rewrite slots in).  The final relation is put in a deterministic
canonical order by one ``D^k`` sweep in active-domain order, mirroring
the enumeration the lambda-level ``FuncToList'`` performs.
"""

from __future__ import annotations

from itertools import product as cartesian
from typing import List, Optional, Set, Tuple

from repro.db.decode import DecodedRelation
from repro.db.encode import encode_relation
from repro.db.relations import Database, Relation
from repro.errors import SchemaError
from repro.eval.ptime import FixpointRun
from repro.queries.fixpoint import FIX_NAME, FixpointQuery
from repro.relalg.ast import ADOM_NAME, PRECEDES_PREFIX, Base, RAExpr
from repro.relalg.engine import evaluate_ra


def step_read_set(query: FixpointQuery) -> Tuple[str, ...]:
    """Input relations the step reads (``adom()`` sweeps all of them)."""
    names: Set[str] = set()
    sweeps_all = False

    def walk(expr: RAExpr) -> None:
        nonlocal sweeps_all
        if isinstance(expr, Base):
            if expr.name == ADOM_NAME:
                sweeps_all = True
            elif expr.name.startswith(PRECEDES_PREFIX):
                names.add(expr.name[len(PRECEDES_PREFIX):])
            elif expr.name != FIX_NAME:
                names.add(expr.name)
            return
        for attr in ("left", "right", "inner"):
            child = getattr(expr, attr, None)
            if isinstance(child, RAExpr):
                walk(child)

    walk(query.effective_step())
    if sweeps_all:
        return query.input_names()
    return tuple(n for n in query.input_names() if n in names)


def run_fixpoint_query_compiled(
    query: FixpointQuery,
    database: Database,
    *,
    stop_on_convergence: bool = True,
    read_trace: Optional[Set[str]] = None,
) -> FixpointRun:
    """Iterate the fixpoint step set-at-a-time.

    Mirrors :func:`repro.eval.ptime.run_fixpoint_query`'s contract —
    same TLI024 schema validation, same ``|D|^k`` crank cap, same
    ``stages`` / ``stage_sizes`` / ``converged_at`` accounting — but the
    reported step count is the executor's *operation* count (tuples
    scanned and produced per stage), which the Theorem 5.2 certificates
    bound a fortiori.
    """
    schema = query.schema()
    names = list(query.input_names())
    k = query.output_arity

    problems = []
    for name in names:
        if name not in database:
            problems.append(f"input relation {name!r} is missing")
        elif database[name].arity != schema[name]:
            problems.append(
                f"input {name!r} expects arity {schema[name]}, database "
                f"has arity {database[name].arity}"
            )
    if problems:
        raise SchemaError(
            "[TLI024] fixpoint query does not fit the database schema: "
            + "; ".join(problems)
        )

    inputs_db = Database(tuple((name, database[name]) for name in names))
    if read_trace is not None:
        read_trace.update(step_read_set(query))

    domain = inputs_db.active_domain()
    crank_length = len(domain) ** k
    step_expr = query.effective_step()

    ops = 0
    current: Set[Tuple[str, ...]] = set()
    stage_relation = Relation.empty(k)
    stage_sizes: List[int] = [0]
    converged_at: Optional[int] = None
    stages_run = 0
    for index in range(crank_length):
        step_db = inputs_db.with_relation(FIX_NAME, stage_relation)
        next_relation = evaluate_ra(step_expr, step_db)
        next_set = next_relation.as_set()
        ops += len(next_relation) + len(stage_relation)
        stages_run += 1
        stage_sizes.append(len(next_set))
        # ``next_set - current`` is the semi-naive frontier a rewritten
        # step would join against next round; under the inflationary
        # wrapper it is empty exactly at convergence.
        converged = next_set == current
        current = next_set
        stage_relation = next_relation
        if converged:
            converged_at = index + 1
            if stop_on_convergence:
                break

    # Canonical order: the D^k enumeration FuncToList' performs.
    canonical = tuple(
        row for row in cartesian(domain, repeat=k) if row in current
    )
    ops += crank_length
    stage_relation = Relation(k, canonical)

    decoded = DecodedRelation(
        relation=stage_relation,
        raw_tuples=stage_relation.tuples,
        had_duplicates=False,
        eta_variant=False,
    )
    return FixpointRun(
        relation=stage_relation,
        decoded=decoded,
        normal_form=encode_relation(stage_relation),
        stages=stages_run,
        stage_sizes=stage_sizes,
        converged_at=converged_at,
        nbe_steps=ops,
    )
