"""The compilation IR: an extended relational-algebra of list folds.

The lowering pass (:mod:`repro.compile.lower`) maps a normalized query
body — a Church-list program over the input relations — onto this small
first-order language.  Logical nodes mirror the normal-form grammar of
the Section 4 operator library one-to-one:

* :class:`Nil` / :class:`Emit` — the output list constructors ``n`` and
  ``c e1..ek rest``;
* :class:`Fold` — an input relation applied to a loop ``λȳ.λT. body``
  and a start list (the paper's structural recursion over list-coded
  relations);
* :class:`Branch` — a residual ``Eq a b then else`` test;
* :class:`AccRef` — a reference to an enclosing fold's accumulator.

The physical planner (:mod:`repro.compile.planner`) replaces recognized
logical shapes with hash-based operators: :class:`HashProbe` (semi-join /
anti-join membership probes backed by a hashed key index) and
:class:`HashJoin` (an equi-join that builds a hash index on the inner
relation instead of re-scanning it per outer tuple).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

# ---------------------------------------------------------------------------
# Scalar expressions (tuple components)
# ---------------------------------------------------------------------------


class Expr:
    """A scalar: a bound column variable or a constant."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Col(Expr):
    """A reference to a fold parameter (a column of the current row)."""

    name: str


@dataclass(frozen=True, slots=True)
class Lit(Expr):
    """A constant from the plan (a ``Const`` in the lambda term)."""

    value: str


# ---------------------------------------------------------------------------
# Logical nodes
# ---------------------------------------------------------------------------


class Node:
    """Base class of IR nodes; every node evaluates to an output list."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Nil(Node):
    """The empty output list (``n``)."""


@dataclass(frozen=True, slots=True)
class Emit(Node):
    """Cons one output tuple onto ``tail`` (``c e1 .. ek tail``)."""

    exprs: Tuple[Expr, ...]
    tail: Node


@dataclass(frozen=True, slots=True)
class AccRef(Node):
    """Reference to an enclosing fold's accumulator."""

    name: str


@dataclass(frozen=True, slots=True)
class Branch(Node):
    """Residual equality test: ``Eq lhs rhs then else``."""

    lhs: Expr
    rhs: Expr
    then: Node
    else_: Node


@dataclass(frozen=True, slots=True)
class Fold(Node):
    """Structural recursion over an input relation:

    ``source (λ params.. acc. body) tail`` — a right fold whose start
    value is ``tail`` and whose step binds one row plus the accumulator.
    """

    source: str
    params: Tuple[str, ...]
    acc: str
    body: Node
    tail: Node


# ---------------------------------------------------------------------------
# Physical nodes (planner output)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class HashProbe(Node):
    """Existence probe against a hashed key index of ``source``.

    Replaces a fold whose body is an ``Eq``-branch chain where every
    miss leaves the accumulator unchanged and the hit value is
    independent of the loop row: semantically *"if some row of source
    matches, yield ``then``, else ``else_``"* — a semi-join (or, with
    the branches swapped by the caller, an anti-join) executed as one
    O(1) set probe per evaluation instead of a relation scan.

    ``keys`` pairs an index column of ``source`` with the outer-scope
    expression it must equal; ``filters`` restrict which source rows
    enter the index (column = constant, or column = column within the
    row); ``guards`` are row-independent equality tests hoisted out of
    the chain.
    """

    source: str
    keys: Tuple[Tuple[int, Expr], ...]
    filters: Tuple[Tuple[int, Expr], ...]
    same_filters: Tuple[Tuple[int, int], ...]
    guards: Tuple[Tuple[Expr, Expr], ...]
    then: Node
    else_: Node


@dataclass(frozen=True, slots=True)
class HashJoin(Node):
    """Equi-join of an outer scan against a hash-indexed inner relation.

    Replaces ``Fold(outer, .., Fold(inner, .., Eq-chain -> Emit, acc),
    tail)``: the inner relation is indexed once on its join-key columns
    and each outer row emits one tuple per matching inner row, in the
    original fold order.

    ``outer_params`` / ``inner_params`` name the bound columns so the
    emitted ``exprs`` (and residual ``outer_tests`` / ``guards``) can be
    evaluated against the joined row pair.
    """

    outer: str
    outer_params: Tuple[str, ...]
    inner: str
    inner_params: Tuple[str, ...]
    keys: Tuple[Tuple[int, Expr], ...]
    filters: Tuple[Tuple[int, Expr], ...]
    same_filters: Tuple[Tuple[int, int], ...]
    outer_tests: Tuple[Tuple[Expr, Expr], ...]
    guards: Tuple[Tuple[Expr, Expr], ...]
    exprs: Tuple[Expr, ...]
    tail: Node


# ---------------------------------------------------------------------------
# Rendering (EXPLAIN / diagnostics)
# ---------------------------------------------------------------------------


def _expr_str(expr: Expr) -> str:
    if isinstance(expr, Col):
        return expr.name
    if isinstance(expr, Lit):
        return repr(expr.value)
    raise TypeError(f"not an expr: {expr!r}")


def describe(node: Node) -> Dict[str, object]:
    """Render a node as a JSON-friendly operator tree (for EXPLAIN)."""
    if isinstance(node, Nil):
        return {"op": "nil"}
    if isinstance(node, AccRef):
        return {"op": "acc", "name": node.name}
    if isinstance(node, Emit):
        return {
            "op": "emit",
            "row": [_expr_str(e) for e in node.exprs],
            "tail": describe(node.tail),
        }
    if isinstance(node, Branch):
        return {
            "op": "branch",
            "test": f"{_expr_str(node.lhs)} = {_expr_str(node.rhs)}",
            "then": describe(node.then),
            "else": describe(node.else_),
        }
    if isinstance(node, Fold):
        return {
            "op": "scan",
            "source": node.source,
            "columns": list(node.params),
            "body": describe(node.body),
            "tail": describe(node.tail),
        }
    if isinstance(node, HashProbe):
        return {
            "op": "hash-probe",
            "source": node.source,
            "keys": [f"#{i}={_expr_str(e)}" for i, e in node.keys],
            "filters": [f"#{i}={_expr_str(e)}" for i, e in node.filters]
            + [f"#{i}=#{j}" for i, j in node.same_filters],
            "guards": [
                f"{_expr_str(a)}={_expr_str(b)}" for a, b in node.guards
            ],
            "then": describe(node.then),
            "else": describe(node.else_),
        }
    if isinstance(node, HashJoin):
        return {
            "op": "hash-join",
            "outer": node.outer,
            "inner": node.inner,
            "keys": [f"#{i}={_expr_str(e)}" for i, e in node.keys],
            "filters": [f"#{i}={_expr_str(e)}" for i, e in node.filters]
            + [f"#{i}=#{j}" for i, j in node.same_filters],
            "row": [_expr_str(e) for e in node.exprs],
            "tail": describe(node.tail),
        }
    raise TypeError(f"not an IR node: {node!r}")


def summarize(node: Node) -> str:
    """One-line operator summary, e.g. ``scan(R)>hash-probe(S)``."""
    parts: List[str] = []

    def walk(n: Node) -> None:
        if isinstance(n, Emit):
            walk(n.tail)
        elif isinstance(n, Branch):
            walk(n.then)
            walk(n.else_)
        elif isinstance(n, Fold):
            parts.append(f"scan({n.source})")
            walk(n.body)
            walk(n.tail)
        elif isinstance(n, HashProbe):
            parts.append(f"hash-probe({n.source})")
            walk(n.then)
            walk(n.else_)
        elif isinstance(n, HashJoin):
            parts.append(f"hash-join({n.outer}*{n.inner})")
            walk(n.tail)

    walk(node)
    return ">".join(parts) if parts else "const"
