"""Physical planning: rewrite logical folds into hash-based operators.

Two rewrites, applied bottom-up, turn the lowering's nested-loop folds
into the plans a database engine would pick:

* **Hash probe** (semi-join / anti-join): a fold whose body is an
  ``Eq``-branch chain where every miss returns the fold's own
  accumulator and the hit value mentions neither the loop row nor the
  accumulator computes *"does any row of source match?"*.  The chain's
  tests split into index keys (row column vs. outer value), build-time
  filters (row column vs. constant, row column vs. row column) and
  hoisted guards (row-independent).  One hashed key-set probe replaces
  the scan; this is exactly the ``Member`` normal form, and with the
  branches naturally swapped it covers ``Intersection`` and
  ``Difference`` loop bodies.

* **Hash join**: a fold over ``outer`` whose body folds ``inner`` down
  to an ``Eq``-guarded single emission and threads the outer accumulator
  straight through.  The inner relation is hash-indexed on its join-key
  columns once; each outer row then emits one tuple per bucket match in
  the original nested-loop order.  This covers ``Product`` (empty key)
  and every equi-join the FO compiler produces as select-over-product.

The choice of build side follows the read-set/cardinality facts the
certifier already computed: the *inner* fold is always the build side —
by construction of the normal forms the inner relation is the one
re-scanned per outer tuple, so indexing it converts O(|R|·|S|) scans
into O(|R| + |S|) hash work.  Cardinality intervals from the abstract
interpreter are attached to the plan for EXPLAIN, not used to reorder:
the fold nesting fixes a join order that is already certified by the
plan's cost polynomial.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

from repro.compile.ir import (
    AccRef,
    Branch,
    Col,
    Emit,
    Expr,
    Fold,
    HashJoin,
    HashProbe,
    Lit,
    Nil,
    Node,
)


def plan(node: Node) -> Node:
    """Rewrite a lowered IR tree into its physical form."""
    node = _map_children(node)
    probe = _try_hash_probe(node)
    if probe is not None:
        return probe
    join = _try_hash_join(node)
    if join is not None:
        return join
    return node


def _map_children(node: Node) -> Node:
    if isinstance(node, Emit):
        return Emit(node.exprs, plan(node.tail))
    if isinstance(node, Branch):
        return Branch(node.lhs, node.rhs, plan(node.then), plan(node.else_))
    if isinstance(node, Fold):
        return Fold(
            node.source, node.params, node.acc, plan(node.body), plan(node.tail)
        )
    return node


def _free_names(node: Node) -> FrozenSet[str]:
    """Free column/accumulator names of ``node`` (respecting shadowing)."""
    if isinstance(node, Nil):
        return frozenset()
    if isinstance(node, AccRef):
        return frozenset([node.name])
    if isinstance(node, Emit):
        return _expr_names(node.exprs) | _free_names(node.tail)
    if isinstance(node, Branch):
        return (
            _expr_names((node.lhs, node.rhs))
            | _free_names(node.then)
            | _free_names(node.else_)
        )
    if isinstance(node, Fold):
        bound = frozenset(node.params) | frozenset([node.acc])
        return (_free_names(node.body) - bound) | _free_names(node.tail)
    if isinstance(node, HashProbe):
        free = _free_names(node.then) | _free_names(node.else_)
        free |= _expr_names(e for _, e in node.keys)
        free |= _expr_names(e for _, e in node.filters)
        for a, b in node.guards:
            free |= _expr_names((a, b))
        return free
    if isinstance(node, HashJoin):
        bound = frozenset(node.outer_params) | frozenset(node.inner_params)
        free = _expr_names(node.exprs) - bound
        free |= _expr_names(e for _, e in node.keys) - bound
        free |= _expr_names(e for _, e in node.filters) - bound
        for a, b in node.outer_tests + node.guards:
            free |= _expr_names((a, b)) - bound
        return free | _free_names(node.tail)
    raise TypeError(f"not an IR node: {node!r}")


def _expr_names(exprs) -> FrozenSet[str]:
    return frozenset(e.name for e in exprs if isinstance(e, Col))


def _split_chain(
    body: Node, acc: str
) -> Optional[Tuple[List[Tuple[Expr, Expr]], Node]]:
    """Decompose ``body`` as an Eq-chain whose every miss is ``acc``."""
    tests: List[Tuple[Expr, Expr]] = []
    node = body
    while isinstance(node, Branch):
        if node.else_ != AccRef(acc):
            return None
        tests.append((node.lhs, node.rhs))
        node = node.then
    return tests, node


def _classify(
    tests: List[Tuple[Expr, Expr]], params: Tuple[str, ...]
) -> Optional[
    Tuple[
        List[Tuple[int, Expr]],
        List[Tuple[int, Expr]],
        List[Tuple[int, int]],
        List[Tuple[Expr, Expr]],
    ]
]:
    """Split chain tests into keys / filters / same-row filters / guards.

    ``params`` are the loop row's column names; anything else (outer
    columns, constants) is loop-invariant.
    """
    index = {name: i for i, name in enumerate(params)}
    keys: List[Tuple[int, Expr]] = []
    filters: List[Tuple[int, Expr]] = []
    same: List[Tuple[int, int]] = []
    guards: List[Tuple[Expr, Expr]] = []
    for lhs, rhs in tests:
        lhs_col = index.get(lhs.name) if isinstance(lhs, Col) else None
        rhs_col = index.get(rhs.name) if isinstance(rhs, Col) else None
        if lhs_col is not None and rhs_col is not None:
            same.append((lhs_col, rhs_col))
        elif lhs_col is not None:
            if isinstance(rhs, Lit):
                filters.append((lhs_col, rhs))
            else:
                keys.append((lhs_col, rhs))
        elif rhs_col is not None:
            if isinstance(lhs, Lit):
                filters.append((rhs_col, lhs))
            else:
                keys.append((rhs_col, lhs))
        else:
            guards.append((lhs, rhs))
    return keys, filters, same, guards


def _try_hash_probe(node: Node) -> Optional[Node]:
    if not isinstance(node, Fold):
        return None
    split = _split_chain(node.body, node.acc)
    if split is None:
        return None
    tests, hit = split
    if not tests:
        return None
    # The hit value must not depend on the probed row or the accumulator
    # — then the whole fold is "exists a matching row?".
    if _free_names(hit) & (frozenset(node.params) | {node.acc}):
        return None
    classified = _classify(tests, node.params)
    if classified is None:
        return None
    keys, filters, same, guards = classified
    return HashProbe(
        source=node.source,
        keys=tuple(keys),
        filters=tuple(filters),
        same_filters=tuple(same),
        guards=tuple(guards),
        then=hit,
        else_=node.tail,
    )


def _try_hash_join(node: Node) -> Optional[Node]:
    if not isinstance(node, Fold) or not isinstance(node.body, Fold):
        return None
    outer, inner = node, node.body
    if inner.tail != AccRef(outer.acc):
        return None
    split = _split_chain(inner.body, inner.acc)
    if split is None:
        return None
    tests, hit = split
    if not isinstance(hit, Emit) or hit.tail != AccRef(inner.acc):
        return None
    # Every emitted component must be a column of the joined row pair or
    # a constant from an enclosing scope — no accumulator references.
    if {outer.acc, inner.acc} & _expr_names(hit.exprs):
        return None
    inner_set = frozenset(inner.params)
    inner_tests = [
        t
        for t in tests
        if _expr_names(t) & inner_set
    ]
    outer_tests = [
        t
        for t in tests
        if not (_expr_names(t) & inner_set)
    ]
    classified = _classify(inner_tests, inner.params)
    if classified is None:
        return None
    keys, filters, same, _ = classified
    # Key expressions must be evaluable before the inner loop runs.
    for _, expr in keys:
        if isinstance(expr, Col) and expr.name in inner_set:
            return None
    outer_set = frozenset(outer.params)
    guards = [
        t for t in outer_tests if not (_expr_names(t) & outer_set)
    ]
    row_tests = [t for t in outer_tests if _expr_names(t) & outer_set]
    return HashJoin(
        outer=outer.source,
        outer_params=outer.params,
        inner=inner.source,
        inner_params=inner.params,
        keys=tuple(keys),
        filters=tuple(filters),
        same_filters=tuple(same),
        outer_tests=tuple(row_tests),
        guards=tuple(guards),
        exprs=hit.exprs,
        tail=outer.tail,
    )
