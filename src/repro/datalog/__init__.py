"""Datalog with negation: the PTIME-queries baseline (Definition 3.6).

The paper appeals to the Immerman–Vardi connection — "over ordered
databases (in particular list-represented databases), fixpoint queries are
sufficient to express all PTIME queries [28, 46]" — so our concrete
representation of the PTIME-queries is fixpoint logic, with Datalog(-not)
as the friendly rule syntax.  The engine implements naive and semi-naive
bottom-up evaluation with stratified negation, plus an inflationary mode;
single-IDB programs compile to the TLI=1/MLI=1 fixpoint terms of
:mod:`repro.queries.fixpoint`.
"""

from repro.datalog.ast import Fact, Literal, Program, Rule, RuleTerm, RVar, RConst
from repro.datalog.engine import evaluate_program, EvaluationStats
from repro.datalog.stratify import stratify
from repro.datalog.compile import datalog_to_fixpoint

__all__ = [
    "EvaluationStats",
    "Fact",
    "Literal",
    "Program",
    "RConst",
    "RVar",
    "Rule",
    "RuleTerm",
    "datalog_to_fixpoint",
    "evaluate_program",
    "stratify",
]
