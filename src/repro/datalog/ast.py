"""Datalog(-not) abstract syntax.

A :class:`Program` is a set of rules over EDB (input) and IDB (derived)
predicates.  Rule bodies are conjunctions of positive and negative
literals; safety (every head/negative variable bound by a positive body
literal) is checked at construction time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.errors import SchemaError


class RuleTerm:
    """Base class of rule terms (variables and constants)."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class RVar(RuleTerm):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class RConst(RuleTerm):
    name: str

    def __str__(self) -> str:
        return f"'{self.name}'"


@dataclass(frozen=True, slots=True)
class Literal:
    """``predicate(terms)`` or ``not predicate(terms)``."""

    predicate: str
    terms: Tuple[RuleTerm, ...]
    positive: bool = True

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.terms)
        prefix = "" if self.positive else "not "
        return f"{prefix}{self.predicate}({inner})"

    def variables(self) -> FrozenSet[str]:
        return frozenset(
            t.name for t in self.terms if isinstance(t, RVar)
        )


@dataclass(frozen=True, slots=True)
class Fact:
    """A ground head with no body — EDB-style seed data for IDBs."""

    predicate: str
    values: Tuple[str, ...]


@dataclass(frozen=True)
class Rule:
    """``head :- body``."""

    head: Literal
    body: Tuple[Literal, ...]

    def __post_init__(self) -> None:
        if not self.head.positive:
            raise SchemaError("rule heads must be positive literals")
        bound: Set[str] = set()
        for literal in self.body:
            if literal.positive:
                bound |= literal.variables()
        unbound = self.head.variables() - bound
        if unbound:
            raise SchemaError(
                f"unsafe rule: head variables {sorted(unbound)} not bound "
                f"by a positive body literal"
            )
        for literal in self.body:
            if not literal.positive:
                floating = literal.variables() - bound
                if floating:
                    raise SchemaError(
                        f"unsafe rule: negated variables "
                        f"{sorted(floating)} not bound positively"
                    )

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        body = ", ".join(str(b) for b in self.body)
        return f"{self.head} :- {body}."


@dataclass(frozen=True)
class Program:
    """A Datalog(-not) program.

    ``edb_schema`` maps input predicate names to arities; IDB predicates
    are those appearing in some rule head, with arities inferred and
    consistency-checked.
    """

    rules: Tuple[Rule, ...]
    edb_schema: Tuple[Tuple[str, int], ...]

    @staticmethod
    def of(rules: Sequence[Rule], edb_schema: Dict[str, int]) -> "Program":
        program = Program(tuple(rules), tuple(edb_schema.items()))
        program.idb_schema()  # arity consistency check
        return program

    def edb(self) -> Dict[str, int]:
        return dict(self.edb_schema)

    def idb_schema(self) -> Dict[str, int]:
        edb = self.edb()
        idb: Dict[str, int] = {}
        for rule in self.rules:
            name = rule.head.predicate
            arity = len(rule.head.terms)
            if name in edb:
                raise SchemaError(
                    f"rule head {name!r} is an EDB predicate"
                )
            if idb.setdefault(name, arity) != arity:
                raise SchemaError(
                    f"predicate {name!r} used with arities "
                    f"{idb[name]} and {arity}"
                )
        for rule in self.rules:
            for literal in rule.body:
                name = literal.predicate
                arity = len(literal.terms)
                declared = edb.get(name, idb.get(name))
                if declared is None:
                    raise SchemaError(
                        f"unknown predicate {name!r} in rule body"
                    )
                if declared != arity:
                    raise SchemaError(
                        f"predicate {name!r} used with arities "
                        f"{declared} and {arity}"
                    )
        return idb

    def idb_predicates(self) -> List[str]:
        seen: Dict[str, None] = {}
        for rule in self.rules:
            seen.setdefault(rule.head.predicate, None)
        return list(seen)

    def rules_for(self, predicate: str) -> List[Rule]:
        return [r for r in self.rules if r.head.predicate == predicate]

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)
