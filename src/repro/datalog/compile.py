"""Compiling single-IDB Datalog(-not) programs to fixpoint queries.

This is the bridge from rule syntax to the Theorem 4.2 machinery: each rule
becomes a relational-algebra expression over the EDB relations and the
fixpoint variable, rules for the IDB are unioned into the step, and the
step runs as an inflationary fixpoint — compiled to a TLI=1/MLI=1 term by
:func:`repro.queries.fixpoint.build_fixpoint_query` or evaluated in
polynomial time by :func:`repro.eval.ptime.run_fixpoint_query`.

Scope: one IDB predicate (transitive closure, reachability,
same-generation, ... — the paper's kind of examples).  Negative body
literals may mention EDB predicates or the IDB itself (inflationary
reading).  Constants appearing in rule *heads* must belong to the active
domain: relational algebra cannot invent constants, it can only select
them from ``adom`` (multi-IDB programs can be run on the baseline engine
of :mod:`repro.datalog.engine`).
"""

from __future__ import annotations

from typing import Dict, List

from repro.datalog.ast import Literal, Program, RConst, RVar, Rule
from repro.errors import QueryTermError, SchemaError
from repro.queries.fixpoint import FixpointQuery, fix
from repro.relalg.ast import (
    Base,
    ColumnEqualsColumn,
    ColumnEqualsConst,
    CondAnd,
    CondTrue,
    Condition,
    Difference,
    Product,
    Project,
    RAExpr,
    Select,
    Union,
    adom,
)


def datalog_to_fixpoint(program: Program) -> FixpointQuery:
    """Translate a single-IDB program to a :class:`FixpointQuery`."""
    idb = program.idb_predicates()
    if len(idb) != 1:
        raise QueryTermError(
            f"fixpoint compilation supports exactly one IDB predicate, "
            f"got {idb}"
        )
    predicate = idb[0]
    arity = program.idb_schema()[predicate]
    pieces = [
        _compile_rule(rule, predicate, program.edb())
        for rule in program.rules
    ]
    step: RAExpr = pieces[0]
    for piece in pieces[1:]:
        step = Union(step, piece)
    return FixpointQuery.of(
        step, arity, program.edb(), inflationary=True
    )


def multi_idb_program(
    program: Program, tags: "Dict[str, str]", pad: str
) -> Program:
    """Reduce a multi-IDB program to an equivalent single-IDB one by the
    classical *tagging* construction.

    Every IDB predicate ``P_i`` of arity ``a_i`` is folded into one
    predicate ``__tagged__`` of arity ``1 + max(a_i)``: the first column
    holds the tag constant of ``P_i``, columns 2..a_i+1 hold the original
    tuple, and the rest are padded with ``pad``.  The tags and the pad must
    be **constants present in the active domain of every database the
    query will run on** (relational algebra can only select constants from
    ``adom``) — :func:`extract_idb_relations` recovers the per-predicate
    relations from the tagged fixpoint.

    The reduction preserves the *inflationary* semantics exactly: one round
    of the tagged program performs every original rule once against the
    current (tagged) stage.
    """
    idb_schema = program.idb_schema()
    missing = set(idb_schema) - set(tags)
    if missing:
        raise SchemaError(f"no tag constants for IDBs {sorted(missing)}")
    if len(set(tags[name] for name in idb_schema)) != len(idb_schema):
        raise SchemaError("tag constants must be distinct")
    width = max(idb_schema.values(), default=0)

    def fold(literal: Literal) -> Literal:
        if literal.predicate not in idb_schema:
            return literal
        padding = (RConst(pad),) * (width - len(literal.terms))
        return Literal(
            "__tagged__",
            (RConst(tags[literal.predicate]),) + literal.terms + padding,
            literal.positive,
        )

    rules = [
        Rule(fold(rule.head), tuple(fold(lit) for lit in rule.body))
        for rule in program.rules
    ]
    return Program.of(rules, program.edb())


def extract_idb_relations(
    tagged, idb_schema: "Dict[str, int]", tags: "Dict[str, str]"
):
    """Split the tagged fixpoint relation back into the original IDBs."""
    from repro.db.relations import Database, Relation

    relations = {}
    for name, arity in idb_schema.items():
        rows = [
            row[1 : 1 + arity]
            for row in tagged.tuples
            if row[0] == tags[name]
        ]
        relations[name] = Relation.deduplicated(arity, rows)
    return Database.of(relations)


def run_multi_idb_via_fixpoint(program: Program, database, tags=None, pad=None):
    """Evaluate a multi-IDB program through the TLI=1 fixpoint pipeline.

    ``tags``/``pad`` default to distinct active-domain constants (note:
    auto-picking makes the compiled query depend on the database; pass
    fixed constants for a data-independent query term).  Raises
    :class:`SchemaError` when the domain is too small to host the tags.
    """
    from repro.eval.ptime import run_fixpoint_query

    idb_schema = program.idb_schema()
    domain = database.active_domain()
    if tags is None or pad is None:
        needed = len(idb_schema) + 1
        if len(domain) < needed:
            raise SchemaError(
                f"active domain has {len(domain)} constants; "
                f"{needed} needed for tags and padding"
            )
        picked = domain[:needed]
        tags = dict(zip(sorted(idb_schema), picked))
        pad = picked[-1]
    else:
        absent = (set(tags.values()) | {pad}) - set(domain)
        if absent:
            raise SchemaError(
                f"tag/pad constants {sorted(absent)} not in the active "
                f"domain (relational algebra cannot invent constants)"
            )
    tagged_program = multi_idb_program(program, tags, pad)
    run = run_fixpoint_query(
        datalog_to_fixpoint(tagged_program), database
    )
    return extract_idb_relations(run.relation, idb_schema, tags)


def _base_for(predicate: str, idb: str) -> RAExpr:
    return fix() if predicate == idb else Base(predicate)


def _compile_rule(
    rule: Rule, idb: str, edb: Dict[str, int]
) -> RAExpr:
    positives = [lit for lit in rule.body if lit.positive]
    negatives = [lit for lit in rule.body if not lit.positive]

    # 1. Join the positive literals into one wide expression; track the
    #    column of each variable's first occurrence.
    var_column: Dict[str, int] = {}
    expr: RAExpr = None  # type: ignore[assignment]
    width = 0
    condition: Condition = CondTrue()
    for literal in positives:
        base = _base_for(literal.predicate, idb)
        expr = base if expr is None else Product(expr, base)
        for offset, term in enumerate(literal.terms):
            column = width + offset
            if isinstance(term, RConst):
                condition = _conjoin(
                    condition, ColumnEqualsConst(column, term.name)
                )
            else:
                seen = var_column.get(term.name)
                if seen is None:
                    var_column[term.name] = column
                else:
                    condition = _conjoin(
                        condition, ColumnEqualsColumn(seen, column)
                    )
        width += len(literal.terms)
    if expr is None:
        # Bodyless rule: the head must be ground; realize each constant by
        # selecting it from the active domain.
        expr = _ground_head(rule)
        width = len(rule.head.terms)
        return expr
    if not isinstance(condition, CondTrue):
        expr = Select(expr, condition)

    # 2. Negative literals: anti-join against each.
    for literal in negatives:
        expr = _anti_join(expr, width, var_column, literal, idb)

    # 3. Head projection; head constants are drawn from adom.
    columns: List[int] = []
    for term in rule.head.terms:
        if isinstance(term, RVar):
            columns.append(var_column[term.name])
        else:
            expr = Product(
                expr,
                Select(adom(), ColumnEqualsConst(0, term.name)),
            )
            columns.append(width)
            width += 1
    return Project(expr, tuple(columns))


def _ground_head(rule: Rule) -> RAExpr:
    expr: RAExpr = None  # type: ignore[assignment]
    for term in rule.head.terms:
        if not isinstance(term, RConst):
            raise SchemaError(
                f"bodyless rule {rule} must have a ground head"
            )
        piece = Select(adom(), ColumnEqualsConst(0, term.name))
        expr = piece if expr is None else Product(expr, piece)
    if expr is None:
        # Zero-ary ground head: the one-empty-tuple relation.
        expr = Project(adom(), ())
    return expr


def _anti_join(
    expr: RAExpr,
    width: int,
    var_column: Dict[str, int],
    literal: Literal,
    idb: str,
) -> RAExpr:
    """``expr - (expr semijoin literal)`` on the literal's bindings."""
    base = _base_for(literal.predicate, idb)
    condition: Condition = CondTrue()
    for offset, term in enumerate(literal.terms):
        column = width + offset
        if isinstance(term, RConst):
            condition = _conjoin(
                condition, ColumnEqualsConst(column, term.name)
            )
        else:
            bound = var_column.get(term.name)
            if bound is None:
                raise SchemaError(
                    f"negated variable {term.name} not bound (unsafe rule)"
                )
            condition = _conjoin(
                condition, ColumnEqualsColumn(bound, column)
            )
    matched = Project(
        Select(Product(expr, base), condition),
        tuple(range(width)),
    )
    return Difference(expr, matched)


def _conjoin(left: Condition, right: Condition) -> Condition:
    if isinstance(left, CondTrue):
        return right
    return CondAnd(left, right)
