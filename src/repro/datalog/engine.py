"""Bottom-up Datalog(-not) evaluation: naive, semi-naive, inflationary.

The engine is the Definition 3.6 baseline for the Theorem 4.2/5.2
experiments: fixpoint queries compiled to TLI=1 terms must compute the same
relations this engine computes.

Semantics:

* ``semantics="stratified"`` (default) — evaluate strata in order; within a
  stratum, negated IDB literals refer to fully computed lower strata.
* ``semantics="inflationary"`` — a single simultaneous induction where
  negated IDB literals read the *current* stage; stages only grow, so the
  iteration converges within polynomially many rounds.  This is the
  fixpoint flavor the TLI=1 compilation realizes.

Within a stratum the engine runs semi-naive iteration (delta rules) by
default; ``strategy="naive"`` recomputes every rule on the full relations
each round (used by the ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.datalog.ast import Literal, Program, RConst, Rule
from repro.datalog.stratify import stratify
from repro.db.relations import Database, Relation
from repro.errors import EvaluationError

Row = Tuple[str, ...]


@dataclass
class EvaluationStats:
    """Instrumentation for the benchmarks."""

    rounds: int = 0
    rule_firings: int = 0
    derived_tuples: int = 0


def evaluate_program(
    program: Program,
    database: Database,
    *,
    semantics: str = "stratified",
    strategy: str = "seminaive",
    stats: Optional[EvaluationStats] = None,
) -> Database:
    """Evaluate ``program`` over ``database``; returns a database holding
    the IDB relations (tuples in first-derivation order)."""
    if semantics not in ("stratified", "inflationary"):
        raise EvaluationError(f"unknown semantics {semantics!r}")
    if strategy not in ("seminaive", "naive"):
        raise EvaluationError(f"unknown strategy {strategy!r}")
    edb = program.edb()
    for name, arity in edb.items():
        if name not in database:
            raise EvaluationError(f"database lacks EDB relation {name!r}")
        if database[name].arity != arity:
            raise EvaluationError(
                f"EDB relation {name!r} has arity {database[name].arity}, "
                f"declared {arity}"
            )
    stats = stats if stats is not None else EvaluationStats()

    store: Dict[str, List[Row]] = {
        name: list(database[name].tuples) for name in edb
    }
    index: Dict[str, Set[Row]] = {
        name: set(rows) for name, rows in store.items()
    }
    idb_schema = program.idb_schema()
    for name in idb_schema:
        store[name] = []
        index[name] = set()

    if semantics == "stratified":
        for layer in stratify(program):
            rules = [
                rule
                for rule in program.rules
                if rule.head.predicate in layer
            ]
            _saturate(rules, store, index, strategy, stats, set(layer))
    else:
        _inflationary(list(program.rules), store, index, stats)

    return Database(
        tuple(
            (name, Relation.from_tuples(idb_schema[name], store[name]))
            for name in idb_schema
        )
    )


def _saturate(
    rules: Sequence[Rule],
    store: Dict[str, List[Row]],
    index: Dict[str, Set[Row]],
    strategy: str,
    stats: EvaluationStats,
    active: Set[str],
) -> None:
    """Run the rules to fixpoint over the active (currently growing)
    predicates."""
    # Initial round: all rules on a snapshot of the full relations (so a
    # recursive rule does not observe tuples added mid-iteration and the
    # round accounting stays deterministic).
    snapshot = {name: list(rows) for name, rows in store.items()}
    delta: Dict[str, Set[Row]] = {name: set() for name in active}
    for rule in rules:
        for row in _fire(rule, snapshot, index, None, None):
            stats.rule_firings += 1
            if row not in index[rule.head.predicate]:
                index[rule.head.predicate].add(row)
                store[rule.head.predicate].append(row)
                delta[rule.head.predicate].add(row)
                stats.derived_tuples += 1
    stats.rounds += 1

    while any(delta.values()):
        new_delta: Dict[str, Set[Row]] = {name: set() for name in active}
        for rule in rules:
            if strategy == "seminaive":
                candidates: Iterable[Row] = _fire_seminaive(
                    rule, store, index, delta, active
                )
            else:
                candidates = _fire(rule, store, index, None, None)
            for row in candidates:
                stats.rule_firings += 1
                if row not in index[rule.head.predicate]:
                    index[rule.head.predicate].add(row)
                    store[rule.head.predicate].append(row)
                    new_delta[rule.head.predicate].add(row)
                    stats.derived_tuples += 1
        delta = new_delta
        stats.rounds += 1


def _inflationary(
    rules: Sequence[Rule],
    store: Dict[str, List[Row]],
    index: Dict[str, Set[Row]],
    stats: EvaluationStats,
) -> None:
    """Inflationary fixpoint: every round evaluates all rule bodies against
    a *snapshot* of the current stage (negation included), then adds the
    derived heads.  Stages only grow, so the induction converges within
    |D|^max-arity rounds — the same argument that sizes the Crank."""
    while True:
        snapshot_store = {name: list(rows) for name, rows in store.items()}
        snapshot_index = {name: set(rows) for name, rows in index.items()}
        new_rows: List[Tuple[str, Row]] = []
        for rule in rules:
            for row in _fire(rule, snapshot_store, snapshot_index, None, None):
                stats.rule_firings += 1
                if row not in index[rule.head.predicate]:
                    index[rule.head.predicate].add(row)
                    store[rule.head.predicate].append(row)
                    new_rows.append((rule.head.predicate, row))
                    stats.derived_tuples += 1
        stats.rounds += 1
        if not new_rows:
            return


def _fire_seminaive(rule, store, index, delta, active):
    """Fire the rule once per positive body literal restricted to the
    previous round's delta of an active predicate (the standard semi-naive
    decomposition)."""
    seen: Set[Row] = set()
    for pivot, literal in enumerate(rule.body):
        if not literal.positive or literal.predicate not in active:
            continue
        if not delta.get(literal.predicate):
            continue
        for row in _fire(rule, store, index, pivot, delta):
            if row not in seen:
                seen.add(row)
                yield row


def _fire(
    rule: Rule,
    store: Dict[str, List[Row]],
    index: Dict[str, Set[Row]],
    pivot: Optional[int],
    delta: Optional[Dict[str, Set[Row]]],
):
    """All head instantiations derivable by the rule.

    With ``pivot`` set, the pivot literal ranges only over the delta of its
    predicate (semi-naive restriction).
    """
    bindings: Dict[str, str] = {}

    def match(literal: Literal, row: Row, trail: List[str]) -> bool:
        for term, value in zip(literal.terms, row):
            if isinstance(term, RConst):
                if term.name != value:
                    return False
            else:
                bound = bindings.get(term.name)
                if bound is None:
                    bindings[term.name] = value
                    trail.append(term.name)
                elif bound != value:
                    return False
        return True

    positives = [
        (i, lit) for i, lit in enumerate(rule.body) if lit.positive
    ]
    negatives = [lit for lit in rule.body if not lit.positive]

    def rows_for(position: int, literal: Literal):
        if pivot is not None and position == pivot:
            return delta[literal.predicate]
        return store[literal.predicate]

    def search(k: int):
        if k == len(positives):
            for literal in negatives:
                row = tuple(
                    term.name
                    if isinstance(term, RConst)
                    else bindings[term.name]
                    for term in literal.terms
                )
                if row in index[literal.predicate]:
                    return
            yield tuple(
                term.name
                if isinstance(term, RConst)
                else bindings[term.name]
                for term in rule.head.terms
            )
            return
        position, literal = positives[k]
        for row in rows_for(position, literal):
            trail: List[str] = []
            if match(literal, row, trail):
                yield from search(k + 1)
            for name in trail:
                del bindings[name]

    yield from search(0)
