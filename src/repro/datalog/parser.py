"""Text syntax for Datalog(-not) programs.

Grammar (one clause per statement, ``%`` comments):

    program  ::= (rule | fact)*
    rule     ::= atom ":-" literal ("," literal)* "."
    fact     ::= atom "."
    literal  ::= ["not"] atom
    atom     ::= name "(" term ("," term)* ")" | name "(" ")"
    term     ::= variable | constant

Identifiers starting with an uppercase letter are variables (Prolog
convention); everything else — lowercase identifiers, numbers, or single-
quoted strings — is a constant.  EDB predicates are the ones that never
occur in a head; their arities are inferred from use.

    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.datalog.ast import Literal, Program, RConst, RVar, Rule, RuleTerm
from repro.errors import ParseError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|%[^\n]*)
  | (?P<implies>:-)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<dot>\.)
  | (?P<quoted>'[^']*')
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*|\d+)
    """,
    re.VERBOSE,
)


def _tokenize(source: str) -> List[Tuple[str, str, int]]:
    tokens = []
    index = 0
    while index < len(source):
        match = _TOKEN_RE.match(source, index)
        if match is None:
            raise ParseError(
                f"unexpected character {source[index]!r}", index, source
            )
        kind = match.lastgroup
        if kind != "ws":
            tokens.append((kind, match.group(), index))
        index = match.end()
    tokens.append(("eof", "", len(source)))
    return tokens


class _Parser:
    def __init__(self, source: str):
        self.source = source
        self.tokens = _tokenize(source)
        self.pos = 0

    def peek(self):
        return self.tokens[self.pos]

    def expect(self, kind: str):
        token = self.peek()
        if token[0] != kind:
            raise ParseError(
                f"expected {kind}, found {token[0]} {token[1]!r}",
                token[2],
                self.source,
            )
        self.pos += 1
        return token

    def term(self) -> RuleTerm:
        token = self.peek()
        if token[0] == "quoted":
            self.pos += 1
            return RConst(token[1][1:-1])
        name = self.expect("name")[1]
        if name[0].isupper():
            return RVar(name)
        return RConst(name)

    def atom(self) -> Literal:
        name = self.expect("name")[1]
        self.expect("lparen")
        terms: List[RuleTerm] = []
        if self.peek()[0] != "rparen":
            terms.append(self.term())
            while self.peek()[0] == "comma":
                self.pos += 1
                terms.append(self.term())
        self.expect("rparen")
        return Literal(name, tuple(terms))

    def literal(self) -> Literal:
        token = self.peek()
        if token[0] == "name" and token[1] == "not":
            nxt = self.tokens[self.pos + 1]
            if nxt[0] == "name":  # "not p(...)": 'not' is the keyword
                self.pos += 1
                atom = self.atom()
                return Literal(atom.predicate, atom.terms, positive=False)
        atom = self.atom()
        return atom

    def clause(self) -> Rule:
        head = self.atom()
        body: List[Literal] = []
        if self.peek()[0] == "implies":
            self.pos += 1
            body.append(self.literal())
            while self.peek()[0] == "comma":
                self.pos += 1
                body.append(self.literal())
        self.expect("dot")
        return Rule(head, tuple(body))

    def program(self) -> List[Rule]:
        rules = []
        while self.peek()[0] != "eof":
            rules.append(self.clause())
        return rules


def parse_program(source: str, edb: Dict[str, int] = None) -> Program:
    """Parse a Datalog(-not) program.

    ``edb`` may declare the EDB schema explicitly; otherwise EDB predicates
    are those never occurring in a head, with arities inferred from their
    body occurrences.
    """
    rules = _Parser(source).program()
    if edb is None:
        heads = {rule.head.predicate for rule in rules}
        edb = {}
        for rule in rules:
            for literal in rule.body:
                if literal.predicate not in heads:
                    arity = len(literal.terms)
                    if edb.setdefault(literal.predicate, arity) != arity:
                        raise ParseError(
                            f"predicate {literal.predicate!r} used with "
                            f"inconsistent arities"
                        )
    return Program.of(rules, edb)
