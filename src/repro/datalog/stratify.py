"""Stratification of Datalog(-not) programs.

A program is stratifiable when its predicate dependency graph has no cycle
through a negative edge; strata are then computed by the usual longest
negative-path layering.  Stratified semantics is one standard reading of
"Datalog-not syntax under a variety of semantics" the paper cites [3]; the
engine also offers the inflationary reading (Section 4's fixpoint queries
are inflationary-friendly by construction).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.datalog.ast import Program
from repro.errors import StratificationError


def dependency_edges(program: Program) -> Set[Tuple[str, str, bool]]:
    """Edges ``(body_predicate, head_predicate, is_negative)`` restricted
    to IDB-to-IDB dependencies."""
    idb = set(program.idb_predicates())
    edges: Set[Tuple[str, str, bool]] = set()
    for rule in program.rules:
        for literal in rule.body:
            if literal.predicate in idb:
                edges.add(
                    (literal.predicate, rule.head.predicate, not literal.positive)
                )
    return edges


def stratify(program: Program) -> List[List[str]]:
    """Assign IDB predicates to strata.

    Returns the list of strata in evaluation order.  Raises
    :class:`StratificationError` when negation occurs in a recursive cycle.
    """
    predicates = program.idb_predicates()
    stratum: Dict[str, int] = {name: 0 for name in predicates}
    edges = dependency_edges(program)
    # Bellman-Ford style relaxation; more than |P| rounds means a negative
    # cycle (negation through recursion).
    for round_index in range(len(predicates) + 1):
        changed = False
        for source, target, negative in edges:
            required = stratum[source] + (1 if negative else 0)
            if stratum[target] < required:
                stratum[target] = required
                changed = True
        if not changed:
            break
    else:
        raise StratificationError(
            "program is not stratifiable (negation through recursion)"
        )
    if predicates and max(stratum.values(), default=0) >= len(predicates):
        raise StratificationError(
            "program is not stratifiable (negation through recursion)"
        )
    height = max(stratum.values(), default=0)
    layers: List[List[str]] = [[] for _ in range(height + 1)]
    for name in predicates:
        layers[stratum[name]].append(name)
    return [layer for layer in layers if layer]
