"""Databases as lambda terms (Section 3.1).

* :class:`Relation` / :class:`Database` — list-represented relations
  (Definition 3.4): tuple *lists*, not sets; the order is part of the value.
* :func:`encode_relation` — Definition 3.1: a relation becomes the list
  iterator ``λc. λn. c t̄1 (c t̄2 (... (c t̄m n)))``.
* :func:`decode_relation` — the inverse reading guaranteed by Lemma 3.2:
  any closed normal form of type ``o^k_d`` is an encoding *with duplicates*
  of some relation (including the Remark 3.3 eta-variant for singletons).
"""

from repro.db.relations import Database, Relation
from repro.db.encode import encode_database, encode_relation
from repro.db.decode import DecodedRelation, decode_relation
from repro.db.domain import active_domain, active_domain_relation
from repro.db.generators import (
    random_database,
    random_graph_relation,
    random_relation,
)

__all__ = [
    "Database",
    "DecodedRelation",
    "Relation",
    "active_domain",
    "active_domain_relation",
    "decode_relation",
    "encode_database",
    "encode_relation",
    "random_database",
    "random_graph_relation",
    "random_relation",
]
