"""Decoding normal forms back into relations (Lemma 3.2, Remark 3.3).

Lemma 3.2 analyzes the possible shapes of a closed normal form of type
``o^k_d``:

* ``λc. λn. n`` — the empty relation;
* ``λc. λn. c t̄1 (c t̄2 (... (c t̄m n)))`` — an encoding *with duplicates*
  (each tuple appears at least once, possibly more);
* ``λc. c t̄1`` — the eta-variant for a single tuple (Remark 3.3): since
  ``λc. c t̄`` and ``λc. λn. c t̄ n`` eta-convert to each other, both are
  accepted.

:func:`decode_relation` implements exactly this case analysis and raises
:class:`DecodeError` on anything else, which makes it a executable check of
the lemma: the test suite feeds it arbitrary normal forms of the right type
and arbitrary garbage of the wrong shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.db.relations import Relation, TupleValue
from repro.errors import DecodeError
from repro.lam.terms import Abs, Const, Term, Var, spine


@dataclass(frozen=True)
class DecodedRelation:
    """A decoded normal form.

    ``relation`` is duplicate-free in first-occurrence order; ``raw_tuples``
    is the literal tuple list including duplicates (the paper's "encoding
    with duplicates" view); ``had_duplicates`` flags the difference.
    """

    relation: Relation
    raw_tuples: Tuple[TupleValue, ...]
    had_duplicates: bool
    eta_variant: bool


def decode_relation(term: Term, arity: Optional[int] = None) -> DecodedRelation:
    """Read a relation from a normal-form encoding.

    ``arity`` may be supplied to check the expectation; otherwise it is
    inferred from the first tuple (an empty list decodes as arity ``0`` only
    when ``arity`` is omitted... it has no tuples, so the declared arity is
    taken, defaulting to 0).
    """
    if not isinstance(term, Abs):
        raise DecodeError(f"not an abstraction: {term}")
    cons_name = term.var
    eta_variant = False
    if isinstance(term.body, Abs):
        nil_name: Optional[str] = term.body.var
        if nil_name == cons_name:
            # λc. λc. ... — the inner binder shadows; the body can only be
            # a valid encoding if it never uses the outer c, i.e. is the
            # empty relation λc. λn. n with funny names.
            cons_name = None  # type: ignore[assignment]
        body = term.body.body
    else:
        # Remark 3.3: λc. c t̄ — single-tuple eta-variant.
        nil_name = None
        body = term.body
        eta_variant = True

    rows: List[TupleValue] = []
    node = body
    while True:
        head, args = spine(node)
        if (
            nil_name is not None
            and isinstance(node, Var)
            and node.name == nil_name
        ):
            break
        if not (isinstance(head, Var) and head.name == cons_name):
            raise DecodeError(
                f"expected an application of the list constructor "
                f"{cons_name!r} or the tail variable, found: {node}"
            )
        if eta_variant:
            # λc. c o1 ... ok — all args are constants, no tail.
            tail = None
            constant_args = args
        else:
            if len(args) < 1:
                raise DecodeError(f"constructor with no arguments: {node}")
            tail = args[-1]
            constant_args = args[:-1]
        row = []
        for argument in constant_args:
            if not isinstance(argument, Const):
                raise DecodeError(
                    f"tuple component is not an atomic constant: {argument}"
                )
            row.append(argument.name)
        rows.append(tuple(row))
        if eta_variant:
            break
        node = tail

    if arity is None:
        arity = len(rows[0]) if rows else 0
    for row in rows:
        if len(row) != arity:
            raise DecodeError(
                f"mixed arities in encoding: expected {arity}, "
                f"found tuple {row!r}"
            )

    relation = Relation.deduplicated(arity, rows)
    return DecodedRelation(
        relation=relation,
        raw_tuples=tuple(rows),
        had_duplicates=len(rows) != len(relation),
        eta_variant=eta_variant,
    )
