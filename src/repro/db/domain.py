"""Active domain computation (Section 3.1).

"The database active domain D is the set of constants in (r̄1 ... r̄l)."
We expose it both as a Python list (first-appearance order, which is the
order any fixed iteration over the encodings would produce) and as a unary
relation / encoded term, since the paper's Section 4 fixpoint construction
"computes the active domain by a sequence of projections and unions" and
then uses it as a list to iterate over.
"""

from __future__ import annotations

from typing import List

from repro.db.encode import encode_relation
from repro.db.relations import Database, Relation
from repro.lam.terms import Term


def active_domain(database: Database) -> List[str]:
    """The constants of the database, in first-appearance order."""
    return database.active_domain()


def active_domain_relation(database: Database) -> Relation:
    """The active domain as a unary list-represented relation."""
    return Relation.unary(active_domain(database))


def active_domain_term(database: Database, **kwargs) -> Term:
    """The encoded active-domain list ``D̄`` (used by FuncToList and Crank)."""
    return encode_relation(active_domain_relation(database), **kwargs)


def domain_product_size(database: Database, arity: int) -> int:
    """``|D|^arity`` — the tuple-space size bounding fixpoint growth."""
    return len(active_domain(database)) ** arity
