"""Encoding relations as lambda terms (Definition 3.1).

A k-ary relation ``r = {t̄1 < t̄2 < ... < t̄m}`` (in its list order) becomes

    r̄ := λc. λn. c t̄1 (c t̄2 (... (c t̄m n) ...))

where each tuple contributes its k constants as separate arguments of ``c``.
With at least two tuples the principal type is ``o^k_d`` for a fresh
accumulator variable ``d``; we optionally annotate the binders with the
instance ``o^k_g`` the query machinery uses.
"""

from __future__ import annotations

from typing import List, Optional

from repro.db.relations import Database, Relation
from repro.errors import EncodingError
from repro.lam.terms import Const, Term, Var, app, lam
from repro.types.types import Type, tuple_consumer_type
from repro.types.types import G as TYPE_G


def encode_relation(
    relation: Relation,
    *,
    cons_var: str = "c",
    nil_var: str = "n",
    annotate: bool = False,
    accumulator: Optional[Type] = None,
) -> Term:
    """Encode a list-represented relation per Definition 3.1.

    ``annotate=True`` adds Church-style annotations typing the term at
    ``o^k`` over the given ``accumulator`` type (default ``g``).
    """
    if cons_var == nil_var:
        raise EncodingError("cons and nil variables must be distinct")
    body: Term = Var(nil_var)
    for row in reversed(relation.tuples):
        body = app(Var(cons_var), *[Const(v) for v in row], body)
    if annotate:
        acc = accumulator if accumulator is not None else TYPE_G
        annotations = [tuple_consumer_type(relation.arity, acc), acc]
    else:
        annotations = []
    return lam([cons_var, nil_var], body, annotations)


def encode_database(database: Database, **kwargs) -> List[Term]:
    """Encode every relation of the database, in database order."""
    return [
        encode_relation(relation, **kwargs) for _, relation in database
    ]


def encode_constant_list(values, *, cons_var: str = "c", nil_var: str = "n") -> Term:
    """Encode a plain list of constants as a unary relation term — used for
    the active-domain list ``D`` (Section 4)."""
    return encode_relation(
        Relation.unary(list(values)), cons_var=cons_var, nil_var=nil_var
    )
