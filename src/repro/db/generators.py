"""Seeded random databases for tests and benchmarks.

All generators take an explicit ``random.Random`` (or a seed) so that tests
and benchmark series are reproducible run to run.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Union

from repro.db.relations import Database, Relation
from repro.naming import constant_name

RandomLike = Union[int, random.Random, None]


def _rng(source: RandomLike) -> random.Random:
    if isinstance(source, random.Random):
        return source
    return random.Random(source)


def constant_universe(size: int) -> List[str]:
    """The first ``size`` constants ``o1, ..., o<size>``."""
    return [constant_name(i + 1) for i in range(size)]


def random_relation(
    arity: int,
    size: int,
    universe: Optional[Sequence[str]] = None,
    seed: RandomLike = 0,
) -> Relation:
    """A random duplicate-free relation with exactly ``size`` tuples, unless
    the tuple space is smaller (then the whole space, shuffled)."""
    rng = _rng(seed)
    if universe is None:
        universe = constant_universe(max(4, size))
    space = len(universe) ** arity
    size = min(size, space)
    chosen = set()
    rows = []
    # Rejection sampling is fine until the space is dense; fall back to
    # enumeration for small spaces.
    if size * 3 >= space:
        import itertools

        everything = list(itertools.product(universe, repeat=arity))
        rng.shuffle(everything)
        rows = everything[:size]
    else:
        while len(rows) < size:
            row = tuple(rng.choice(universe) for _ in range(arity))
            if row not in chosen:
                chosen.add(row)
                rows.append(row)
    return Relation.from_tuples(arity, rows)


def random_graph_relation(
    nodes: int,
    edge_probability: float = 0.3,
    seed: RandomLike = 0,
) -> Relation:
    """A random directed graph as a binary edge relation over ``o1..on``."""
    rng = _rng(seed)
    universe = constant_universe(nodes)
    rows = [
        (a, b)
        for a in universe
        for b in universe
        if a != b and rng.random() < edge_probability
    ]
    return Relation.from_tuples(2, rows)


def chain_graph_relation(nodes: int) -> Relation:
    """The path graph ``o1 -> o2 -> ... -> on`` — worst case for transitive
    closure depth."""
    universe = constant_universe(nodes)
    return Relation.from_tuples(
        2, [(universe[i], universe[i + 1]) for i in range(nodes - 1)]
    )


def cycle_graph_relation(nodes: int) -> Relation:
    """The directed cycle on ``n`` nodes."""
    universe = constant_universe(nodes)
    return Relation.from_tuples(
        2,
        [(universe[i], universe[(i + 1) % nodes]) for i in range(nodes)],
    )


def random_database(
    arities: Sequence[int],
    sizes: Sequence[int],
    universe_size: int = 8,
    seed: RandomLike = 0,
) -> Database:
    """A database with one random relation per (arity, size) pair, named
    ``R1, R2, ...``."""
    if len(arities) != len(sizes):
        raise ValueError("arities and sizes must have equal length")
    rng = _rng(seed)
    universe = constant_universe(universe_size)
    relations = {}
    for index, (arity, size) in enumerate(zip(arities, sizes), start=1):
        relations[f"R{index}"] = random_relation(
            arity, size, universe, seed=rng
        )
    return Database.of(relations)
