"""List-represented relations and databases (Definition 3.4).

A *list-represented relation* is a pair ``(r, <)`` of a finite relation over
the constant universe and a linear order on its tuples.  We realize the pair
as an ordered, duplicate-free tuple sequence: the sequence order *is* the
linear order ``<``.  Two relations are equal only if they contain the same
tuples in the same order; use :meth:`Relation.same_set` for set-level
comparison (the right notion when comparing query outputs, which are
encodings "with duplicates" whose order is evaluation-dependent).

Constants are strings (see :mod:`repro.naming`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.errors import SchemaError

TupleValue = Tuple[str, ...]


@dataclass(frozen=True)
class Relation:
    """An ordered, duplicate-free list of equal-arity tuples."""

    arity: int
    tuples: Tuple[TupleValue, ...]

    def __post_init__(self) -> None:
        index: Dict[TupleValue, int] = {}
        for position, row in enumerate(self.tuples):
            if len(row) != self.arity:
                raise SchemaError(
                    f"tuple {row!r} has arity {len(row)}, expected {self.arity}"
                )
            if row in index:
                raise SchemaError(f"duplicate tuple {row!r}")
            index[row] = position
        # Hash index (tuple -> list position), built once per relation:
        # membership tests and order lookups are O(1) instead of scans —
        # oracle comparisons and probe-heavy evaluation stay linear.
        object.__setattr__(self, "_index", index)

    # -- construction -------------------------------------------------------

    @staticmethod
    def from_tuples(arity: int, rows: Iterable[Sequence[str]]) -> "Relation":
        """Build a relation preserving iteration order, rejecting duplicates."""
        return Relation(arity, tuple(tuple(row) for row in rows))

    @staticmethod
    def from_any_order(arity: int, rows: Iterable[Sequence[str]]) -> "Relation":
        """Build a relation in sorted tuple order — a canonical
        list-representation for a set of tuples."""
        distinct = sorted({tuple(row) for row in rows})
        return Relation(arity, tuple(distinct))

    @staticmethod
    def deduplicated(arity: int, rows: Iterable[Sequence[str]]) -> "Relation":
        """Build a relation keeping the first occurrence of each tuple."""
        seen = set()
        kept: List[TupleValue] = []
        for row in rows:
            key = tuple(row)
            if key not in seen:
                seen.add(key)
                kept.append(key)
        return Relation(arity, tuple(kept))

    @staticmethod
    def empty(arity: int) -> "Relation":
        return Relation(arity, ())

    @staticmethod
    def unary(values: Iterable[str]) -> "Relation":
        """A unary relation from a sequence of constants (order kept)."""
        return Relation.from_tuples(1, [(v,) for v in values])

    # -- observations --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[TupleValue]:
        return iter(self.tuples)

    def __contains__(self, row: Sequence[str]) -> bool:
        return tuple(row) in self._index  # type: ignore[attr-defined]

    def as_set(self) -> frozenset:
        return frozenset(self._index)  # type: ignore[attr-defined]

    def same_set(self, other: "Relation") -> bool:
        """Set-level equality, ignoring tuple order."""
        return self.arity == other.arity and self.as_set() == other.as_set()

    def constants(self) -> List[str]:
        """The constants appearing in this relation, in first-appearance
        order (row-major)."""
        seen: Dict[str, None] = {}
        for row in self.tuples:
            for value in row:
                seen.setdefault(value, None)
        return list(seen)

    def position(self, row: Sequence[str]) -> int:
        """Index of ``row`` in the list order; raises ``ValueError`` if
        absent.  This realizes the order predicate ``<`` of Definition 3.4."""
        position = self._index.get(tuple(row))  # type: ignore[attr-defined]
        if position is None:
            raise ValueError(f"{tuple(row)!r} is not in relation")
        return position

    def precedes(self, left: Sequence[str], right: Sequence[str]) -> bool:
        """Does ``left`` come strictly before ``right`` in the list order?"""
        return self.position(left) < self.position(right)

    def sorted(self) -> "Relation":
        """The same tuple set in canonical sorted order."""
        return Relation(self.arity, tuple(sorted(self.tuples)))

    def __str__(self) -> str:
        rows = ", ".join("(" + ",".join(row) + ")" for row in self.tuples)
        return f"Relation[{self.arity}]{{{rows}}}"


@dataclass(frozen=True)
class Database:
    """A named tuple of list-represented relations (Definition 3.4)."""

    relations: Tuple[Tuple[str, Relation], ...]

    @staticmethod
    def of(relations: Mapping[str, Relation]) -> "Database":
        return Database(tuple(relations.items()))

    def __getitem__(self, name: str) -> Relation:
        for key, relation in self.relations:
            if key == name:
                return relation
        raise KeyError(name)

    def __contains__(self, name: str) -> bool:
        return any(key == name for key, _ in self.relations)

    def __iter__(self) -> Iterator[Tuple[str, Relation]]:
        return iter(self.relations)

    def __len__(self) -> int:
        return len(self.relations)

    @property
    def names(self) -> List[str]:
        return [key for key, _ in self.relations]

    @property
    def arities(self) -> List[int]:
        return [relation.arity for _, relation in self.relations]

    def active_domain(self) -> List[str]:
        """The set of constants appearing in the database, in
        first-appearance order (the paper's ``D``, Section 3.1)."""
        seen: Dict[str, None] = {}
        for _, relation in self.relations:
            for value in relation.constants():
                seen.setdefault(value, None)
        return list(seen)

    def map_relations(self, fn) -> "Database":
        """A copy with every relation replaced by ``fn(name, relation)``
        (names and their order are preserved — shard databases built this
        way keep the schema of the original, Definition 3.4)."""
        return Database(
            tuple((name, fn(name, relation)) for name, relation in self.relations)
        )

    def with_relation(self, name: str, relation: Relation) -> "Database":
        """A copy with ``name`` bound to ``relation`` (added or replaced)."""
        items = [
            (key, relation if key == name else value)
            for key, value in self.relations
        ]
        if name not in self:
            items.append((name, relation))
        return Database(tuple(items))

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.relations)
        return f"Database({parts})"
