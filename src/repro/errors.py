"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch everything coming out of the library with a single ``except`` clause
while still being able to discriminate the phase that failed (parsing,
typing, reduction, decoding, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ParseError(ReproError):
    """Raised when the lambda-term parser rejects its input.

    Carries the position of the offending token so error messages can point
    at the exact location in the source string.
    """

    def __init__(self, message: str, position: int = -1, source: str = ""):
        self.position = position
        self.source = source
        if position >= 0 and source:
            context = source[max(0, position - 20):position + 20]
            message = f"{message} (at position {position}, near {context!r})"
        super().__init__(message)


class TypeInferenceError(ReproError):
    """Raised when a term cannot be typed (TLC=, core-ML=, or Church check)."""


class UnificationError(TypeInferenceError):
    """Raised when two types fail to unify (occurs check or clash)."""


class OrderBoundError(TypeInferenceError):
    """Raised when a term types only above the requested functionality order."""


class ReductionError(ReproError):
    """Raised when reduction goes wrong (e.g. the fuel limit is exhausted)."""


class FuelExhausted(ReductionError):
    """Raised when a reduction did not reach normal form within its budget.

    For well-typed TLC=/core-ML= terms strong normalization guarantees that a
    normal form exists, so in practice this signals an undersized budget (or
    an untyped term sneaking in through the untyped API).
    """

    def __init__(self, steps: int):
        self.steps = steps
        super().__init__(
            f"no normal form reached within {steps} reduction steps"
        )


class DecodeError(ReproError):
    """Raised when a normal form is not a valid relation encoding."""


class EncodingError(ReproError):
    """Raised when a relation or database cannot be encoded."""


class QueryTermError(ReproError):
    """Raised when a term is not a valid TLI=_i / MLI=_i query term."""


class CanonicalFormError(ReproError):
    """Raised when a term cannot be brought into (or is not in) canonical
    long normal form, or violates the Lemma 5.5/5.6 structure."""


class EvaluationError(ReproError):
    """Raised by the specialized evaluators (FO translation, PTIME machine)."""


class SchemaError(ReproError):
    """Raised on arity or name mismatches between relations and schemas."""


class StratificationError(ReproError):
    """Raised when a Datalog program with negation has no stratification."""
