"""Query evaluation: drivers, canonical forms, and the Section 5 engines.

* :mod:`repro.eval.driver` — apply a query term to an encoded database and
  decode the normal form (Definition 3.10 semantics), under any of the
  available engines.
* :mod:`repro.eval.canonical` — long-normal-form (canonical) transformation
  (Definition 5.3, Lemma 5.4).
* :mod:`repro.eval.structure` — the Lemma 5.5/5.6 structure analysis,
  producing the typed IR the evaluators consume.
* :mod:`repro.eval.fo_translation` — the Section 5.2 compilation of TLI=0
  terms into first-order formulas (Theorem 5.1).
* :mod:`repro.eval.ptime` — the Section 5.3-style polynomial-time evaluator
  for TLI=1 terms (Theorem 5.2).
"""

from repro.eval.driver import QueryRun, run_query
from repro.eval.ptime import FixpointRun, run_fixpoint_query

__all__ = ["FixpointRun", "QueryRun", "run_fixpoint_query", "run_query"]
