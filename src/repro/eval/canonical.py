"""Canonical (eta-long) forms of query terms (Definition 5.3, Lemma 5.4).

A query term is in *canonical form* when it is a closed normal form and
every complete subterm ``λx1 ... λxk. M`` carries exactly as many binders
as its canonical type has argument positions — the "long normal form".
Lemma 5.4 turns any TLI=_i / MLI=_i query term into an equivalent canonical
one by eta-expansion (and eliminates free variables; our query terms are
closed, so only the expansion matters).

The pipeline implemented here:

1. let-expansion (Section 5: "we can eliminate all let's from Q by
   replacing every subterm let x = N in M with M[x := N]") and
   normalization — both are O(1) data-complexity preprocessing;
2. *occurrence splitting*: every occurrence of an input variable ``R_i``
   is renamed apart (``R_i`` used polymorphically types each occurrence
   independently — the paper's "variables corresponding to input relations
   are to be polymorphically typed");
3. Curry-style reconstruction of the split body with each occurrence
   assumed at ``o^{k_i}`` over a fresh accumulator variable, the result
   forced to ``o^k``;
4. grounding of the principal typing over the fixed variables ``o``/``g``
   (Section 3.2's convention), giving every occurrence its canonical type;
5. type-directed eta-expansion, producing a fully Church-annotated term
   whose binders all carry their canonical types.

The result is a :class:`CanonicalQuery`: the canonical body together with
the occurrence-to-input mapping the Section 5.2 translation needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CanonicalFormError, TypeInferenceError
from repro.lam.nbe import nbe_normalize
from repro.lam.subst import rename_bound
from repro.lam.terms import (
    Abs,
    App,
    Const,
    EqConst,
    Let,
    Term,
    Var,
    binder_prefix,
    expand_lets,
    free_vars,
    spine,
)
from repro.naming import NameSupply
from repro.queries.language import QueryArity
from repro.types.infer import infer
from repro.types.order import ground
from repro.types.types import (
    Type,
    TypeVar,
    arrow_parts,
    eq_type,
    relation_type,
)
from repro.types.types import G as TYPE_G
from repro.types.types import O as TYPE_O


@dataclass
class CanonicalQuery:
    """A query in canonical form, ready for structure analysis.

    ``body`` is the canonical (eta-long, fully annotated) term of type
    ``o^k_g``; its free variables are exactly the renamed input occurrences
    listed in ``occurrences`` (name -> input index) — the original query is
    ``λR1 ... λRl. body[occ := R_index(occ)]``.
    """

    arity: QueryArity
    input_names: Tuple[str, ...]
    body: Term
    occurrences: Dict[str, int]
    occurrence_types: Dict[str, Type]

    def input_arity(self, occurrence: str) -> int:
        return self.arity.inputs[self.occurrences[occurrence]]


def canonical_query(term: Term, arity: QueryArity) -> CanonicalQuery:
    """Bring a TLI=/MLI= query term into canonical form (Lemma 5.4)."""
    expanded = expand_lets(term)
    normal = nbe_normalize(expanded)
    binders, body = binder_prefix(normal)
    if len(binders) < len(arity.inputs):
        # A normal-form query term of relation-to-relation type always
        # eta-expands to the full binder prefix; do it now.
        normal = _eta_expand_binders(normal, len(arity.inputs))
        binders, body = binder_prefix(normal)
    input_names = binders[: len(arity.inputs)]
    if len(set(input_names)) != len(input_names):
        raise CanonicalFormError("input binders must be distinct")
    rest = binders[len(arity.inputs):]
    if rest:
        # Extra binders belong to the output relation type (c / n written
        # as query binders); fold them back into the body.
        from repro.lam.terms import lam

        body = lam(list(rest), body)

    body = rename_bound(body, avoid=input_names)
    split_body, occurrences = _split_occurrences(
        body, input_names, arity.inputs
    )

    env: Dict[str, Type] = {}
    for occ, index in occurrences.items():
        env[occ] = relation_type(
            arity.inputs[index], TypeVar(f"?occacc_{occ}")
        )
    try:
        typing = infer(split_body, env)
    except TypeInferenceError as exc:
        raise CanonicalFormError(
            f"query body does not type: {exc}"
        ) from exc
    out_acc = TypeVar("?canon_out")
    try:
        typing.subst.unify(
            typing.occurrence_types[()], relation_type(arity.output, out_acc)
        )
    except Exception as exc:  # UnificationError
        raise CanonicalFormError(
            f"query result is not o^{arity.output}: {exc}"
        ) from exc

    occurrence_types = {
        occ: ground(typing.subst.apply(env[occ]), TYPE_G)
        for occ in occurrences
    }
    var_env = dict(occurrence_types)
    canonical_body = _eta_long(
        split_body,
        relation_type(arity.output, TYPE_G),
        var_env,
        NameSupply(free_vars(split_body) | set(input_names)),
    )
    return CanonicalQuery(
        arity=arity,
        input_names=tuple(input_names),
        body=canonical_body,
        occurrences=occurrences,
        occurrence_types=occurrence_types,
    )


def is_canonical(query: CanonicalQuery) -> bool:
    """Executable Definition 5.3: is the stored body a *long normal form*?

    Checks that the body is a normal form closed up to the recorded input
    occurrences, and — threading the expected type of every position from
    the root type and the binder annotations — that each complete subterm
    carries exactly as many binders as its type has argument positions and
    that every spine is fully applied down to a base type.
    :func:`canonical_query` always produces bodies satisfying this; the
    check exists so tests can assert the Lemma 5.4 postcondition rather
    than trust it.
    """
    from repro.lam.reduce import is_normal_form
    from repro.types.types import arrow_parts

    body = query.body
    if not is_normal_form(body):
        return False
    if free_vars(body) - set(query.occurrences):
        return False

    def check(node: Term, expected: Type, env: Dict[str, Type]) -> bool:
        arg_types, base = arrow_parts(expected)
        binders: List[str] = []
        walker = node
        local = dict(env)
        for arg_type in arg_types:
            if not isinstance(walker, Abs):
                return False  # under-applied: not eta-long
            if walker.annotation != arg_type:
                return False  # annotation disagrees with the position
            local[walker.var] = arg_type
            binders.append(walker.var)
            walker = walker.body
        if isinstance(walker, Abs):
            return False  # more binders than the type has arguments
        head, args = spine(walker)
        if isinstance(head, Var):
            head_type = local.get(head.name) or query.occurrence_types.get(
                head.name
            )
            if head_type is None:
                return False
        elif isinstance(head, Const):
            head_type = TYPE_O
        elif isinstance(head, EqConst):
            head_type = eq_type()
        else:
            return False  # a redex head — not a normal form
        head_args, head_base = arrow_parts(head_type)
        if len(args) != len(head_args) or head_base != base:
            return False  # spine not fully applied to the base type
        return all(
            check(argument, arg_type, local)
            for argument, arg_type in zip(args, head_args)
        )

    return check(body, relation_type(query.arity.output, TYPE_G), {})


def _eta_expand_binders(term: Term, count: int) -> Term:
    from repro.lam.terms import app, lam

    supply = NameSupply(free_vars(term))
    names = [supply.fresh("R") for _ in range(count)]
    return lam(names, app(term, *[Var(n) for n in names]))


def _split_occurrences(
    body: Term, input_names: Sequence[str], arities: Sequence[int]
) -> Tuple[Term, Dict[str, int]]:
    """Rename each free occurrence of each input variable apart."""
    occurrences: Dict[str, int] = {}
    counters = {name: 0 for name in input_names}
    index_of = {name: i for i, name in enumerate(input_names)}

    def walk(node: Term, bound: frozenset) -> Term:
        if isinstance(node, Var):
            if node.name in index_of and node.name not in bound:
                fresh = f"{node.name}__occ{counters[node.name]}"
                counters[node.name] += 1
                occurrences[fresh] = index_of[node.name]
                return Var(fresh)
            return node
        if isinstance(node, (Const, EqConst)):
            return node
        if isinstance(node, Abs):
            return Abs(
                node.var,
                walk(node.body, bound | {node.var}),
                node.annotation,
            )
        if isinstance(node, App):
            return App(walk(node.fn, bound), walk(node.arg, bound))
        if isinstance(node, Let):  # pragma: no cover - lets were expanded
            raise CanonicalFormError("unexpected let after expansion")
        raise TypeError(f"not a term: {node!r}")

    return walk(body, frozenset()), occurrences


def _eta_long(
    term: Term,
    expected: Type,
    var_env: Dict[str, Type],
    supply: NameSupply,
) -> Term:
    """Type-directed eta-expansion of a beta-normal term.

    Every binder in the result is annotated with its canonical type, and
    every complete subterm carries exactly as many binders as its type has
    argument positions (Definition 5.3).
    """
    arg_types, base = arrow_parts(expected)
    binders, core = binder_prefix(term)
    if len(binders) > len(arg_types):
        raise CanonicalFormError(
            f"term {term.pretty()} has more binders than its type {expected}"
        )
    shadowed: List[Tuple[str, Optional[Type]]] = []
    names: List[str] = []
    for name, arg_type in zip(binders, arg_types):
        shadowed.append((name, var_env.get(name)))
        var_env[name] = arg_type
        names.append(name)
    fresh_names = []
    for arg_type in arg_types[len(binders):]:
        fresh = supply.fresh("e")
        fresh_names.append(fresh)
        shadowed.append((fresh, var_env.get(fresh)))
        var_env[fresh] = arg_type
        names.append(fresh)

    try:
        head, args = spine(core)
        args = list(args) + [Var(n) for n in fresh_names]
        if isinstance(head, Var):
            head_type = var_env.get(head.name)
            if head_type is None:
                raise CanonicalFormError(
                    f"unknown variable {head.name} during eta-expansion"
                )
        elif isinstance(head, Const):
            head_type = TYPE_O
        elif isinstance(head, EqConst):
            head_type = eq_type()
        elif isinstance(head, Abs):
            raise CanonicalFormError(
                f"beta redex survived normalization: {core.pretty()}"
            )
        else:
            raise TypeError(f"not a term: {head!r}")
        head_args, head_base = arrow_parts(head_type)
        if len(args) > len(head_args):
            raise CanonicalFormError(
                f"head {head.pretty()} of type {head_type} applied to "
                f"{len(args)} arguments"
            )
        # The head may be under-applied relative to its own type only if
        # the remainder matches the expected base; eta-expansion of the
        # whole spine already appended the needed arguments, so here the
        # remainder must be the base type exactly.
        remainder_args = head_args[len(args):]
        if remainder_args:
            raise CanonicalFormError(
                f"spine {core.pretty()} is under-applied even after "
                f"eta-expansion (expected base {base})"
            )
        if head_base != base:
            raise CanonicalFormError(
                f"spine {core.pretty()} has base type {head_base}, "
                f"expected {base}"
            )
        new_args = [
            _eta_long(argument, arg_type, var_env, supply)
            for argument, arg_type in zip(args, head_args)
        ]
        from repro.lam.terms import app as make_app

        result = make_app(head, *new_args)
        for name in reversed(names):
            result = Abs(name, result, var_env[name])
        return result
    finally:
        for name, previous in reversed(shadowed):
            if previous is None:
                var_env.pop(name, None)
            else:
                var_env[name] = previous
