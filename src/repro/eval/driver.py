"""Applying query terms to databases (Definition 3.10).

A query term ``Q`` maps the encoded database ``(r̄1 ... r̄l)`` to the
normal form of ``(Q r̄1 ... r̄l)``, which Lemma 3.2 guarantees is an
encoding with duplicates of the output relation.  :func:`run_query` performs
exactly that: encode, apply, normalize, decode.

Engines:

* ``"nbe"`` (default) — normalization by evaluation; fast for TLI=0
  queries, exponential on TLI=1 fixpoint towers (use
  :func:`repro.eval.ptime.run_fixpoint_query` for those — Theorem 5.2).
* ``"smallstep"`` — the reference small-step normalizer (normal order);
  exposes step counts, used by the complexity experiments.
* ``"applicative"`` — small-step, applicative order.

:func:`run_query` is the *one-shot* entry point: it encodes the database
and normalizes from scratch on every call.  It is a thin wrapper over the
service runtime's uncached path (:func:`repro.service.runtime.run_once`);
for repeated queries over the same databases use
:class:`repro.service.QueryService`, which encodes once per database
version and caches normal forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.db.decode import DecodedRelation
from repro.db.relations import Database, Relation
from repro.lam.terms import Term

# Re-exported for backwards compatibility; the engine registry lives with
# the service runtime now.
from repro.service.engines import ENGINES  # noqa: F401


@dataclass
class QueryRun:
    """The outcome of one query evaluation."""

    relation: Relation
    decoded: DecodedRelation
    normal_form: Term
    engine: str
    steps: Optional[int] = None  # small-step and materialized engines


def run_query(
    query: Term,
    database: Database,
    *,
    arity: Optional[int] = None,
    engine: str = "nbe",
    fuel: int = 10_000_000,
    max_depth: int = 600_000,
) -> QueryRun:
    """Evaluate ``query`` over ``database`` and decode the result.

    ``arity`` optionally asserts the output arity.  Raises
    :class:`repro.errors.DecodeError` if the normal form is not a relation
    encoding (i.e. the term was not a query term for this input type), and
    :class:`repro.errors.EvaluationError` — *before* any encoding work —
    if ``engine`` is not one of :data:`ENGINES`.
    """
    from repro.service.runtime import run_once

    decoded, result = run_once(
        query,
        database,
        arity=arity,
        engine=engine,
        fuel=fuel,
        max_depth=max_depth,
    )
    return QueryRun(
        relation=decoded.relation,
        decoded=decoded,
        normal_form=result.normal_form,
        engine=result.engine,
        steps=result.steps,
    )
