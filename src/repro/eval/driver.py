"""Applying query terms to databases (Definition 3.10).

A query term ``Q`` maps the encoded database ``(r̄1 ... r̄l)`` to the
normal form of ``(Q r̄1 ... r̄l)``, which Lemma 3.2 guarantees is an
encoding with duplicates of the output relation.  :func:`run_query` performs
exactly that: encode, apply, normalize, decode.

Engines:

* ``"nbe"`` (default) — normalization by evaluation; fast for TLI=0
  queries, exponential on TLI=1 fixpoint towers (use
  :func:`repro.eval.ptime.run_fixpoint_query` for those — Theorem 5.2).
* ``"smallstep"`` — the reference small-step normalizer (normal order);
  exposes step counts, used by the complexity experiments.
* ``"applicative"`` — small-step, applicative order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.db.decode import DecodedRelation, decode_relation
from repro.db.encode import encode_database
from repro.db.relations import Database, Relation
from repro.errors import EvaluationError
from repro.lam.nbe import nbe_normalize
from repro.lam.reduce import Strategy, normalize
from repro.lam.terms import Term, app

ENGINES = ("nbe", "smallstep", "applicative")


@dataclass
class QueryRun:
    """The outcome of one query evaluation."""

    relation: Relation
    decoded: DecodedRelation
    normal_form: Term
    engine: str
    steps: Optional[int] = None  # small-step engines only


def run_query(
    query: Term,
    database: Database,
    *,
    arity: Optional[int] = None,
    engine: str = "nbe",
    fuel: int = 10_000_000,
    max_depth: int = 600_000,
) -> QueryRun:
    """Evaluate ``query`` over ``database`` and decode the result.

    ``arity`` optionally asserts the output arity.  Raises
    :class:`repro.errors.DecodeError` if the normal form is not a relation
    encoding (i.e. the term was not a query term for this input type).
    """
    encoded_inputs = encode_database(database)
    applied = app(query, *encoded_inputs)
    steps: Optional[int] = None
    if engine == "nbe":
        normal_form = nbe_normalize(applied, max_depth=max_depth)
    elif engine == "smallstep":
        outcome = normalize(applied, Strategy.NORMAL_ORDER, fuel=fuel)
        normal_form = outcome.term
        steps = outcome.steps
    elif engine == "applicative":
        outcome = normalize(applied, Strategy.APPLICATIVE_ORDER, fuel=fuel)
        normal_form = outcome.term
        steps = outcome.steps
    else:
        raise EvaluationError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    decoded = decode_relation(normal_form, arity)
    return QueryRun(
        relation=decoded.relation,
        decoded=decoded,
        normal_form=normal_form,
        engine=engine,
        steps=steps,
    )
