"""First-order evaluation of TLI=0 / MLI=0 queries (Section 5.2, Thm 5.1).

The paper's upper bound for TLI=0 shows that order-0 iterations are not
truly sequential: a stage can never inspect the incoming accumulator (any
``g``-typed value is opaque, and ``Eq`` cannot produce an ``o`` value), so
each stage either *passes through* the incoming value — possibly underneath
freshly prepended tuples — or discards it.  The whole query then compiles
to a first-order formula over the structure ``(D, r1..rl, <1..<l)``:

* ``PassThrough``: for each subterm ``t`` of type ``g`` and accumulator
  variable ``z`` in scope, a formula saying the value of ``t`` ends in
  ``z`` ("term t will pass through whatever tuples are in z");
* ``Produces``: a formula with free variables ``ξ1..ξk`` saying ``t``
  prepends the tuple ``ξ̄``: "something is in the output if (a) it was in
  the initial value of the accumulator and none of the iteration stages
  ignored its input, or (b) it was produced at some stage and none of the
  later stages ignored its input" — where stages are identified with the
  tuples of the iterated input and "later in evaluation order" is "earlier
  in the list order", expressed with the interpreted ``Precedes`` atoms.

For subterms of type ``o`` the same scheme yields ``OVal`` (the value of an
``o``-iteration is decided by the first stage, in list order, that does not
pass its ``o``-accumulator through).

The output formula is ``Produces(Q0, ξ̄)``: exactly the tuples the normal
form of ``(Q r̄1 ... r̄l)`` conses.  Evaluating it with the baseline FO
engine (:mod:`repro.folog`) gives a constant-parallel-time / first-order
evaluation of the query — the test suite checks tuple-set agreement with
direct reduction on randomized databases, and that the translation is
data-independent (it is computed from the query alone).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.db.relations import Database, Relation
from repro.errors import EvaluationError
from repro.eval.canonical import canonical_query
from repro.eval.structure import (
    AnalyzedQuery,
    ConsIR,
    EqIR,
    GTermIR,
    IterIR,
    OConstIR,
    OIterIR,
    OTermIR,
    OVarIR,
    TailVarIR,
    analyze_query,
)
from repro.folog.evaluate import evaluate_fo_query
from repro.folog.formulas import (
    And,
    Atom,
    Equals,
    Exists,
    FConst,
    FTerm,
    FVar,
    FalseFormula,
    Forall,
    Formula,
    Not,
    Or,
    Precedes,
    TrueFormula,
    and_all,
    exists_many,
    forall_many,
)
from repro.lam.terms import Term
from repro.queries.language import QueryArity


@dataclass
class FOTranslation:
    """The result of translating a query term to first-order logic."""

    formula: Formula
    output_vars: Tuple[str, ...]
    input_names: Tuple[str, ...]
    analyzed: AnalyzedQuery

    def evaluate(self, database: Database) -> Relation:
        """Evaluate the formula over ``database`` (Definition 3.5 style).

        The evaluation domain is the active domain extended with the
        constants the query itself conses (a query term may output
        constants absent from the database).
        """
        renamed = _rename_database(database, self.input_names)
        return evaluate_fo_query(
            self.formula,
            list(self.output_vars),
            renamed,
            include_formula_constants=True,
        )


def _rename_database(database: Database, names: Sequence[str]) -> Database:
    """Present the database's relations under the query's input names."""
    if len(names) != len(database.relations):
        raise EvaluationError(
            f"query has {len(names)} inputs, database has "
            f"{len(database.relations)}"
        )
    return Database(
        tuple(
            (name, relation)
            for name, (_, relation) in zip(names, database.relations)
        )
    )


def translate_query(term: Term, arity: QueryArity) -> FOTranslation:
    """Translate a TLI=0 / MLI=0 query term to a first-order formula."""
    canonical = canonical_query(term, arity)
    analyzed = analyze_query(canonical)
    return translate_analyzed(analyzed)


def translate_analyzed(analyzed: AnalyzedQuery) -> FOTranslation:
    builder = _Builder(analyzed)
    output_vars = tuple(
        f"out{i}" for i in range(analyzed.canonical.arity.output)
    )
    formula = builder.produces(
        analyzed.body,
        tuple(FVar(v) for v in output_vars),
        {},
    )
    # Input binder names index the relations in the formula's atoms.
    names = tuple(
        f"IN{i}" for i in range(len(analyzed.canonical.arity.inputs))
    )
    formula = _rename_atoms(formula, names)
    return FOTranslation(
        formula=formula,
        output_vars=output_vars,
        input_names=names,
        analyzed=analyzed,
    )


def _rename_atoms(formula: Formula, names: Tuple[str, ...]) -> Formula:
    """Replace the builder's numeric relation tags by the input names."""
    if isinstance(formula, Atom):
        return Atom(names[int(formula.relation)], formula.terms)
    if isinstance(formula, Precedes):
        return Precedes(
            names[int(formula.relation)], formula.left, formula.right
        )
    if isinstance(formula, And):
        return And(
            _rename_atoms(formula.left, names),
            _rename_atoms(formula.right, names),
        )
    if isinstance(formula, Or):
        return Or(
            _rename_atoms(formula.left, names),
            _rename_atoms(formula.right, names),
        )
    if isinstance(formula, Not):
        return Not(_rename_atoms(formula.inner, names))
    if isinstance(formula, Exists):
        return Exists(formula.var, _rename_atoms(formula.body, names))
    if isinstance(formula, Forall):
        return Forall(formula.var, _rename_atoms(formula.body, names))
    return formula


class _Builder:
    """Constructs the PassThrough / Produces / OVal formulas.

    ``env`` maps in-scope iteration variables (of type ``o``) to the FO
    terms standing for them.  Accumulator variables are referenced by name:
    the canonical form's binders are renamed apart, so names are unique.
    """

    def __init__(self, analyzed: AnalyzedQuery):
        self.analyzed = analyzed
        self.counter = itertools.count()
        self.arities = analyzed.canonical.arity.inputs

    def fresh_tuple(self, arity: int) -> Tuple[FVar, ...]:
        index = next(self.counter)
        return tuple(FVar(f"s{index}_{j}") for j in range(arity))

    # -- g-sorted terms ------------------------------------------------------

    def produces(
        self,
        node: GTermIR,
        out: Tuple[FTerm, ...],
        env: Dict[str, FTerm],
    ) -> Formula:
        """``ξ̄ = out`` is among the tuples prepended by ``node``."""
        if isinstance(node, TailVarIR):
            return FalseFormula()
        if isinstance(node, ConsIR):
            here = and_all(
                self.oval(comp, target, env)
                for comp, target in zip(node.components, out)
            )
            return Or(here, self.produces(node.tail, out, env))
        if isinstance(node, EqIR):
            condition = self.eq_condition(node, env)
            return Or(
                And(condition, self.produces(node.then_branch, out, env)),
                And(
                    Not(condition),
                    self.produces(node.else_branch, out, env),
                ),
            )
        if isinstance(node, IterIR):
            return self.iteration_formula(
                node,
                env,
                lambda stage_env: self.produces(node.body, out, stage_env),
                lambda: self.produces(node.init, out, env),
            )
        raise TypeError(f"not a g-term IR node: {node!r}")

    def passthrough(
        self, node: GTermIR, target: str, env: Dict[str, FTerm]
    ) -> Formula:
        """The value of ``node`` ends in the accumulator variable
        ``target``."""
        if isinstance(node, TailVarIR):
            return TrueFormula() if node.name == target else FalseFormula()
        if isinstance(node, ConsIR):
            return self.passthrough(node.tail, target, env)
        if isinstance(node, EqIR):
            condition = self.eq_condition(node, env)
            return Or(
                And(
                    condition,
                    self.passthrough(node.then_branch, target, env),
                ),
                And(
                    Not(condition),
                    self.passthrough(node.else_branch, target, env),
                ),
            )
        if isinstance(node, IterIR):
            return self.iteration_formula(
                node,
                env,
                lambda stage_env: self.passthrough(
                    node.body, target, stage_env
                ),
                lambda: self.passthrough(node.init, target, env),
            )
        raise TypeError(f"not a g-term IR node: {node!r}")

    def iteration_formula(
        self,
        node: IterIR,
        env: Dict[str, FTerm],
        body_case,
        init_case,
    ) -> Formula:
        """The common "some stage contributes / all stages pass through"
        disjunction for an iteration ``R_i (λx̄. λy. M) N``.

        Evaluation folds from the *last* tuple backwards, so a stage's
        contribution survives iff every stage at a tuple strictly earlier
        in the list order passes its accumulator through.
        """
        arity = self.arities[node.input_index]
        relation = str(node.input_index)

        def stage_env(stage_vars: Tuple[FVar, ...]) -> Dict[str, FTerm]:
            extended = dict(env)
            for name, value in zip(node.tuple_vars, stage_vars):
                extended[name] = value
            return extended

        def pass_at(stage_vars: Tuple[FVar, ...]) -> Formula:
            return self.passthrough(
                node.body, node.acc_var, stage_env(stage_vars)
            )

        p_vars = self.fresh_tuple(arity)
        q_vars = self.fresh_tuple(arity)
        earlier = And(
            Atom(relation, q_vars),
            Precedes(relation, q_vars, p_vars),
        )
        before_all_pass = forall_many(
            (v.name for v in q_vars),
            Or(Not(earlier), pass_at(q_vars)),
        )
        some_stage = exists_many(
            (v.name for v in p_vars),
            and_all(
                [
                    Atom(relation, p_vars),
                    body_case(stage_env(p_vars)),
                    before_all_pass,
                ]
            ),
        )
        a_vars = self.fresh_tuple(arity)
        all_pass = forall_many(
            (v.name for v in a_vars),
            Or(Not(Atom(relation, a_vars)), pass_at(a_vars)),
        )
        return Or(some_stage, And(all_pass, init_case()))

    def eq_condition(self, node: EqIR, env: Dict[str, FTerm]) -> Formula:
        """``value(S) = value(T)`` via a fresh existential witness."""
        witness = FVar(f"w{next(self.counter)}")
        return Exists(
            witness.name,
            And(
                self.oval(node.left, witness, env),
                self.oval(node.right, witness, env),
            ),
        )

    # -- o-sorted terms ------------------------------------------------------

    def oval(
        self,
        node: OTermIR,
        target: FTerm,
        env: Dict[str, FTerm],
    ) -> Formula:
        """The ``o``-term evaluates to the domain value ``target``."""
        return self._o_eval(node, ("value", target), env)

    def _o_eval(
        self,
        node: OTermIR,
        target: Tuple[str, object],
        env: Dict[str, FTerm],
    ) -> Formula:
        """``target`` is ("value", FTerm) — evaluates to that constant — or
        ("var", name) — the normal form is literally the o-accumulator
        variable ``name`` (the o-sorted pass-through)."""
        kind, payload = target
        if isinstance(node, OConstIR):
            if kind == "value":
                return Equals(FConst(node.name), payload)
            return FalseFormula()
        if isinstance(node, OVarIR):
            bound = env.get(node.name)
            if bound is not None:  # an iteration variable: holds a constant
                if kind == "value":
                    return Equals(bound, payload)
                return FalseFormula()
            # An o-typed accumulator variable.
            if kind == "var":
                return (
                    TrueFormula() if node.name == payload else FalseFormula()
                )
            return FalseFormula()
        if isinstance(node, OIterIR):
            arity = self.arities[node.input_index]
            relation = str(node.input_index)

            def stage_env(stage_vars: Tuple[FVar, ...]) -> Dict[str, FTerm]:
                extended = dict(env)
                for name, value in zip(node.tuple_vars, stage_vars):
                    extended[name] = value
                return extended

            def pass_at(stage_vars: Tuple[FVar, ...]) -> Formula:
                return self._o_eval(
                    node.body, ("var", node.acc_var), stage_env(stage_vars)
                )

            p_vars = self.fresh_tuple(arity)
            q_vars = self.fresh_tuple(arity)
            earlier = And(
                Atom(relation, q_vars),
                Precedes(relation, q_vars, p_vars),
            )
            before_all_pass = forall_many(
                (v.name for v in q_vars),
                Or(Not(earlier), pass_at(q_vars)),
            )
            some_stage = exists_many(
                (v.name for v in p_vars),
                and_all(
                    [
                        Atom(relation, p_vars),
                        self._o_eval(node.body, target, stage_env(p_vars)),
                        before_all_pass,
                    ]
                ),
            )
            a_vars = self.fresh_tuple(arity)
            all_pass = forall_many(
                (v.name for v in a_vars),
                Or(Not(Atom(relation, a_vars)), pass_at(a_vars)),
            )
            return Or(
                some_stage, And(all_pass, self._o_eval(node.init, target, env))
            )
        raise TypeError(f"not an o-term IR node: {node!r}")
