"""Materializing evaluation of compiled RA query terms.

Whole-term reduction of a deeply nested TLI=0 query re-runs each
intermediate relation's construction once per membership test against it,
so the work multiplies across operator levels (polynomial in the data for
a fixed query, but with the data-exponent growing along the nesting — and
lazy evaluation stacks the entire cascade into one chain).  The paper's
efficient TLI=0 evaluation avoids reduction altogether (the Section 5.2
first-order translation, :mod:`repro.eval.fo_translation`).

This module provides the natural middle ground, mirroring the fixpoint
evaluator of :mod:`repro.eval.ptime`: evaluate the *relational-algebra
tree* bottom-up, normalizing each operator application against the already
**materialized** (normal-form, Definition 3.1) encodings of its children.
Reducing an argument to normal form before reducing the enclosing
application is just another reduction strategy for the same term, so by
Church-Rosser the final normal form is literally the one whole-term
reduction produces — the test suite asserts this on small instances.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from repro.db.decode import decode_relation
from repro.db.encode import encode_relation
from repro.db.relations import Database
from repro.errors import SchemaError
from repro.eval.driver import QueryRun
from repro.lam.nbe import nbe_normalize_counted
from repro.lam.terms import Term, Var, app, lam
from repro.queries import operators as ops
from repro.queries.relalg_compile import active_domain_expr_term
from repro.relalg.ast import (
    ADOM_NAME,
    PRECEDES_PREFIX,
    Base,
    Difference,
    Intersection,
    Product,
    Project,
    RAExpr,
    Select,
    Union,
    schema_with_derived,
)


def run_ra_query_materialized(
    expr: RAExpr,
    database: Database,
    *,
    max_depth: int = 600_000,
    observer: Optional[Callable[[dict], None]] = None,
    read_trace: Optional[Set[str]] = None,
) -> QueryRun:
    """Evaluate a compiled RA query over ``database`` with per-operator
    materialization.  The result (including tuple order and duplicates) is
    the normal form of the corresponding whole query term.

    ``observer`` receives one step-breakdown dict per operator
    normalization (the :mod:`repro.obs.profiler` contract); an
    accumulating observer such as
    :class:`~repro.obs.profiler.ProfileCollector` merges them.

    ``read_trace`` (when supplied) collects the database relation names
    the evaluation actually consumed: each ``Base`` leaf resolved, the
    underlying relation of every ``precedes(X)``, and — for ``adom()`` —
    every relation of the database (the active domain sweeps them all).
    """
    schema = {name: relation.arity for name, relation in database}
    full_schema = schema_with_derived(schema)
    expr.arity(full_schema)
    encoded: Dict[str, Term] = {
        name: encode_relation(relation) for name, relation in database
    }

    steps_total = 0

    def normalize_app(operator: Term, *arguments: Term) -> Term:
        nonlocal steps_total
        normal, steps = nbe_normalize_counted(
            app(operator, *arguments), max_depth=max_depth, observer=observer
        )
        steps_total += steps
        return normal

    def materialize(node: RAExpr) -> Term:
        if isinstance(node, Base):
            if node.name == ADOM_NAME:
                names = list(schema)
                if read_trace is not None:
                    read_trace.update(names)
                term = lam(
                    names,
                    active_domain_expr_term(schema, Var),
                )
                return normalize_app(
                    term, *[encoded[name] for name in names]
                )
            if node.name.startswith(PRECEDES_PREFIX):
                base_name = node.name[len(PRECEDES_PREFIX):]
                if base_name not in schema:
                    raise SchemaError(f"unknown relation {base_name!r}")
                if read_trace is not None:
                    read_trace.add(base_name)
                return normalize_app(
                    ops.precedes_relation_term(schema[base_name]),
                    encoded[base_name],
                )
            if node.name not in encoded:
                raise SchemaError(f"unknown relation {node.name!r}")
            if read_trace is not None:
                read_trace.add(node.name)
            return encoded[node.name]
        if isinstance(node, Union):
            arity = node.left.arity(full_schema)
            return normalize_app(
                ops.union_term(arity),
                materialize(node.left),
                materialize(node.right),
            )
        if isinstance(node, Intersection):
            arity = node.left.arity(full_schema)
            return normalize_app(
                ops.intersection_term(arity),
                materialize(node.left),
                materialize(node.right),
            )
        if isinstance(node, Difference):
            arity = node.left.arity(full_schema)
            return normalize_app(
                ops.difference_term(arity),
                materialize(node.left),
                materialize(node.right),
            )
        if isinstance(node, Product):
            return normalize_app(
                ops.product_term(
                    node.left.arity(full_schema),
                    node.right.arity(full_schema),
                ),
                materialize(node.left),
                materialize(node.right),
            )
        if isinstance(node, Project):
            return normalize_app(
                ops.project_term(
                    node.inner.arity(full_schema), node.columns
                ),
                materialize(node.inner),
            )
        if isinstance(node, Select):
            return normalize_app(
                ops.select_term(
                    node.inner.arity(full_schema), node.condition
                ),
                materialize(node.inner),
            )
        raise TypeError(f"not an RA expression: {node!r}")

    normal_form = materialize(expr)
    decoded = decode_relation(normal_form, expr.arity(full_schema))
    return QueryRun(
        relation=decoded.relation,
        decoded=decoded,
        normal_form=normal_form,
        engine="materialized",
        steps=steps_total,
    )
