"""The polynomial-time evaluator for TLI=1 fixpoint queries (Section 5.3).

Theorem 5.2 states that every TLI=1 (MLI=1) query is a PTIME query; the
paper's proof evaluates query terms with "reduction plus specialized data
structures" to force a polynomial number of steps — the construction
details fall in the part of the source text that is truncated, so this
module reconstructs the evaluator from the Section 4/5 descriptions.

**Why naive strategies blow up.**  In the compiled fixpoint term

    Fix = λR̄. FuncToList' (Crank (λf. ListToFunc' ((λR. M') (FuncToList' f)))
                            (λx̄. False))

each stage's characteristic function ``f_j`` is a redex tower over *all*
previous stages.  Naive normal-order reduction re-expands that tower for
every membership test — each test of ``f_j`` spawns |D|^k tests of
``f_{j-1}`` — so the number of reduction steps grows exponentially in the
number of stages (benchmark B4 measures exactly this on the small-step
engine).  Normalizing ``f_j`` itself is no way out either: the normal form
of ``ListToFunc r̄`` duplicates its continuation at every list element, so
it is exponentially large as a term.

**The specialized data structure: materialized stage lists.**  The paper's
construction alternates between the characteristic-function and list views
of a stage.  The list view is small (a Definition 3.1 encoding, linear in
the stage), and the composition

    G(S)  :=  FuncToList' (ListToFunc' ((λR. M') S))

maps the (normal-form) list encoding of stage ``j`` to the list encoding
of stage ``j+1``: by Church-Rosser this is exactly what the ``Crank``'s
``j+1``-st application reduces to, because ``Fix``'s stage function touches
``f`` only through ``FuncToList'``.  The evaluator therefore iterates:

    S_0     =  FuncToList' (λx̄. False)         (normalizes to λc. λn. n)
    S_{j+1} =  nbe( G(S_j) )
    output  =  S_N,   N = |D|^k  (the Crank length)

Every intermediate object is a lambda term in normal form — the evaluation
is honest reduction of the query's own subterms, just under a strategy that
materializes each stage — and each of the polynomially many stages is a
fixed-size TLI=0-style term applied to polynomial-size data, normalized by
NBE in polynomial time.  Agreement with naive reduction of the *whole*
query term is asserted by the test suite on small instances, and the final
stage is literally the query's normal form: the output tuple order and
duplicate pattern match ``FuncToList'``'s domain enumeration exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Set

from repro.db.decode import DecodedRelation, decode_relation
from repro.db.encode import encode_database, encode_relation
from repro.db.relations import Database, Relation
from repro.errors import EvaluationError, SchemaError
from repro.lam.nbe import nbe_normalize_counted
from repro.lam.terms import Term, Var, app, lam
from repro.queries.fixpoint import (
    FIX_NAME,
    FixpointQuery,
    empty_characteristic_term,
    func_to_list_term,
    list_to_func_term,
)
from repro.queries.relalg_compile import active_domain_expr_term


@dataclass
class FixpointRun:
    """Outcome of a stage-materializing fixpoint evaluation."""

    relation: Relation
    decoded: DecodedRelation
    normal_form: Term
    stages: int
    stage_sizes: List[int]
    converged_at: Optional[int]
    #: Total NBE reduction steps across every stage normalization — the
    #: quantity the Theorem 5.1/5.2 cost certificates bound.
    nbe_steps: int = 0


def run_fixpoint_query(
    query: FixpointQuery,
    database: Database,
    *,
    style: str = "tli",
    stop_on_convergence: bool = True,
    max_depth: int = 1_000_000,
    observer: Optional[Callable[[dict], None]] = None,
    read_trace: Optional[Set[str]] = None,
) -> FixpointRun:
    """Evaluate a fixpoint query over ``database`` in polynomial time.

    ``style`` selects which compiled term's reduction is being followed
    ("tli" uses the Copy-laundered subterms, "mli" the let-polymorphic
    ones); both produce the same stages.  With ``stop_on_convergence``
    (default) the iteration stops early once a stage repeats — sound for
    inflationary steps, and exactly how the paper argues the ``|D|^k``
    Crank length suffices.  Set it to False to run all ``|D|^k`` stages,
    mirroring the Crank literally.

    ``observer`` receives one step-breakdown dict per stage normalization
    (the :mod:`repro.obs.profiler` contract), so an accumulating observer
    sees the same total the returned ``nbe_steps`` reports.

    ``read_trace`` (when supplied) collects the names of the database
    relations the evaluation actually consumed — the instrumented trace
    the provenance tests compare against the static read-set.

    The evaluation is restricted to the query's *input schema*: the
    compiled tower ``λR̄. ...`` binds exactly the schema relations, so a
    database carrying extra relations must not be encoded wholesale (an
    over-applied tower leaves a stuck application spine that only fails
    at decode time).  A database *missing* a schema relation, or carrying
    it at the wrong arity, is rejected up front with a TLI024-coded
    :class:`~repro.errors.SchemaError`.
    """
    if style == "tli":
        from repro.queries.fixpoint import copy_gadget_term

        def laundered(name: str) -> Term:
            return app(
                copy_gadget_term(query.schema()[name], query.output_arity),
                Var(name),
            )
    elif style == "mli":
        def laundered(name: str) -> Term:
            return Var(name)
    else:
        raise EvaluationError(f"unknown style {style!r}")

    schema = query.schema()
    names = list(query.input_names())
    k = query.output_arity

    problems = []
    for name in names:
        if name not in database:
            problems.append(f"input relation {name!r} is missing")
        elif database[name].arity != schema[name]:
            problems.append(
                f"input {name!r} expects arity {schema[name]}, database "
                f"has arity {database[name].arity}"
            )
    if problems:
        raise SchemaError(
            "[TLI024] fixpoint query does not fit the database schema: "
            + "; ".join(problems)
        )

    # Restrict to the schema relations, in schema order: the tower binds
    # exactly these, and the Crank length / active domain range over them.
    inputs_db = Database(tuple((name, database[name]) for name in names))
    if read_trace is not None:
        read_trace.update(names)

    encoded_inputs = encode_database(inputs_db)

    # Materialize the active-domain list once (by Church-Rosser this is the
    # same reduction the whole-term evaluation performs lazily at every
    # FuncToList' nesting level; materializing it keeps each domain sweep a
    # walk over a literal list).
    nbe_steps = 0

    def normalize(term: Term) -> Term:
        nonlocal nbe_steps
        normal, steps = nbe_normalize_counted(
            term, max_depth=max_depth, observer=observer
        )
        nbe_steps += steps
        return normal

    domain_term = active_domain_expr_term(schema, laundered)
    domain_literal = normalize(
        app(lam(names, domain_term), *encoded_inputs)
    )
    func_to_list = func_to_list_term(k, domain_literal)
    list_to_func = list_to_func_term(k)

    # G(S) = FuncToList'(ListToFunc'((λR. M') S)), closed over the inputs.
    # The composition is normalized in pieces so intermediates are
    # *materialized* before anything sweeps against them — otherwise every
    # membership test would re-run the intermediate's construction, which
    # is precisely the recomputation the specialized data structures exist
    # to avoid.  By Church-Rosser the split changes nothing about the
    # result: the step is evaluated operator-by-operator (each operator
    # application normalized against materialized encodings — note that
    # ``Copy_i R_i`` normalizes to the identical encoding of ``R_i``, so
    # the laundered and plain subterms contribute the same lists), and the
    # reencoding pass runs against the materialized step output.
    reencode_map = lam(
        names + ["STAGE"],
        app(func_to_list, app(list_to_func, Var("STAGE"))),
    )
    initial = lam(
        names,
        app(func_to_list, empty_characteristic_term(k)),
    )

    crank_length = len(inputs_db.active_domain()) ** k

    from repro.eval.materialize import run_ra_query_materialized

    stage = normalize(app(initial, *encoded_inputs))
    stage_relation = decode_relation(stage, k).relation
    stage_sizes = [len(stage_relation)]
    converged_at: Optional[int] = None
    stages_run = 0
    for index in range(crank_length):
        step_db = inputs_db.with_relation(FIX_NAME, stage_relation)
        step_run = run_ra_query_materialized(
            query.effective_step(), step_db, max_depth=max_depth,
            observer=observer, read_trace=read_trace,
        )
        # The step output is already deduplicated here (sound because
        # ListToFunc' only ever tests membership in its list argument —
        # first-match semantics — so neither duplicates nor order of the
        # intermediate can influence any later stage; and it bounds every
        # intermediate by |D|^k tuples).
        step_relation = step_run.relation
        if step_run.steps is not None:
            nbe_steps += step_run.steps
        deduped = encode_relation(step_relation)
        next_stage = normalize(
            app(reencode_map, *encoded_inputs, deduped)
        )
        next_relation = decode_relation(next_stage, k).relation
        stages_run += 1
        stage_sizes.append(len(next_relation))
        # Stage normal forms are deterministic functions of the accepted
        # tuple set (FuncToList' enumerates the domain in a fixed order),
        # so comparing the decoded relations compares the terms without a
        # deep structural recursion.
        if next_relation == stage_relation:
            converged_at = index + 1
            stage = next_stage
            stage_relation = next_relation
            if stop_on_convergence:
                break
        stage = next_stage
        stage_relation = next_relation

    if read_trace is not None:
        # The stage relation is evaluator-internal, not a database read.
        read_trace.discard(FIX_NAME)
    decoded = decode_relation(stage, k)
    return FixpointRun(
        relation=decoded.relation,
        decoded=decoded,
        normal_form=stage,
        stages=stages_run,
        stage_sizes=stage_sizes,
        converged_at=converged_at,
        nbe_steps=nbe_steps,
    )


def ptime_normalize_fixpoint(
    query: FixpointQuery,
    database: Database,
    style: str = "tli",
) -> Term:
    """The normal form of ``(Fix r̄1 ... r̄l)`` computed stage-wise."""
    return run_fixpoint_query(query, database, style=style).normal_form
