"""Structure analysis of canonical TLI=0 / MLI=0 terms (Lemmas 5.5, 5.6).

Lemma 5.6 classifies every subterm of a canonical TLI=0/MLI=0 query body
``λc. λn. Q0`` by its canonical type:

type ``g`` (the output/accumulator sort):

1. ``R_i (λx̄. λy:g. M) N`` — a list iteration with accumulator ``y``;
2. ``Eq S T U V`` — a conditional on two ``o``-terms;
3. ``c T1 ... Tk T_{k+1}`` — an output tuple constructor;
4. an accumulator variable or ``n``;

type ``o`` (tuple components):

5. ``R_i (λx̄. λy:o. M) N`` — an iteration with accumulator of type ``o``;
6. an iteration variable or an ``o``-typed accumulator variable;
7. an atomic constant.

This module turns the canonical term into an explicit IR of exactly these
shapes (rejecting anything else with :class:`CanonicalFormError`, which
makes the lemma executable), for consumption by the Section 5.2 translation
in :mod:`repro.eval.fo_translation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

from repro.errors import CanonicalFormError
from repro.eval.canonical import CanonicalQuery
from repro.lam.terms import Abs, Const, EqConst, Term, Var, spine


# ---------------------------------------------------------------------------
# IR node types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OConstIR:
    """Case 7: an atomic constant."""

    name: str


@dataclass(frozen=True)
class OVarIR:
    """Case 6: an iteration variable or ``o``-typed accumulator variable."""

    name: str


@dataclass(frozen=True)
class OIterIR:
    """Case 5: ``R_i (λx̄. λacc:o. body) init`` producing an ``o`` value."""

    input_index: int
    occurrence: str
    tuple_vars: Tuple[str, ...]
    acc_var: str
    body: "OTermIR"
    init: "OTermIR"


OTermIR = Union[OConstIR, OVarIR, OIterIR]


@dataclass(frozen=True)
class TailVarIR:
    """Case 4: an accumulator variable of type ``g`` (or the outer ``n``)."""

    name: str


@dataclass(frozen=True)
class ConsIR:
    """Case 3: ``c T1 ... Tk tail``."""

    components: Tuple[OTermIR, ...]
    tail: "GTermIR"


@dataclass(frozen=True)
class EqIR:
    """Case 2: ``Eq S T U V``."""

    left: OTermIR
    right: OTermIR
    then_branch: "GTermIR"
    else_branch: "GTermIR"


@dataclass(frozen=True)
class IterIR:
    """Case 1: ``R_i (λx̄. λacc:g. body) init``."""

    input_index: int
    occurrence: str
    tuple_vars: Tuple[str, ...]
    acc_var: str
    body: "GTermIR"
    init: "GTermIR"


GTermIR = Union[TailVarIR, ConsIR, EqIR, IterIR]


@dataclass
class AnalyzedQuery:
    """The Lemma 5.6 decomposition of a canonical query."""

    canonical: CanonicalQuery
    cons_var: str
    nil_var: str
    body: GTermIR


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------


def analyze_query(canonical: CanonicalQuery) -> AnalyzedQuery:
    """Decompose the canonical body per Lemma 5.6.

    Raises :class:`CanonicalFormError` if any subterm falls outside the
    allowed shapes — for genuine canonical TLI=0/MLI=0 terms this cannot
    happen (that is the content of the lemma), so a raise means the input
    was not an order-0 query term.
    """
    body = canonical.body
    if not (isinstance(body, Abs) and isinstance(body.body, Abs)):
        raise CanonicalFormError(
            "canonical body must start with the c and n binders"
        )
    cons_var = body.var
    nil_var = body.body.var
    analyzer = _Analyzer(canonical, cons_var, nil_var)
    ir = analyzer.g_term(body.body.body, {nil_var})
    return AnalyzedQuery(
        canonical=canonical, cons_var=cons_var, nil_var=nil_var, body=ir
    )


class _Analyzer:
    def __init__(self, canonical: CanonicalQuery, cons: str, nil: str):
        self.canonical = canonical
        self.cons = cons
        self.nil = nil
        self.output_arity = canonical.arity.output

    def g_term(self, term: Term, g_vars: set) -> GTermIR:
        """Classify a type-``g`` subterm (cases 1-4).

        ``g_vars`` is the set of accumulator variables (plus ``n``) in
        scope; ``o``-sorted variables are tracked implicitly by the
        ``o_term`` classifier.
        """
        head, args = spine(term)
        if isinstance(head, Var) and head.name in self.canonical.occurrences:
            return self._iteration(head.name, args, g_vars, sort="g")
        if isinstance(head, EqConst):
            if len(args) != 4:
                raise CanonicalFormError(
                    f"Eq applied to {len(args)} arguments (canonical forms "
                    f"apply it to exactly 4)"
                )
            return EqIR(
                left=self.o_term(args[0]),
                right=self.o_term(args[1]),
                then_branch=self.g_term(args[2], g_vars),
                else_branch=self.g_term(args[3], g_vars),
            )
        if isinstance(head, Var) and head.name == self.cons:
            if len(args) != self.output_arity + 1:
                raise CanonicalFormError(
                    f"constructor {self.cons} applied to {len(args)} "
                    f"arguments, expected {self.output_arity + 1}"
                )
            return ConsIR(
                components=tuple(self.o_term(a) for a in args[:-1]),
                tail=self.g_term(args[-1], g_vars),
            )
        if isinstance(head, Var) and not args:
            if head.name in g_vars:
                return TailVarIR(head.name)
            raise CanonicalFormError(
                f"variable {head.name} of type g is neither an accumulator "
                f"in scope nor {self.nil}"
            )
        raise CanonicalFormError(
            f"subterm {term.pretty()} matches no Lemma 5.6 case for type g"
        )

    def o_term(self, term: Term) -> OTermIR:
        """Classify a type-``o`` subterm (cases 5-7)."""
        head, args = spine(term)
        if isinstance(head, Const) and not args:
            return OConstIR(head.name)
        if isinstance(head, Var) and head.name in self.canonical.occurrences:
            return self._iteration(head.name, args, set(), sort="o")
        if isinstance(head, Var) and not args:
            return OVarIR(head.name)
        raise CanonicalFormError(
            f"subterm {term.pretty()} matches no Lemma 5.6 case for type o"
        )

    def _iteration(
        self, occurrence: str, args, g_vars: set, sort: str
    ) -> Union[IterIR, OIterIR]:
        if len(args) != 2:
            raise CanonicalFormError(
                f"iteration over {occurrence} with {len(args)} arguments "
                f"(canonical forms apply iterators to exactly 2)"
            )
        arity = self.canonical.input_arity(occurrence)
        loop, init = args
        binders: List[str] = []
        node = loop
        while isinstance(node, Abs) and len(binders) < arity + 1:
            binders.append(node.var)
            node = node.body
        if len(binders) != arity + 1:
            raise CanonicalFormError(
                f"iteration body over {occurrence} binds {len(binders)} "
                f"variables, expected {arity + 1} (canonical form)"
            )
        tuple_vars = tuple(binders[:arity])
        acc_var = binders[arity]
        index = self.canonical.occurrences[occurrence]
        if sort == "g":
            return IterIR(
                input_index=index,
                occurrence=occurrence,
                tuple_vars=tuple_vars,
                acc_var=acc_var,
                body=self.g_term(node, (g_vars | {acc_var})),
                init=self.g_term(init, g_vars),
            )
        return OIterIR(
            input_index=index,
            occurrence=occurrence,
            tuple_vars=tuple_vars,
            acc_var=acc_var,
            body=self.o_term(node),
            init=self.o_term(init),
        )
