"""First-order logic over list-represented databases (Definition 3.5).

Formulas are built from relation atoms, equality atoms, and the interpreted
tuple-order atoms ``Precedes_i`` ("each < i specifying a total order among
the tuples interpreting R_i"), closed under boolean connectives and
quantifiers.  Quantifiers range over the active domain (optionally extended
with the constants the formula itself mentions), exactly as in the paper's
FO-query definition where the output is a subset of ``D^k``.
"""

from repro.folog.formulas import (
    And,
    Atom,
    Equals,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    FTerm,
    FVar,
    FConst,
    Not,
    Or,
    Precedes,
    TrueFormula,
    formula_free_vars,
)
from repro.folog.evaluate import evaluate_formula, evaluate_fo_query

__all__ = [
    "And",
    "Atom",
    "Equals",
    "Exists",
    "FConst",
    "FTerm",
    "FVar",
    "FalseFormula",
    "Forall",
    "Formula",
    "Not",
    "Or",
    "Precedes",
    "TrueFormula",
    "evaluate_fo_query",
    "evaluate_formula",
    "formula_free_vars",
]
