"""Evaluating first-order formulas over list-represented databases.

The structure interpreting a formula is ``(D, r1, ..., rl, <1, ..., <l)``
(Definition 3.5): the active domain, the input relations, and their tuple
orders.  Quantifiers range over the evaluation domain, which is the active
domain extended with any extra constants the caller supplies (the FO
translation of Section 5.2 mentions query constants that may be absent
from the database).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.db.relations import Database, Relation
from repro.errors import EvaluationError
from repro.folog.formulas import (
    And,
    Atom,
    Equals,
    Exists,
    FConst,
    FTerm,
    FVar,
    FalseFormula,
    Forall,
    Formula,
    Not,
    Or,
    Precedes,
    TrueFormula,
    formula_constants,
    formula_free_vars,
)


def _resolve(term: FTerm, assignment: Dict[str, str]) -> str:
    if isinstance(term, FConst):
        return term.name
    if isinstance(term, FVar):
        try:
            return assignment[term.name]
        except KeyError:
            raise EvaluationError(
                f"unbound variable {term.name} during FO evaluation"
            ) from None
    raise TypeError(f"not a term: {term!r}")


class _Structure:
    """Pre-indexed database for formula evaluation."""

    def __init__(self, database: Database, extra_constants: Iterable[str]):
        self.relations: Dict[str, frozenset] = {}
        self.positions: Dict[str, Dict[Tuple[str, ...], int]] = {}
        for name, relation in database:
            self.relations[name] = relation.as_set()
            self.positions[name] = {
                row: index for index, row in enumerate(relation.tuples)
            }
        domain = list(database.active_domain())
        for constant in extra_constants:
            if constant not in domain:
                domain.append(constant)
        self.domain = domain

    def holds_atom(self, name: str, row: Tuple[str, ...]) -> bool:
        try:
            return row in self.relations[name]
        except KeyError:
            raise EvaluationError(f"unknown relation {name!r}") from None

    def holds_precedes(
        self, name: str, left: Tuple[str, ...], right: Tuple[str, ...]
    ) -> bool:
        positions = self.positions.get(name)
        if positions is None:
            raise EvaluationError(f"unknown relation {name!r}")
        left_pos = positions.get(left)
        right_pos = positions.get(right)
        if left_pos is None or right_pos is None:
            return False
        return left_pos < right_pos


def evaluate_formula(
    formula: Formula,
    database: Database,
    assignment: Optional[Dict[str, str]] = None,
    extra_constants: Iterable[str] = (),
) -> bool:
    """Does the structure of ``database`` satisfy ``formula`` under
    ``assignment``?  All free variables must be assigned."""
    structure = _Structure(database, extra_constants)
    return _eval(formula, structure, dict(assignment or {}))


def _eval(
    formula: Formula, structure: _Structure, assignment: Dict[str, str]
) -> bool:
    if isinstance(formula, TrueFormula):
        return True
    if isinstance(formula, FalseFormula):
        return False
    if isinstance(formula, Atom):
        row = tuple(_resolve(t, assignment) for t in formula.terms)
        return structure.holds_atom(formula.relation, row)
    if isinstance(formula, Equals):
        return _resolve(formula.left, assignment) == _resolve(
            formula.right, assignment
        )
    if isinstance(formula, Precedes):
        left = tuple(_resolve(t, assignment) for t in formula.left)
        right = tuple(_resolve(t, assignment) for t in formula.right)
        return structure.holds_precedes(formula.relation, left, right)
    if isinstance(formula, And):
        return _eval(formula.left, structure, assignment) and _eval(
            formula.right, structure, assignment
        )
    if isinstance(formula, Or):
        return _eval(formula.left, structure, assignment) or _eval(
            formula.right, structure, assignment
        )
    if isinstance(formula, Not):
        return not _eval(formula.inner, structure, assignment)
    if isinstance(formula, Exists):
        shadowed = assignment.get(formula.var)
        for value in structure.domain:
            assignment[formula.var] = value
            if _eval(formula.body, structure, assignment):
                _restore(assignment, formula.var, shadowed)
                return True
        _restore(assignment, formula.var, shadowed)
        return False
    if isinstance(formula, Forall):
        shadowed = assignment.get(formula.var)
        for value in structure.domain:
            assignment[formula.var] = value
            if not _eval(formula.body, structure, assignment):
                _restore(assignment, formula.var, shadowed)
                return False
        _restore(assignment, formula.var, shadowed)
        return True
    raise TypeError(f"not a formula: {formula!r}")


def _restore(assignment: Dict[str, str], var: str, shadowed) -> None:
    if shadowed is None:
        assignment.pop(var, None)
    else:
        assignment[var] = shadowed


def evaluate_fo_query(
    formula: Formula,
    output_vars: Sequence[str],
    database: Database,
    extra_constants: Iterable[str] = (),
    include_formula_constants: bool = False,
) -> Relation:
    """The FO-query defined by ``formula`` with the given free variables
    (Definition 3.5): ``{x̄ in D^k : structure satisfies formula(x̄)}``.

    The output is enumerated in lexicographic domain order (a canonical
    list-representation).  Free variables of the formula must be among
    ``output_vars``.  By default, quantifiers and output variables range
    over the database's active domain plus ``extra_constants``;
    ``include_formula_constants=True`` additionally adjoins the constants
    the formula mentions (the domain the Section 5.2 translation uses,
    since a query term may cons constants absent from the database).
    """
    free = formula_free_vars(formula)
    missing = free - set(output_vars)
    if missing:
        raise EvaluationError(
            f"free variables {sorted(missing)} not among output variables"
        )
    extra = set(extra_constants)
    if include_formula_constants:
        extra |= set(formula_constants(formula))
    structure = _Structure(database, sorted(extra))
    rows: List[Tuple[str, ...]] = []

    def enumerate_assignments(index: int, assignment: Dict[str, str]):
        if index == len(output_vars):
            if _eval(formula, structure, assignment):
                rows.append(
                    tuple(assignment[name] for name in output_vars)
                )
            return
        for value in structure.domain:
            assignment[output_vars[index]] = value
            enumerate_assignments(index + 1, assignment)
        assignment.pop(output_vars[index], None)

    enumerate_assignments(0, {})
    return Relation.from_tuples(len(output_vars), rows)
