"""First-order formula AST (Definition 3.5).

Terms are variables or constants; atoms are relation memberships
``R(t1, ..., tk)``, equalities ``t1 = t2``, and the interpreted list-order
atoms ``Precedes_R(s̄; t̄)`` comparing two tuples of the input ``R``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple


class FTerm:
    """Base class of first-order terms."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class FVar(FTerm):
    """A first-order variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class FConst(FTerm):
    """A constant (an element of the universe ``O``)."""

    name: str

    def __str__(self) -> str:
        return f"'{self.name}'"


class Formula:
    """Base class of formulas, with connective sugar: ``&``, ``|``, ``~``."""

    __slots__ = ()

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True, slots=True)
class TrueFormula(Formula):
    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True, slots=True)
class FalseFormula(Formula):
    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True, slots=True)
class Atom(Formula):
    """``relation(terms)``."""

    relation: str
    terms: Tuple[FTerm, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.terms)
        return f"{self.relation}({inner})"


@dataclass(frozen=True, slots=True)
class Equals(Formula):
    left: FTerm
    right: FTerm

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True, slots=True)
class Precedes(Formula):
    """``Precedes_relation(left_tuple; right_tuple)``: both tuples occur in
    the (list-represented) input and the left one is strictly earlier."""

    relation: str
    left: Tuple[FTerm, ...]
    right: Tuple[FTerm, ...]

    def __str__(self) -> str:
        lhs = ", ".join(str(t) for t in self.left)
        rhs = ", ".join(str(t) for t in self.right)
        return f"Precedes_{self.relation}({lhs}; {rhs})"


@dataclass(frozen=True, slots=True)
class And(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@dataclass(frozen=True, slots=True)
class Or(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True, slots=True)
class Not(Formula):
    inner: Formula

    def __str__(self) -> str:
        return f"~{self.inner}"


@dataclass(frozen=True, slots=True)
class Exists(Formula):
    var: str
    body: Formula

    def __str__(self) -> str:
        return f"(exists {self.var}. {self.body})"


@dataclass(frozen=True, slots=True)
class Forall(Formula):
    var: str
    body: Formula

    def __str__(self) -> str:
        return f"(forall {self.var}. {self.body})"


def exists_many(names, body: Formula) -> Formula:
    """``exists x1 ... xn. body``."""
    result = body
    for name in reversed(list(names)):
        result = Exists(name, result)
    return result


def forall_many(names, body: Formula) -> Formula:
    """``forall x1 ... xn. body``."""
    result = body
    for name in reversed(list(names)):
        result = Forall(name, result)
    return result


def and_all(formulas) -> Formula:
    """Conjunction of a sequence (``true`` when empty)."""
    formulas = list(formulas)
    if not formulas:
        return TrueFormula()
    result = formulas[0]
    for part in formulas[1:]:
        result = And(result, part)
    return result


def or_all(formulas) -> Formula:
    """Disjunction of a sequence (``false`` when empty)."""
    formulas = list(formulas)
    if not formulas:
        return FalseFormula()
    result = formulas[0]
    for part in formulas[1:]:
        result = Or(result, part)
    return result


def _term_vars(term: FTerm) -> FrozenSet[str]:
    if isinstance(term, FVar):
        return frozenset((term.name,))
    return frozenset()


def formula_free_vars(formula: Formula) -> FrozenSet[str]:
    """The free variables of ``formula``."""
    if isinstance(formula, (TrueFormula, FalseFormula)):
        return frozenset()
    if isinstance(formula, Atom):
        result: FrozenSet[str] = frozenset()
        for term in formula.terms:
            result |= _term_vars(term)
        return result
    if isinstance(formula, Equals):
        return _term_vars(formula.left) | _term_vars(formula.right)
    if isinstance(formula, Precedes):
        result = frozenset()
        for term in formula.left + formula.right:
            result |= _term_vars(term)
        return result
    if isinstance(formula, (And, Or)):
        return formula_free_vars(formula.left) | formula_free_vars(
            formula.right
        )
    if isinstance(formula, Not):
        return formula_free_vars(formula.inner)
    if isinstance(formula, (Exists, Forall)):
        return formula_free_vars(formula.body) - {formula.var}
    raise TypeError(f"not a formula: {formula!r}")


def formula_constants(formula: Formula) -> FrozenSet[str]:
    """The constants mentioned anywhere in ``formula``."""
    if isinstance(formula, Atom):
        return frozenset(
            t.name for t in formula.terms if isinstance(t, FConst)
        )
    if isinstance(formula, Equals):
        return frozenset(
            t.name
            for t in (formula.left, formula.right)
            if isinstance(t, FConst)
        )
    if isinstance(formula, Precedes):
        return frozenset(
            t.name
            for t in formula.left + formula.right
            if isinstance(t, FConst)
        )
    if isinstance(formula, (And, Or)):
        return formula_constants(formula.left) | formula_constants(
            formula.right
        )
    if isinstance(formula, Not):
        return formula_constants(formula.inner)
    if isinstance(formula, (Exists, Forall)):
        return formula_constants(formula.body)
    return frozenset()


def formula_size(formula: Formula) -> int:
    """Number of AST nodes — used to report translation blowup (E2)."""
    if isinstance(formula, (And, Or)):
        return 1 + formula_size(formula.left) + formula_size(formula.right)
    if isinstance(formula, Not):
        return 1 + formula_size(formula.inner)
    if isinstance(formula, (Exists, Forall)):
        return 1 + formula_size(formula.body)
    return 1
