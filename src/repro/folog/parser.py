"""Text syntax for first-order formulas (Definition 3.5 front-end).

Grammar (loosest binding first; quantifier bodies extend right):

    formula ::= quantified | implication
    quantified ::= ("exists" | "forall") name+ "." formula
    implication ::= disjunction ("->" disjunction)?
    disjunction ::= conjunction ("|" conjunction)*
    conjunction ::= negation ("&" negation)*
    negation ::= "~" negation | atom
    atom ::= "(" formula ")" | "true" | "false"
           | name "(" terms ")"                      relation atom
           | "precedes" "[" name "]" "(" terms ";" terms ")"
           | term "=" term
    term ::= name | "'" ... "'"

Lowercase identifiers are variables; quoted strings and names matching the
``o<digits>`` convention are constants (any other name can be forced to a
constant via the ``constants`` argument).  Relation names are whatever the
schema declares — they are recognized positionally (a name followed by an
opening parenthesis).

Example:   ``exists y. R(x, y) & ~S(y, x) | x = 'alice'``
"""

from __future__ import annotations

import re
from typing import Iterable, List, Set

from repro.errors import ParseError
from repro.folog.formulas import (
    And,
    Atom,
    Equals,
    Exists,
    FConst,
    FTerm,
    FVar,
    FalseFormula,
    Forall,
    Formula,
    Not,
    Or,
    Precedes,
    TrueFormula,
)
from repro.naming import constant_index

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>->)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<comma>,)
  | (?P<semicolon>;)
  | (?P<dot>\.)
  | (?P<amp>&)
  | (?P<pipe>\|)
  | (?P<tilde>~)
  | (?P<equals>=)
  | (?P<quoted>'[^']*')
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"exists", "forall", "true", "false", "precedes"}


def _tokenize(source: str):
    tokens = []
    index = 0
    while index < len(source):
        match = _TOKEN_RE.match(source, index)
        if match is None:
            raise ParseError(
                f"unexpected character {source[index]!r}", index, source
            )
        kind = match.lastgroup
        text = match.group()
        if kind != "ws":
            if kind == "name" and text in _KEYWORDS:
                kind = text
            tokens.append((kind, text, index))
        index = match.end()
    tokens.append(("eof", "", len(source)))
    return tokens


class _Parser:
    def __init__(self, source: str, constants: Set[str]):
        self.source = source
        self.tokens = _tokenize(source)
        self.pos = 0
        self.constants = constants

    def peek(self):
        return self.tokens[self.pos]

    def next(self):
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str):
        token = self.peek()
        if token[0] != kind:
            raise ParseError(
                f"expected {kind}, found {token[0]} {token[1]!r}",
                token[2],
                self.source,
            )
        return self.next()

    # -- grammar -------------------------------------------------------------

    def formula(self) -> Formula:
        token = self.peek()
        if token[0] in ("exists", "forall"):
            self.next()
            names = [self.expect("name")[1]]
            while self.peek()[0] == "name":
                names.append(self.next()[1])
            self.expect("dot")
            body = self.formula()
            wrapper = Exists if token[0] == "exists" else Forall
            for name in reversed(names):
                body = wrapper(name, body)
            return body
        return self.implication()

    def implication(self) -> Formula:
        left = self.disjunction()
        if self.peek()[0] == "arrow":
            self.next()
            right = self.disjunction()
            return Or(Not(left), right)
        return left

    def disjunction(self) -> Formula:
        result = self.conjunction()
        while self.peek()[0] == "pipe":
            self.next()
            result = Or(result, self.conjunction())
        return result

    def conjunction(self) -> Formula:
        result = self.negation()
        while self.peek()[0] == "amp":
            self.next()
            result = And(result, self.negation())
        return result

    def negation(self) -> Formula:
        if self.peek()[0] == "tilde":
            self.next()
            return Not(self.negation())
        return self.atom()

    def atom(self) -> Formula:
        token = self.peek()
        if token[0] == "lparen":
            self.next()
            inner = self.formula()
            self.expect("rparen")
            return inner
        if token[0] == "true":
            self.next()
            return TrueFormula()
        if token[0] == "false":
            self.next()
            return FalseFormula()
        if token[0] == "precedes":
            self.next()
            self.expect("lbracket")
            relation = self.expect("name")[1]
            self.expect("rbracket")
            self.expect("lparen")
            left = self.term_list()
            self.expect("semicolon")
            right = self.term_list()
            self.expect("rparen")
            return Precedes(relation, tuple(left), tuple(right))
        if token[0] in ("name", "quoted"):
            # Either a relation atom (name followed by "(") or an equality.
            if token[0] == "name" and self.tokens[self.pos + 1][0] == "lparen":
                name = self.next()[1]
                self.expect("lparen")
                terms = self.term_list()
                self.expect("rparen")
                return Atom(name, tuple(terms))
            left = self.term()
            self.expect("equals")
            right = self.term()
            return Equals(left, right)
        raise ParseError(
            f"expected a formula, found {token[0]} {token[1]!r}",
            token[2],
            self.source,
        )

    def term_list(self) -> List[FTerm]:
        terms = [self.term()]
        while self.peek()[0] == "comma":
            self.next()
            terms.append(self.term())
        return terms

    def term(self) -> FTerm:
        token = self.peek()
        if token[0] == "quoted":
            self.next()
            return FConst(token[1][1:-1])
        name = self.expect("name")[1]
        if name in self.constants or constant_index(name) is not None:
            return FConst(name)
        return FVar(name)


def parse_formula(source: str, constants: Iterable[str] = ()) -> Formula:
    """Parse a first-order formula.

    ``constants`` lists extra names (beyond quoting and the ``o<digits>``
    convention) to read as constants rather than variables.
    """
    parser = _Parser(source, set(constants))
    result = parser.formula()
    trailing = parser.peek()
    if trailing[0] != "eof":
        raise ParseError(
            f"trailing input: {trailing[1]!r}", trailing[2], source
        )
    return result
