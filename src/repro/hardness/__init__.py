"""The Section 6 complexity lab: type reconstruction at fixed order.

Section 6 of the paper derives an NP-hardness lower bound for ML type
reconstruction in fixed-order fragments such as MLI=1, "a modification of
the one given in [31] ... based on the construction of terms with low
functionality order, but high arity", complementing the unbounded-order
EXPTIME-completeness results of [31, 32].  The construction itself lies in
the truncated part of our source text, so — per the substitution policy in
DESIGN.md — this package reconstructs the *mechanism* the theorem rests on
and measures it:

* :mod:`repro.hardness.gadgets` — the classical Kanellakis–Mitchell/Mairson
  let-doubling families whose principal types have exponential tree size
  (kept polynomial only by DAG/triangular representation), the contrasting
  TLC= families with linear-time reconstruction, and low-order/high-arity
  families built from the paper's own relational operators;
* :mod:`repro.hardness.sat` — 3-SAT instances and a brute-force solver;
* :mod:`repro.hardness.reduction` — a 3-SAT-shaped term-family generator
  embedding clause structure into let-polymorphic unification workloads,
  used by benchmark B5's scaling study.

What these reproduce: the paper's qualitative claim that "the common
practice of programming with low order functionalities ... does not avoid
the worst-case intricacies of ML-type reconstruction".  What they do not:
the literal NP-hardness reduction, which the available text does not
contain (see DESIGN.md, Substitution 1).
"""

from repro.hardness.gadgets import (
    let_pairing_chain,
    pairing_chain_expanded_size,
    principal_type_tree_size,
    tlc_linear_family,
    wide_equality_family,
)
from repro.hardness.sat import (
    CNF,
    Clause,
    brute_force_satisfiable,
    random_cnf,
)
from repro.hardness.reduction import cnf_to_ml_term

__all__ = [
    "CNF",
    "Clause",
    "brute_force_satisfiable",
    "cnf_to_ml_term",
    "let_pairing_chain",
    "pairing_chain_expanded_size",
    "principal_type_tree_size",
    "random_cnf",
    "tlc_linear_family",
    "wide_equality_family",
]
