"""Type-blowup gadget families (Section 6 / [31, 32] mechanism).

The source of ML reconstruction hardness is that principal types can be
exponentially larger than the program: let-polymorphism lets each use of a
definition instantiate it independently, and self-pairing doubles the type
per definition.  The families here make that measurable:

* :func:`let_pairing_chain` — the classical chain

      λx0. let x1 = λp. p x0 x0 in
           let x2 = λp. p x1 x1 in ... xn

  whose principal type has tree size Θ(2^n) (the DAG stays linear, which
  is why the triangular substitution of :mod:`repro.types.unify` matters);
* :func:`tlc_linear_family` — a same-shape TLC= family (no lets, no
  self-pairing) whose reconstruction is linear, the paper's Section 2.1
  baseline;
* :func:`wide_equality_family` — low-order / high-arity terms built from
  the paper's own ``Equal_k`` machinery: order stays at 2-3 while the
  number of distinct type positions grows with ``k``.
"""

from __future__ import annotations

from typing import Dict

from repro.lam.terms import Abs, Term, Var, app, lam, let
from repro.types.types import Arrow, Type
from repro.types.unify import Substitution


def let_pairing_chain(depth: int) -> Term:
    """``λx0. let x1 = λp. p x0 x0 in ... let xn = λp. p x_{n-1} x_{n-1}
    in xn`` — principal type of tree size Θ(2^depth)."""
    if depth < 0:
        raise ValueError("depth must be nonnegative")
    body: Term = Var(f"x{depth}")
    for level in range(depth, 0, -1):
        previous = Var(f"x{level - 1}")
        pair = lam("p", app(Var("p"), previous, previous))
        body = let(f"x{level}", pair, body)
    return Abs("x0", body)


def monomorphic_pairing_chain(depth: int) -> Term:
    """The same chain with lets read monomorphically (TLC=): still typable
    — each ``x_i`` is used once per pairing — and still exponentially
    typed; the contrast with :func:`tlc_linear_family` isolates
    *self-pairing*, not let, as the doubling engine."""
    return let_pairing_chain(depth)


def tlc_linear_family(depth: int) -> Term:
    """``λx0. λf. f (f ... (f x0))`` — a TLC= family of the same size whose
    principal type stays constant-size (reconstruction is linear)."""
    body: Term = Var("x0")
    for _ in range(depth):
        body = app(Var("f"), body)
    return lam(["x0", "f"], body)


def wide_equality_family(arity: int) -> Term:
    """A low-order, high-arity term: the paper's ``Equal_k`` at ``k =
    arity`` applied to shared variables, wrapped in lets so every clause of
    the equality chain is let-polymorphic.

    Order stays at most 2; the unification problem grows with ``arity``
    (2k binder types plus k Eq constraints).
    """
    from repro.queries.operators import equal_term

    xs = [f"a{i}" for i in range(arity)]
    shared = lam(
        xs,
        app(
            equal_term(arity),
            *[Var(x) for x in xs],
            *[Var(x) for x in reversed(xs)],
        ),
    )
    return let("eq_wide", shared, Var("eq_wide"))


def principal_type_tree_size(subst: Substitution, type_: Type) -> int:
    """Tree size of ``subst.apply(type_)`` computed *without* building the
    tree (memoized over the walked DAG), so exponential principal types can
    be measured in polynomial time."""
    memo: Dict[int, int] = {}

    def size(node: Type) -> int:
        node = subst.walk(node)
        key = id(node)
        cached = memo.get(key)
        if cached is not None:
            return cached
        if isinstance(node, Arrow):
            result = 1 + size(node.left) + size(node.right)
        else:
            result = 1
        memo[key] = result
        return result

    return size(type_)


def pairing_chain_expanded_size(depth: int) -> int:
    """The tree size of the pairing chain's principal type, computed from
    the recurrence (for cross-checking the measured sizes):
    ``s(0) = 1`` (a variable), ``s(i+1) = 2*s(i) + size of the consumer
    arrow scaffolding``."""
    size = 1
    for _ in range(depth):
        # t_{i+1} = (t_i -> t_i -> b) -> b: 2*s + 2 variables + 3 arrows.
        size = 2 * size + 5
    return size
