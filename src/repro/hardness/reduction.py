"""3-SAT-shaped term families for the fixed-order reconstruction study.

Section 6 proves NP-hardness of fixed-order ML reconstruction via "terms
with low functionality order, but high arity"; the gadget itself is in the
truncated part of the text.  This module operationalizes the *shape* of
such instances: :func:`cnf_to_ml_term` embeds a CNF's incidence structure
into a core-ML= term —

* each propositional variable ``v`` becomes a λ-bound term variable
  ``xv`` (so all its occurrences share one reconstruction variable, the
  monomorphic coupling that makes clause gadgets interact);
* each clause becomes a let-bound *selector application*: a
  let-polymorphic 3-argument collector is instantiated at the clause's
  literals, with negated literals routed through a shared flipper so the
  polarity structure shows up in the unification problem;
* clause gadgets are chained so the whole term types at order <= 4 (the
  MLI=1 bound) with arity growing linearly in the clause count.

The family is a *workload generator*: every instance is ML-typable (the
reduction's typable-iff-satisfiable property is exactly the part of the
construction the truncated text withholds), and benchmark B5 measures
reconstruction cost against instance size, alongside the exponential-type
gadgets of :mod:`repro.hardness.gadgets` — together they exhibit the
qualitative Section 6 claim that the order bound does not tame ML
reconstruction.
"""

from __future__ import annotations


from repro.hardness.sat import CNF
from repro.lam.terms import Term, Var, app, lam, let


def cnf_to_ml_term(cnf: CNF) -> Term:
    """Embed ``cnf``'s incidence structure into a core-ML= term.

    The term has one λ binder per propositional variable, one let binder
    per clause plus two shared gadgets, and size O(vars + clauses).
    """
    variable_names = [f"xv{i}" for i in range(1, cnf.num_vars + 1)]

    # The shared collector: forces its three arguments' types into one
    # 3-column row type per instantiation.
    collector = lam(
        ["a", "b", "c", "k"],
        app(Var("k"), Var("a"), Var("b"), Var("c")),
    )
    # The shared flipper: negated literals go through one extra (shared,
    # monomorphic) indirection, coupling all negative occurrences of a
    # variable.
    flipper = lam(["w", "u", "v"], app(Var("w"), Var("v"), Var("u")))

    def literal_term(literal: int) -> Term:
        name = variable_names[abs(literal) - 1]
        if literal > 0:
            return Var(name)
        return app(Var("flip"), Var(name))

    body: Term = lam(["z"], Var("z"))
    for index, clause in enumerate(reversed(cnf.clauses)):
        arguments = [literal_term(l) for l in clause]
        gadget = app(Var("collect"), *arguments)
        body = let(
            f"clause{len(cnf.clauses) - index}",
            gadget,
            body,
        )
    body = let("collect", collector, let("flip", flipper, body))
    return lam(variable_names, body)


def instance_sizes(cnf: CNF) -> dict:
    """Descriptive statistics of the generated term (for reports)."""
    from repro.lam.terms import term_size

    term = cnf_to_ml_term(cnf)
    return {
        "vars": cnf.num_vars,
        "clauses": len(cnf.clauses),
        "term_size": term_size(term),
    }
