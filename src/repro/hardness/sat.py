"""3-SAT instances for the Section 6 scaling study.

Minimal CNF machinery: clauses are tuples of nonzero integers (DIMACS
convention: ``+v`` is the variable, ``-v`` its negation).  The brute-force
solver is the ground truth for the small instances the tests use.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

Clause = Tuple[int, ...]


@dataclass(frozen=True)
class CNF:
    """A CNF formula over variables ``1..num_vars``."""

    num_vars: int
    clauses: Tuple[Clause, ...]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            for literal in clause:
                if literal == 0 or abs(literal) > self.num_vars:
                    raise ValueError(f"bad literal {literal}")

    def __str__(self) -> str:
        parts = [
            "(" + " | ".join(
                (f"x{l}" if l > 0 else f"~x{-l}") for l in clause
            ) + ")"
            for clause in self.clauses
        ]
        return " & ".join(parts) if parts else "true"

    def satisfied_by(self, assignment: Sequence[bool]) -> bool:
        """``assignment[i]`` is the value of variable ``i+1``."""
        for clause in self.clauses:
            if not any(
                assignment[abs(l) - 1] == (l > 0) for l in clause
            ):
                return False
        return True


def brute_force_satisfiable(cnf: CNF) -> Optional[Tuple[bool, ...]]:
    """A satisfying assignment, or ``None`` — exhaustive, for small n."""
    for bits in itertools.product((False, True), repeat=cnf.num_vars):
        if cnf.satisfied_by(bits):
            return bits
    return None


def random_cnf(
    num_vars: int,
    num_clauses: int,
    clause_size: int = 3,
    seed: int = 0,
) -> CNF:
    """A random CNF with distinct variables within each clause."""
    rng = random.Random(seed)
    if clause_size > num_vars:
        raise ValueError("clause size exceeds variable count")
    clauses: List[Clause] = []
    for _ in range(num_clauses):
        chosen = rng.sample(range(1, num_vars + 1), clause_size)
        clauses.append(
            tuple(
                v if rng.random() < 0.5 else -v for v in chosen
            )
        )
    return CNF(num_vars, tuple(clauses))


def pigeonhole_cnf(holes: int) -> CNF:
    """The (unsatisfiable) pigeonhole principle PHP(holes+1, holes) —
    a classically hard family, used to stress the scaling study."""
    pigeons = holes + 1

    def var(p: int, h: int) -> int:
        return p * holes + h + 1

    clauses: List[Clause] = []
    for p in range(pigeons):
        clauses.append(tuple(var(p, h) for h in range(holes)))
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append((-var(p1, h), -var(p2, h)))
    return CNF(pigeons * holes, tuple(clauses))
