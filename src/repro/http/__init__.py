"""The network edge: certified TLI queries served over HTTP/1.1.

A stdlib-asyncio front-end over the in-process
:class:`~repro.service.runtime.QueryService` (PRs 2-6 built the stack;
this package is what finally serves traffic).  What makes the edge more
than a router is *certificate-aware admission control*: every registered
plan carries a Theorem 5.1-style cost certificate, so capacity is
accounted in certified fuel units and overload is rejected at the door
(fast 429/503 + ``Retry-After``) instead of discovered by timeout.

Public API::

    from repro.http import QueryEdge, ServerConfig

    edge = QueryEdge(service, ServerConfig(port=8080, tokens=("s3cret",)))
    asyncio.run(edge.run())        # serves until SIGTERM, drains, returns

or from the command line::

    repro serve --db main=db.json --fixpoint tc=tc --port 8080

See ``docs/http.md`` for endpoints, schemas, and semantics.
"""

from repro.http.admission import AdmissionController, AdmissionTicket
from repro.http.auth import Authenticator
from repro.http.config import ServerConfig
from repro.http.ratelimit import RateLimiter
from repro.http.schemas import (
    ApiError,
    HttpResponse,
    QuerySpec,
    parse_batch_body,
    parse_query_body,
)
from repro.http.server import QueryEdge, render_listen_line

__all__ = [
    "AdmissionController",
    "AdmissionTicket",
    "ApiError",
    "Authenticator",
    "HttpResponse",
    "QueryEdge",
    "QuerySpec",
    "RateLimiter",
    "ServerConfig",
    "parse_batch_body",
    "parse_query_body",
    "render_listen_line",
]
