"""Certificate-aware admission control: capacity accounted in fuel units.

The classical edge problem — how much concurrent work to accept — is
usually solved by guessing (max connections, max requests) and
discovering overload by timeout.  This stack can do better: every
registered plan carries a Theorem 5.1-style cost certificate (tightened
by the abstract interpreter), so *before* a request runs we know an
upper bound on the reduction steps it can consume against its target
database.  Admission therefore prices requests in **certified fuel
units** and keeps two budgets:

* ``capacity`` — fuel that may be *executing* concurrently;
* ``queue_capacity`` — fuel that may be *waiting* for capacity.

A request whose certified fuel fits the free capacity is admitted
immediately.  Otherwise it queues (FIFO) up to ``timeout_s``; a full
queue or an expired wait is a fast, cheap rejection (429/503 with
``Retry-After``) — overload is refused at the door in microseconds, not
discovered by watching a deadline blow N seconds later.  A plan whose
certified fuel exceeds the whole capacity can never run and is rejected
outright.

The controller is asyncio-native (one event loop); fairness is strict
arrival order — a large request at the head of the queue blocks smaller
later ones rather than being starved by them.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict

from repro.http.schemas import ApiError

__all__ = ["AdmissionController", "AdmissionTicket"]

#: Rejection reasons (the ``reason`` label of
#: ``repro_http_rejected_fuel_total``).
REASON_OVERSIZE = "oversize"
REASON_QUEUE_FULL = "queue_full"
REASON_TIMEOUT = "admission_timeout"
REASON_DRAINING = "draining"


@dataclass
class AdmissionTicket:
    """Proof of admission for one request; release exactly once."""

    fuel: int
    queued_ms: float

    def as_dict(self) -> dict:
        return {
            "certified_fuel": self.fuel,
            "queued_ms": round(self.queued_ms, 3),
        }


class _Waiter:
    __slots__ = ("fuel", "event")

    def __init__(self, fuel: int) -> None:
        self.fuel = fuel
        self.event = asyncio.Event()


class AdmissionController:
    """Fuel-denominated admission with a bounded FIFO wait queue."""

    def __init__(
        self,
        capacity: int,
        queue_capacity: int,
        timeout_s: float,
        *,
        retry_after_s: int = 1,
    ) -> None:
        self._capacity = capacity
        self._queue_capacity = queue_capacity
        self._timeout_s = timeout_s
        self._retry_after_s = retry_after_s
        self._inflight_fuel = 0
        self._queue_fuel = 0
        self._waiters: "OrderedDict[int, _Waiter]" = OrderedDict()
        self._next_id = 0

    # -- introspection -------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def inflight_fuel(self) -> int:
        return self._inflight_fuel

    @property
    def queue_fuel(self) -> int:
        return self._queue_fuel

    def snapshot(self) -> Dict[str, int]:
        return {
            "capacity_fuel": self._capacity,
            "inflight_fuel": self._inflight_fuel,
            "queue_fuel": self._queue_fuel,
            "queue_depth": len(self._waiters),
        }

    # -- admission -----------------------------------------------------------

    async def admit(self, fuel: int) -> AdmissionTicket:
        """Admit ``fuel`` units or raise a retryable :class:`ApiError`.

        Raises 429 ``over_capacity`` when the plan can never fit or the
        queue is full, 503 ``admission_timeout`` when capacity did not
        free up within the configured wait.
        """
        fuel = max(1, int(fuel))
        if fuel > self._capacity:
            raise ApiError(
                429, "over_capacity",
                f"certified cost {fuel} exceeds the edge's fuel capacity "
                f"{self._capacity}; this plan cannot be admitted",
                retry_after_s=None,
            )
        if self._admit_now(fuel):
            return AdmissionTicket(fuel=fuel, queued_ms=0.0)
        if self._queue_fuel + fuel > self._queue_capacity:
            raise ApiError(
                429, "over_capacity",
                f"admission queue is full "
                f"({self._queue_fuel}/{self._queue_capacity} fuel queued)",
                retry_after_s=self._retry_after_s,
            )
        waiter = _Waiter(fuel)
        token = self._next_id
        self._next_id += 1
        self._waiters[token] = waiter
        self._queue_fuel += fuel
        start = time.monotonic()
        try:
            await asyncio.wait_for(waiter.event.wait(), self._timeout_s)
            admitted = True
        except asyncio.TimeoutError:
            # The event may have been set between _drain_queue admitting
            # us and the timeout callback firing — that admission holds.
            admitted = waiter.event.is_set()
        except asyncio.CancelledError:
            # Client went away mid-wait.  If _drain_queue admitted us
            # concurrently the fuel is already in flight: hand it back.
            if waiter.event.is_set():
                self._inflight_fuel = max(0, self._inflight_fuel - fuel)
                self._drain_queue()
            raise
        finally:
            # Admitted waiters were already dequeued by _drain_queue;
            # timed-out (or cancelled) ones still hold their queue slot.
            if token in self._waiters:
                del self._waiters[token]
                self._queue_fuel -= fuel
                self._drain_queue()
        if not admitted:
            raise ApiError(
                503, REASON_TIMEOUT,
                f"no capacity freed within {self._timeout_s}s "
                f"(certified cost {fuel})",
                retry_after_s=self._retry_after_s,
            )
        return AdmissionTicket(
            fuel=fuel, queued_ms=(time.monotonic() - start) * 1000.0
        )

    def release(self, ticket: AdmissionTicket) -> None:
        """Return a ticket's fuel to the capacity pool and wake queued
        requests that now fit (in arrival order)."""
        self._inflight_fuel = max(0, self._inflight_fuel - ticket.fuel)
        self._drain_queue()

    # -- internals -----------------------------------------------------------

    def _admit_now(self, fuel: int) -> bool:
        # Strict FIFO: never admit around a non-empty queue, or a stream
        # of small requests starves the large one at the head.
        if self._waiters:
            return False
        if self._inflight_fuel + fuel > self._capacity:
            return False
        self._inflight_fuel += fuel
        return True

    def _drain_queue(self) -> None:
        while self._waiters:
            token, waiter = next(iter(self._waiters.items()))
            if self._inflight_fuel + waiter.fuel > self._capacity:
                break
            del self._waiters[token]
            self._queue_fuel -= waiter.fuel
            self._inflight_fuel += waiter.fuel
            waiter.event.set()
