"""Static bearer-token authentication.

The edge accepts a fixed set of tokens (``ServerConfig.tokens``) on
``Authorization: Bearer <token>``.  Comparison is constant-time
(:func:`hmac.compare_digest` against every configured token) so token
length/prefix cannot be probed through timing.  An empty token set turns
auth off — the open-edge development mode; ``repro serve`` warns when it
binds a non-loopback address that way.

The authenticated principal doubles as the rate-limit key (fall back to
the peer address when auth is off), so one misbehaving client throttles
itself, not the fleet.
"""

from __future__ import annotations

import hmac
from typing import Dict, Optional, Tuple

from repro.http.schemas import ApiError

__all__ = ["Authenticator"]


class Authenticator:
    """Checks ``Authorization`` headers against the static token set."""

    def __init__(self, tokens: Tuple[str, ...]) -> None:
        self._tokens = tuple(tokens)

    @property
    def enabled(self) -> bool:
        return bool(self._tokens)

    def principal(
        self, headers: Dict[str, str], peer: str
    ) -> str:
        """The authenticated principal for this request.

        Returns a stable identity string (used as the rate-limit key) or
        raises :class:`ApiError` 401.  With auth disabled the peer
        address is the principal.
        """
        if not self._tokens:
            return f"peer:{peer}"
        header = headers.get("authorization")
        if header is None:
            raise ApiError(
                401, "unauthorized", "missing Authorization header"
            )
        scheme, _, token = header.partition(" ")
        if scheme.lower() != "bearer" or not token.strip():
            raise ApiError(
                401, "unauthorized",
                "Authorization must be 'Bearer <token>'",
            )
        candidate = token.strip()
        matched: Optional[str] = None
        # Compare against every token (no early exit) so timing reveals
        # neither which token matched nor how far a prefix got.
        for configured in self._tokens:
            if hmac.compare_digest(candidate, configured):
                matched = configured
        if matched is None:
            raise ApiError(401, "unauthorized", "unknown bearer token")
        # Principals are token identities, not token values: never echo
        # secrets into metrics labels or logs.
        return f"token:{self._tokens.index(matched)}"
