"""Edge configuration: flags over environment over defaults.

Every knob has a ``REPRO_HTTP_*`` environment variable so containerized
deployments configure the edge without wrapper scripts, and a matching
``repro serve`` flag that wins when given.  :func:`ServerConfig.from_env`
builds the env-resolved default; the CLI then overlays explicit flags.

Capacity knobs are denominated in **certified fuel units** (the
Theorem 5.1 cost-certificate bound of a plan instantiated at the target
database's size statistics), not request counts — see
:mod:`repro.http.admission`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields
from typing import Optional, Tuple

from repro.errors import ReproError

__all__ = ["ServerConfig"]

_ENV_PREFIX = "REPRO_HTTP_"


def _env_name(option: str) -> str:
    return _ENV_PREFIX + option.upper()


@dataclass
class ServerConfig:
    """All knobs of one :class:`repro.http.server.QueryEdge`."""

    #: Bind address.  Port 0 asks the kernel for an ephemeral port; the
    #: bound port is reported by ``QueryEdge.port`` after start.
    host: str = "127.0.0.1"
    port: int = 8080

    #: Static bearer tokens accepted on ``Authorization: Bearer <token>``.
    #: Empty means *no auth* (open edge) — fine for localhost development,
    #: loudly documented as such.
    tokens: Tuple[str, ...] = ()

    #: Per-client token bucket: sustained requests/second and burst size.
    #: ``rate_limit <= 0`` disables rate limiting.
    rate_limit: float = 50.0
    rate_burst: int = 100

    #: Admission control, in certified fuel units: ``max_inflight_fuel``
    #: bounds what may execute concurrently, ``max_queue_fuel`` bounds
    #: what may wait, ``queue_timeout_s`` bounds how long it may wait.
    #: ``0`` (the default) auto-sizes from the catalog at startup:
    #: capacity admits ``auto_capacity_requests`` instances of the
    #: priciest registered certified plan (cost certificates span many
    #: orders of magnitude between term and fixpoint plans, so a fixed
    #: absolute default would be wrong for one family or the other);
    #: ``max_queue_fuel = 0`` means twice the resolved capacity.
    max_inflight_fuel: int = 0
    max_queue_fuel: int = 0
    queue_timeout_s: float = 5.0

    #: How many copies of the priciest certified plan auto-sized
    #: capacity admits concurrently.
    auto_capacity_requests: int = 8

    #: Fuel charged for a plan without a cost certificate (admission must
    #: charge something; uncertified plans are charged pessimistically).
    uncertified_fuel: int = 10_000_000

    #: Hint clients wait this long before retrying a 429/503.
    retry_after_s: int = 1

    #: Sync-service bridge: size of the thread pool ``QueryService``
    #: executions run on (``loop.run_in_executor``).
    workers: int = 8

    #: Per-request body cap (bytes) and header-line cap for the reader.
    max_body_bytes: int = 4 * 1024 * 1024
    max_line_bytes: int = 16 * 1024

    #: Graceful drain: how long SIGTERM waits for in-flight requests
    #: before force-closing what remains.
    drain_timeout_s: float = 30.0

    #: Test hook (env only): sleep this long inside the worker thread
    #: before evaluating, to make "in flight" deterministic for drain and
    #: overload tests.  Never set in production.
    debug_delay_ms: float = 0.0

    #: Flight recorder: how many full EXPLAIN reports the edge retains
    #: (``0`` disables the recorder and the ``/debug/flight`` route),
    #: how many slowest-so-far requests always stay pinned, and the
    #: observed-steps/static-bound ratio above which a request is
    #: retained as bound-breaching.
    flight_capacity: int = 256
    flight_slowest: int = 32
    flight_bound_ratio: float = 0.9

    #: Per-request default budgets passed through to the service.
    request_timeout_s: Optional[float] = None

    extra_env: dict = field(default_factory=dict, repr=False)

    @classmethod
    def from_env(cls, environ=None) -> "ServerConfig":
        """Resolve a config from ``REPRO_HTTP_*`` environment variables
        (unset variables keep the dataclass defaults)."""
        environ = os.environ if environ is None else environ
        kwargs = {}
        for f in fields(cls):
            if f.name == "extra_env":
                continue
            raw = environ.get(_env_name(f.name))
            if raw is None:
                continue
            kwargs[f.name] = _parse_field(f.name, raw)
        return cls(**kwargs)

    def validate(self) -> "ServerConfig":
        if self.max_inflight_fuel < 0:
            raise ReproError("max_inflight_fuel must be >= 0 (0 = auto)")
        if self.max_queue_fuel < 0:
            raise ReproError("max_queue_fuel must be >= 0 (0 = auto)")
        if self.auto_capacity_requests < 1:
            raise ReproError("auto_capacity_requests must be >= 1")
        if self.workers < 1:
            raise ReproError("workers must be >= 1")
        if self.uncertified_fuel <= 0:
            raise ReproError("uncertified_fuel must be positive")
        if self.flight_capacity < 0:
            raise ReproError("flight_capacity must be >= 0 (0 = off)")
        return self


def _parse_field(name: str, raw: str):
    """Parse one env value into the field's type."""
    if name == "tokens":
        return tuple(t for t in (s.strip() for s in raw.split(",")) if t)
    if name == "host":
        return raw
    if name in ("rate_limit", "queue_timeout_s", "drain_timeout_s",
                "debug_delay_ms", "request_timeout_s",
                "flight_bound_ratio"):
        try:
            return float(raw)
        except ValueError as exc:
            raise ReproError(
                f"{_env_name(name)} must be a number, got {raw!r}"
            ) from exc
    try:
        return int(raw)
    except ValueError as exc:
        raise ReproError(
            f"{_env_name(name)} must be an integer, got {raw!r}"
        ) from exc
