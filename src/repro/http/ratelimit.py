"""Per-client token-bucket rate limiting.

One bucket per principal (bearer-token identity, or peer address on an
open edge): ``rate`` tokens/second refill up to ``burst``.  A request
costs one token; an empty bucket is a 429 with a ``Retry-After`` derived
from the actual deficit, so well-behaved clients back off exactly as
long as needed.

Buckets live in a small LRU (an open edge sees arbitrarily many peer
addresses; the map must not grow without bound).  Evicting a cold bucket
forgets at most ``burst`` tokens of credit — safe, never unfair to hot
clients.  All state is guarded by one lock; the edge calls this from a
single event loop, but the lock keeps the class safe for threaded tests
and future multi-loop setups.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Optional, Tuple

__all__ = ["RateLimiter"]

#: Bound on distinct principals tracked at once.
MAX_BUCKETS = 4096


class RateLimiter:
    """Token buckets keyed by principal.  ``rate <= 0`` disables."""

    def __init__(
        self,
        rate: float,
        burst: int,
        *,
        max_buckets: int = MAX_BUCKETS,
        clock=time.monotonic,
    ) -> None:
        self._rate = float(rate)
        self._burst = float(max(1, burst))
        self._max_buckets = max_buckets
        self._clock = clock
        # principal -> (tokens, last refill timestamp)
        self._buckets: "OrderedDict[str, Tuple[float, float]]" = OrderedDict()
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self._rate > 0

    def allow(self, principal: str) -> Tuple[bool, Optional[float]]:
        """Spend one token.  Returns ``(allowed, retry_after_s)`` —
        ``retry_after_s`` is how long until one token exists again."""
        if not self.enabled:
            return True, None
        now = self._clock()
        with self._lock:
            tokens, last = self._buckets.get(principal, (self._burst, now))
            tokens = min(self._burst, tokens + (now - last) * self._rate)
            if tokens >= 1.0:
                self._buckets[principal] = (tokens - 1.0, now)
                self._buckets.move_to_end(principal)
                self._evict()
                return True, None
            self._buckets[principal] = (tokens, now)
            self._buckets.move_to_end(principal)
            self._evict()
            return False, (1.0 - tokens) / self._rate

    def _evict(self) -> None:
        while len(self._buckets) > self._max_buckets:
            self._buckets.popitem(last=False)
