"""Wire schemas: JSON request/response shapes and the error envelope.

Every non-2xx response carries one envelope shape::

    {"error": {"code": "<stable-slug>", "message": "...", "status": 429,
               "retry_after_s": 1}}        # retry_after_s when retryable

and every query response is the service's
:meth:`~repro.service.runtime.QueryResponse.as_dict` plus an
``admission`` block (certified fuel charged, queue wait).  The
library's exception taxonomy maps onto status codes here, in one place,
so handlers never invent codes ad hoc:

===============================  ======  =====================
exception / service status       status  error code
===============================  ======  =====================
bad JSON, schema violations      400     ``bad_request``
``ParseError``                   400     ``bad_query``
``TypeInferenceError``           400     ``bad_query``
``QueryTermError``               400     ``bad_query``
unknown query / database name    404     ``unknown_query`` /
                                         ``unknown_database``
missing/wrong bearer token       401     ``unauthorized``
token bucket empty               429     ``rate_limited``
admission queue full             429     ``over_capacity``
admission wait timed out         503     ``admission_timeout``
draining (SIGTERM received)      503     ``draining``
response ``fuel_exhausted``      422     — (body is the response)
response ``timeout``             504     — (body is the response)
response ``error``               400     — (body is the response)
anything unexpected              500     ``internal``
===============================  ======  =====================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import (
    ParseError,
    QueryTermError,
    ReproError,
    TypeInferenceError,
)
from repro.service.runtime import (
    STATUS_ERROR,
    STATUS_FUEL,
    STATUS_OK,
    STATUS_TIMEOUT,
    QueryResponse,
)

__all__ = [
    "ApiError",
    "HttpResponse",
    "QuerySpec",
    "error_response",
    "json_response",
    "parse_batch_body",
    "parse_query_body",
    "query_http_status",
    "render_query_response",
]

#: Service response status -> HTTP status code.
_STATUS_CODES = {
    STATUS_OK: 200,
    STATUS_FUEL: 422,
    STATUS_TIMEOUT: 504,
    STATUS_ERROR: 400,
}


class ApiError(ReproError):
    """An error that already knows its HTTP shape."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retry_after_s: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.retry_after_s = retry_after_s

    @classmethod
    def from_exception(cls, exc: BaseException) -> "ApiError":
        """Fold a library exception into the envelope taxonomy."""
        if isinstance(exc, ApiError):
            return exc
        if isinstance(exc, (ParseError, QueryTermError, TypeInferenceError)):
            return cls(400, "bad_query", str(exc))
        if isinstance(exc, ReproError):
            return cls(400, "bad_request", str(exc))
        return cls(500, "internal", f"{type(exc).__name__}: {exc}")


@dataclass
class HttpResponse:
    """One response, ready for the wire."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)
    #: Trace id to attach as a latency-histogram exemplar (set by query
    #: routes; ``None`` leaves the histogram exemplar-free).
    exemplar: Optional[str] = None


def json_response(
    status: int, payload: dict, *, headers: Optional[Dict[str, str]] = None
) -> HttpResponse:
    body = (json.dumps(payload, indent=None, separators=(",", ":"))
            .encode("utf-8"))
    return HttpResponse(status=status, body=body, headers=dict(headers or {}))


def error_response(error: ApiError) -> HttpResponse:
    envelope: dict = {
        "error": {
            "code": error.code,
            "message": str(error),
            "status": error.status,
        }
    }
    headers: Dict[str, str] = {}
    if error.retry_after_s is not None:
        envelope["error"]["retry_after_s"] = error.retry_after_s
        headers["Retry-After"] = str(error.retry_after_s)
    return json_response(error.status, envelope, headers=headers)


@dataclass(frozen=True)
class QuerySpec:
    """One validated ``/v1/query`` body (also one batch element).

    The edge serves *registered* plans only: admission control prices a
    request by its plan's cost certificate, and only catalog registration
    certifies plans — an unregistered term has no certificate to admit
    against.
    """

    query: str
    database: Optional[str] = None
    engine: Optional[str] = None
    arity: Optional[int] = None
    fuel: Optional[int] = None
    timeout_s: Optional[float] = None
    shards: Optional[int] = None
    tag: Optional[str] = None
    include_tuples: bool = True
    explain: bool = False


_SPEC_FIELDS = {
    "query": str,
    "database": str,
    "engine": str,
    "arity": int,
    "fuel": int,
    "timeout_s": (int, float),
    "shards": int,
    "tag": str,
    "include_tuples": bool,
    "explain": bool,
}


def _parse_spec(item: object, where: str) -> QuerySpec:
    if not isinstance(item, dict):
        raise ApiError(400, "bad_request", f"{where} must be a JSON object")
    unknown = sorted(set(item) - set(_SPEC_FIELDS))
    if unknown:
        raise ApiError(
            400, "bad_request",
            f"{where} has unknown field(s): {', '.join(unknown)}",
        )
    if "query" not in item:
        raise ApiError(400, "bad_request", f"{where} needs a 'query' name")
    kwargs = {}
    for name, expected in _SPEC_FIELDS.items():
        value = item.get(name)
        if value is None:
            continue
        ok = isinstance(value, expected)
        if expected is not bool and isinstance(value, bool):
            ok = False  # bool is an int subclass; don't let it pose as one
        if not ok:
            raise ApiError(
                400, "bad_request",
                f"{where}: field {name!r} has the wrong type",
            )
        kwargs[name] = value
    return QuerySpec(**kwargs)


def _load_json(body: bytes) -> object:
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ApiError(
            400, "bad_request", f"request body is not valid JSON: {exc}"
        ) from exc


def parse_query_body(body: bytes) -> QuerySpec:
    """Validate a ``POST /v1/query`` body."""
    return _parse_spec(_load_json(body), "request body")


def parse_batch_body(body: bytes, *, max_requests: int = 1024
                     ) -> Tuple[QuerySpec, ...]:
    """Validate a ``POST /v1/batch`` body: ``{"requests": [...]}`` or a
    bare list."""
    raw = _load_json(body)
    if isinstance(raw, dict):
        raw = raw.get("requests")
    if not isinstance(raw, list) or not raw:
        raise ApiError(
            400, "bad_request",
            "batch body must be a non-empty list or {\"requests\": [...]}",
        )
    if len(raw) > max_requests:
        raise ApiError(
            400, "bad_request",
            f"batch of {len(raw)} exceeds the {max_requests}-request cap",
        )
    return tuple(
        _parse_spec(item, f"batch request #{index}")
        for index, item in enumerate(raw)
    )


def query_http_status(response: QueryResponse) -> int:
    """The HTTP status a single query response maps to."""
    return _STATUS_CODES.get(response.status, 500)


def render_query_response(
    response: QueryResponse,
    *,
    include_tuples: bool = True,
    admission: Optional[dict] = None,
) -> dict:
    """The wire shape of one query response: the service dict plus the
    edge's admission block."""
    payload = response.as_dict(include_tuples=include_tuples)
    if admission is not None:
        payload["admission"] = admission
    return payload
