"""The asyncio HTTP/1.1 edge: certified TLI queries over the network.

One :class:`QueryEdge` wraps one (sync, thread-safe)
:class:`~repro.service.runtime.QueryService` behind a stdlib asyncio
socket server.  The pipeline per request is

    read/parse → auth → rate limit → price (certified fuel) →
    admission → ``loop.run_in_executor`` → respond

Evaluation stays on the service's synchronous path via a bounded thread
pool, so *single-flight batching is preserved across connections*: N
concurrent identical HTTP requests still cost one evaluation and N-1
in-flight waits, exactly as in-process callers observe.

Routes::

    GET  /health        readiness (503 while draining) + runtime info
    GET  /health/live   liveness only (200 while the process serves)
    GET  /metrics       Prometheus text exposition (repro_* families)
    GET  /v1/catalog    the registered databases and plans     [auth]
    POST /v1/query      one query                              [auth]
    POST /v1/batch      a batch, admitted as one fuel unit     [auth]
    POST /v1/explain    one query with EXPLAIN ANALYZE forced  [auth]
    GET  /debug/flight  retained flight records (?trace_id=)   [auth]

**Trace propagation.**  Query routes accept a W3C-shaped
``traceparent`` request header and adopt its trace id (minting a fresh
one otherwise), thread it through the service into the shard workers,
and echo a ``traceparent`` response header — so a caller can later
fetch the full flight record for its own request by trace id.

**Graceful drain.**  SIGTERM (or SIGINT) stops the listener, answers new
requests on kept-alive connections with 503 ``draining`` +
``Connection: close``, waits up to ``drain_timeout_s`` for in-flight
requests to finish writing their responses, closes idle connections,
closes the service (which closes the shard worker pool), and exits 0.
"""

from __future__ import annotations

import asyncio
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple
from urllib.parse import parse_qs

from repro import __version__
from repro.analysis.analyzer import fuel_budget
from repro.analysis.cost import DatabaseStats
from repro.analysis.provenance import (
    check_schema_contract,
    database_schema,
    read_set_stats,
)
from repro.errors import ReproError
from repro.http.admission import AdmissionController, AdmissionTicket
from repro.http.auth import Authenticator
from repro.http.config import ServerConfig
from repro.http.ratelimit import RateLimiter
from repro.http.schemas import (
    ApiError,
    HttpResponse,
    QuerySpec,
    error_response,
    json_response,
    parse_batch_body,
    parse_query_body,
    query_http_status,
    render_query_response,
)
from repro.obs.flight import FlightRecorder
from repro.obs.info import runtime_info
from repro.obs.metrics import install_http_metrics
from repro.obs.tracing import (
    format_traceparent,
    make_trace_id,
    parse_traceparent,
)
from repro.service import QueryRequest, QueryService

__all__ = ["QueryEdge"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Content type of the Prometheus text exposition format.
_PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_MAX_HEADERS = 100


@dataclass
class _Request:
    method: str
    path: str
    query_string: str
    headers: Dict[str, str]
    body: bytes
    peer: str


class _ConnectionClosed(Exception):
    """Peer hung up mid-request; nothing left to answer."""


class QueryEdge:
    """The HTTP front-end over one :class:`QueryService`."""

    def __init__(
        self,
        service: QueryService,
        config: Optional[ServerConfig] = None,
    ) -> None:
        self.service = service
        self.config = (config or ServerConfig()).validate()
        self.registry = service.registry
        self.metrics = install_http_metrics(self.registry)
        # The flight recorder: retain full EXPLAIN reports for slow,
        # errored, bound-breaching, or explicitly-explained requests.
        # Respect a recorder the service owner installed before us.
        self.flight: Optional[FlightRecorder] = service.flight
        if self.flight is None and self.config.flight_capacity > 0:
            self.flight = service.enable_flight(FlightRecorder(
                self.config.flight_capacity,
                slowest=self.config.flight_slowest,
                bound_ratio_threshold=self.config.flight_bound_ratio,
            ))
        self.auth = Authenticator(self.config.tokens)
        self.ratelimit = RateLimiter(
            self.config.rate_limit, self.config.rate_burst
        )
        capacity = self.config.max_inflight_fuel
        if capacity <= 0:
            capacity = self._auto_capacity()
        queue_capacity = self.config.max_queue_fuel
        if queue_capacity <= 0:
            queue_capacity = 2 * capacity
        self.admission = AdmissionController(
            capacity,
            queue_capacity,
            self.config.queue_timeout_s,
            retry_after_s=self.config.retry_after_s,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-http",
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._draining = False
        self._inflight_requests = 0
        self._idle: Optional[asyncio.Event] = None
        self._stopped: Optional[asyncio.Event] = None
        self._shutdown_task: Optional[asyncio.Task] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self.metrics["draining"].set(0)
        self._routes = {
            ("GET", "/health"): (self._route_health, "/health"),
            ("GET", "/health/live"): (
                self._route_health_live, "/health/live",
            ),
            ("GET", "/metrics"): (self._route_metrics, "/metrics"),
            ("GET", "/v1/catalog"): (self._route_catalog, "/v1/catalog"),
            ("POST", "/v1/query"): (self._route_query, "/v1/query"),
            ("POST", "/v1/batch"): (self._route_batch, "/v1/batch"),
            ("POST", "/v1/explain"): (self._route_explain, "/v1/explain"),
            ("GET", "/debug/flight"): (
                self._route_flight, "/debug/flight",
            ),
        }

    def _auto_capacity(self) -> int:
        """Auto-size the fuel capacity from the catalog: admit
        ``auto_capacity_requests`` instances of the priciest registered
        certified plan against the priciest registered database.
        Certified costs span many orders of magnitude (a term plan's
        polynomial vs a fixpoint tower's), so capacity must be relative
        to the actual catalog, not an absolute constant."""
        catalog = self.service.catalog
        prices = []
        for db_entry in catalog.databases():
            stats = db_entry.stats
            if stats is None:
                stats = DatabaseStats.of(db_entry.database)
            for query_entry in catalog.queries():
                # Price each plan against its read-set's statistics
                # (TLI023): relations the plan never scans cannot
                # contribute to its Theorem 5.1 bound.
                priced_stats = read_set_stats(
                    query_entry.provenance, db_entry.database, stats
                )
                prices.append(fuel_budget(
                    query_entry.effective_cost, priced_stats,
                    default=self.config.uncertified_fuel,
                ))
        peak = max(prices, default=self.config.uncertified_fuel)
        return peak * self.config.auto_capacity_requests

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        assert self._server is not None, "edge not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        self._idle = asyncio.Event()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_line_bytes,
        )

    async def run(self, *, install_signals: bool = True,
                  on_ready=None) -> None:
        """Start, serve until SIGTERM/SIGINT triggers a drain, return
        when the drain completed."""
        await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self.request_shutdown)
                except NotImplementedError:  # pragma: no cover - windows
                    signal.signal(
                        sig, lambda *_: self.request_shutdown()
                    )
        if on_ready is not None:
            on_ready(self)
        assert self._stopped is not None
        await self._stopped.wait()

    def request_shutdown(self) -> None:
        """Begin a graceful drain (idempotent; safe from a signal
        handler running on the event loop)."""
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.ensure_future(self.shutdown())

    async def shutdown(self) -> None:
        """Stop accepting, flush in-flight requests, close the service
        (and with it the shard worker pool)."""
        if self._draining:
            if self._stopped is not None:
                await self._stopped.wait()
            return
        self._draining = True
        self.metrics["draining"].set(1)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        assert self._idle is not None and self._stopped is not None
        if self._inflight_requests == 0:
            self._idle.set()
        try:
            await asyncio.wait_for(
                self._idle.wait(), self.config.drain_timeout_s
            )
        except asyncio.TimeoutError:  # pragma: no cover - defensive
            pass
        # Everything in flight has answered; drop idle keep-alive
        # connections still parked in readline().
        for writer in list(self._writers):
            writer.close()
        self.service.close()
        self._executor.shutdown(wait=False)
        self._stopped.set()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics["connections"].inc()
        self.metrics["connections_active"].inc()
        self._writers.add(writer)
        peer = writer.get_extra_info("peername")
        peer_label = peer[0] if isinstance(peer, tuple) else str(peer)
        try:
            while True:
                try:
                    request = await self._read_request(reader, peer_label)
                except _ConnectionClosed:
                    break
                except ApiError as exc:
                    await self._write_response(
                        writer, error_response(exc), keep_alive=False
                    )
                    break
                if request is None:
                    break
                keep_alive = self._keep_alive(request)
                response, route = await self._dispatch(request)
                if self._draining:
                    keep_alive = False
                try:
                    await self._write_response(
                        writer, response, keep_alive=keep_alive
                    )
                except (ConnectionError, RuntimeError):
                    break
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away; nothing to answer
        finally:
            self._writers.discard(writer)
            self.metrics["connections_active"].dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader, peer: str
    ) -> Optional[_Request]:
        try:
            line = await reader.readline()
        except ValueError as exc:
            raise ApiError(400, "bad_request",
                           f"request line too long: {exc}") from exc
        if not line:
            return None
        try:
            method, target, version = line.decode("latin-1").split()
        except ValueError as exc:
            raise ApiError(400, "bad_request",
                           "malformed request line") from exc
        if not version.startswith("HTTP/1."):
            raise ApiError(400, "bad_request",
                           f"unsupported protocol {version}")
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            try:
                raw = await reader.readline()
            except ValueError as exc:
                raise ApiError(400, "bad_request",
                               f"header line too long: {exc}") from exc
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep:
                raise ApiError(400, "bad_request",
                               f"malformed header {raw!r}")
            headers[name.strip().lower()] = value.strip()
        else:
            raise ApiError(400, "bad_request",
                           f"more than {_MAX_HEADERS} headers")
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError as exc:
            raise ApiError(400, "bad_request",
                           "Content-Length is not an integer") from exc
        if length < 0:
            raise ApiError(400, "bad_request", "negative Content-Length")
        if length > self.config.max_body_bytes:
            raise ApiError(
                413, "payload_too_large",
                f"body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte cap",
            )
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise _ConnectionClosed() from exc
        path, _, query_string = target.partition("?")
        return _Request(
            method=method.upper(),
            path=path,
            query_string=query_string,
            headers=headers,
            body=body,
            peer=peer,
        )

    @staticmethod
    def _keep_alive(request: _Request) -> bool:
        connection = request.headers.get("connection", "").lower()
        if connection == "close":
            return False
        return True  # HTTP/1.1 default (1.0 clients send Connection)

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        response: HttpResponse,
        *,
        keep_alive: bool,
    ) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        headers = {
            "Server": f"repro-edge/{__version__}",
            "Content-Type": response.content_type,
            "Content-Length": str(len(response.body)),
            "Connection": "keep-alive" if keep_alive else "close",
        }
        headers.update(response.headers)
        head = f"HTTP/1.1 {response.status} {reason}\r\n" + "".join(
            f"{name}: {value}\r\n" for name, value in headers.items()
        ) + "\r\n"
        writer.write(head.encode("latin-1") + response.body)
        await writer.drain()

    # -- dispatch ------------------------------------------------------------

    async def _dispatch(
        self, request: _Request
    ) -> Tuple[HttpResponse, str]:
        start = time.perf_counter()
        handler, route = self._routes.get(
            (request.method, request.path), (None, request.path)
        )
        self._inflight_requests += 1
        try:
            if handler is None:
                response = self._no_route(request)
                route = "<no-route>"
            elif self._draining and route.startswith("/v1"):
                response = error_response(ApiError(
                    503, "draining",
                    "the edge is draining; connection will close",
                    retry_after_s=self.config.retry_after_s,
                ))
            else:
                try:
                    response = await handler(request)
                except ApiError as exc:
                    response = error_response(exc)
                except ReproError as exc:
                    response = error_response(ApiError.from_exception(exc))
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # noqa: BLE001 - edge boundary
                    response = error_response(ApiError.from_exception(exc))
        finally:
            self._inflight_requests -= 1
            if self._draining and self._inflight_requests == 0 and (
                self._idle is not None
            ):
                self._idle.set()
        wall_ms = (time.perf_counter() - start) * 1000.0
        self.metrics["http_requests"].inc(
            route=route, code=str(response.status)
        )
        self.metrics["http_latency"].observe(
            wall_ms, route=route, exemplar=response.exemplar
        )
        return response, route

    def _no_route(self, request: _Request) -> HttpResponse:
        known_paths = {path for _, path in self._routes}
        if request.path in known_paths:
            return error_response(ApiError(
                405, "method_not_allowed",
                f"{request.method} is not supported on {request.path}",
            ))
        return error_response(ApiError(
            404, "not_found", f"no route for {request.path}"
        ))

    # -- routes --------------------------------------------------------------

    async def _route_health(self, request: _Request) -> HttpResponse:
        ready = not self._draining
        payload = {
            "status": "ok" if ready else "draining",
            "live": True,
            "ready": ready,
            "runtime": runtime_info(),
            "admission": self.admission.snapshot(),
            "catalog": {
                "databases": len(self.service.catalog.databases()),
                "queries": len(self.service.catalog.queries()),
            },
        }
        return json_response(200 if ready else 503, payload)

    async def _route_health_live(self, request: _Request) -> HttpResponse:
        return json_response(
            200, {"live": True, "uptime_s": runtime_info()["uptime_s"]}
        )

    async def _route_metrics(self, request: _Request) -> HttpResponse:
        text = self.registry.render_prometheus()
        return HttpResponse(
            status=200,
            body=text.encode("utf-8"),
            content_type=_PROM_CONTENT_TYPE,
        )

    async def _route_catalog(self, request: _Request) -> HttpResponse:
        self._authenticate(request)
        return json_response(200, self.service.catalog.summary())

    async def _route_query(self, request: _Request) -> HttpResponse:
        return await self._serve_query(request)

    async def _route_explain(self, request: _Request) -> HttpResponse:
        """``/v1/query`` with EXPLAIN ANALYZE forced on: the payload's
        ``explain`` key joins the static certificate with the observed
        execution (and the flight recorder retains the report)."""
        return await self._serve_query(request, force_explain=True)

    async def _serve_query(
        self, request: _Request, *, force_explain: bool = False
    ) -> HttpResponse:
        self._authenticate(request)
        spec = parse_query_body(request.body)
        trace_id = self._trace_id(request)
        explain = spec.explain or force_explain
        database, fuel = self._price(spec)
        ticket = await self._admit(fuel)
        try:
            response = await self._run_sync(
                self._execute_one, spec, database, trace_id, explain
            )
        finally:
            self._release(ticket)
        payload = render_query_response(
            response,
            include_tuples=spec.include_tuples,
            admission=ticket.as_dict(),
        )
        out = json_response(query_http_status(response), payload)
        echoed = response.trace_id or trace_id
        out.headers["traceparent"] = format_traceparent(echoed)
        if self.flight is not None and (
            self.flight.lookup(echoed) is not None
        ):
            out.exemplar = echoed
        return out

    async def _route_flight(self, request: _Request) -> HttpResponse:
        """Retained flight records: all (newest first), or one by
        ``?trace_id=``; ``?limit=N`` caps the listing."""
        self._authenticate(request)
        flight = self.flight
        if flight is None:
            raise ApiError(
                404, "flight_disabled",
                "the flight recorder is disabled (flight_capacity=0)",
            )
        params = parse_qs(request.query_string)
        trace_id = (params.get("trace_id") or [None])[0]
        raw_limit = (params.get("limit") or [None])[0]
        limit: Optional[int] = None
        if raw_limit is not None:
            try:
                limit = int(raw_limit)
            except ValueError as exc:
                raise ApiError(
                    400, "bad_request", "limit must be an integer"
                ) from exc
        if trace_id is not None:
            record = flight.lookup(trace_id)
            if record is None:
                raise ApiError(
                    404, "unknown_trace",
                    f"no flight record retained for trace {trace_id!r}",
                )
            records = [record]
        else:
            records = flight.records(limit=limit)
        return json_response(
            200, {"records": records, "stats": flight.snapshot()}
        )

    def _trace_id(self, request: _Request) -> str:
        """Adopt the caller's ``traceparent`` trace id, or mint one."""
        parsed = parse_traceparent(request.headers.get("traceparent"))
        return parsed if parsed is not None else make_trace_id()

    async def _route_batch(self, request: _Request) -> HttpResponse:
        self._authenticate(request)
        specs = parse_batch_body(request.body)
        priced = [self._price(spec) for spec in specs]
        total_fuel = sum(fuel for _, fuel in priced)
        # A batch is admitted as one unit: its certified cost is the sum
        # of its members' certificates (they may all run concurrently).
        ticket = await self._admit(total_fuel)
        try:
            result = await self._run_sync(self._execute_batch, specs, priced)
        finally:
            self._release(ticket)
        payload = {
            "responses": [
                render_query_response(
                    response, include_tuples=spec.include_tuples
                )
                for spec, response in zip(specs, result.responses)
            ],
            "stats": result.stats,
            "admission": ticket.as_dict(),
        }
        return json_response(200, payload)

    # -- request plumbing ----------------------------------------------------

    def _authenticate(self, request: _Request) -> str:
        principal = self.auth.principal(request.headers, request.peer)
        allowed, retry_after = self.ratelimit.allow(principal)
        if not allowed:
            self.metrics["rate_limited"].inc()
            raise ApiError(
                429, "rate_limited",
                f"client {principal} exceeded "
                f"{self.config.rate_limit:g} requests/s",
                retry_after_s=max(
                    1, int(retry_after or self.config.retry_after_s)
                ),
            )
        return principal

    def _price(self, spec: QuerySpec) -> Tuple[str, int]:
        """Resolve the spec against the catalog and price it in
        certified fuel units (explicit request fuel wins, then the
        effective cost certificate, then the pessimistic default)."""
        catalog = self.service.catalog
        try:
            entry = catalog.get_query(spec.query)
        except ReproError as exc:
            raise ApiError(404, "unknown_query", str(exc)) from exc
        database = spec.database
        if database is None:
            names = [e.name for e in catalog.databases()]
            if len(names) != 1:
                raise ApiError(
                    400, "bad_request",
                    f"request names no 'database' and {len(names)} are "
                    f"registered",
                )
            database = names[0]
        try:
            db_entry = catalog.get_database(database)
        except ReproError as exc:
            raise ApiError(404, "unknown_database", str(exc)) from exc
        if entry.provenance is not None:
            mismatches, _ = check_schema_contract(
                entry.provenance, database_schema(db_entry.database)
            )
            if mismatches:
                raise ApiError(
                    400, "bad_query",
                    f"[TLI024] query {spec.query!r} does not fit database "
                    f"{database!r}: " + "; ".join(mismatches),
                )
        if spec.fuel is not None:
            return database, max(1, spec.fuel)
        stats = db_entry.stats
        if stats is None:
            stats = DatabaseStats.of(db_entry.database)
        # Admission prices against the read-set-restricted statistics
        # (TLI023); the evaluation budget itself is set by the runtime
        # from the full statistics, so this only tightens admission.
        stats = read_set_stats(entry.provenance, db_entry.database, stats)
        fuel = fuel_budget(
            entry.effective_cost, stats,
            default=self.config.uncertified_fuel,
        )
        return database, fuel

    async def _admit(self, fuel: int) -> AdmissionTicket:
        try:
            ticket = await self.admission.admit(fuel)
        except ApiError as exc:
            self.metrics["rejected_fuel"].inc(fuel, reason=exc.code)
            self._sync_admission_gauges()
            raise
        self.metrics["admitted_fuel"].inc(ticket.fuel)
        self._sync_admission_gauges()
        return ticket

    def _release(self, ticket: AdmissionTicket) -> None:
        self.admission.release(ticket)
        self._sync_admission_gauges()

    def _sync_admission_gauges(self) -> None:
        self.metrics["inflight_fuel"].set(self.admission.inflight_fuel)
        self.metrics["queue_fuel"].set(self.admission.queue_fuel)

    async def _run_sync(self, fn, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn, *args)

    def _execute_one(
        self,
        spec: QuerySpec,
        database: str,
        trace_id: Optional[str] = None,
        explain: bool = False,
    ):
        self._debug_delay()
        return self.service.execute(self._to_request(
            spec, database, trace_id=trace_id, explain=explain
        ))

    def _execute_batch(self, specs, priced):
        self._debug_delay()
        requests = [
            self._to_request(spec, database, explain=spec.explain)
            for spec, (database, _) in zip(specs, priced)
        ]
        return self.service.execute_batch(requests)

    def _to_request(
        self,
        spec: QuerySpec,
        database: str,
        *,
        trace_id: Optional[str] = None,
        explain: bool = False,
    ) -> QueryRequest:
        timeout_s = spec.timeout_s
        if timeout_s is None:
            timeout_s = self.config.request_timeout_s
        return QueryRequest(
            query=spec.query,
            database=database,
            engine=spec.engine,
            arity=spec.arity,
            fuel=spec.fuel,
            timeout_s=timeout_s,
            tag=spec.tag,
            shards=spec.shards,
            trace_id=trace_id,
            explain=explain,
        )

    def _debug_delay(self) -> None:
        if self.config.debug_delay_ms > 0:
            time.sleep(self.config.debug_delay_ms / 1000.0)


def render_listen_line(edge: QueryEdge) -> str:
    """The one-line startup banner (parsed by tests and CI probes)."""
    return (
        f"repro-edge {__version__} listening on "
        f"http://{edge.config.host}:{edge.port} "
        f"(auth={'on' if edge.auth.enabled else 'OFF'}, "
        f"capacity={edge.admission.capacity} fuel)"
    )
