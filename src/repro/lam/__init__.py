"""The lambda-calculus kernel: terms, parsing, printing, reduction, NBE.

This package implements the calculi of Section 2 of the paper:

* **TLC** — the simply typed lambda calculus (Curry style, with optional
  Church-style annotations on binders),
* **TLC=** — TLC enriched with atomic constants ``o_1, o_2, ...`` of base
  type ``o`` and the equality constant ``Eq : o -> o -> g -> g -> g``
  together with its delta rule,
* **core-ML / core-ML=** — the same syntax plus ``let`` with
  let-polymorphism (typing lives in :mod:`repro.types.ml`; operationally
  ``let x = M in N`` behaves exactly like ``(λx. N) M``).
"""

from repro.lam.terms import (
    Abs,
    App,
    Const,
    EqConst,
    Let,
    Term,
    Var,
    abs_many,
    app,
    bound_vars,
    free_vars,
    lam,
    let,
    subterms,
    term_size,
)
from repro.lam.alpha import alpha_equal, to_debruijn
from repro.lam.parser import parse
from repro.lam.pretty import pretty
from repro.lam.subst import rename_bound, substitute
from repro.lam.reduce import (
    NormalizationResult,
    Strategy,
    find_redex,
    is_normal_form,
    normalize,
    step,
)
from repro.lam.nbe import nbe_normalize

__all__ = [
    "Abs",
    "App",
    "Const",
    "EqConst",
    "Let",
    "NormalizationResult",
    "Strategy",
    "Term",
    "Var",
    "abs_many",
    "alpha_equal",
    "app",
    "bound_vars",
    "find_redex",
    "free_vars",
    "is_normal_form",
    "lam",
    "let",
    "nbe_normalize",
    "normalize",
    "parse",
    "pretty",
    "rename_bound",
    "step",
    "substitute",
    "subterms",
    "term_size",
    "to_debruijn",
]
