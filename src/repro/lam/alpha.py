"""Alpha-equivalence via de Bruijn conversion.

The paper identifies terms that differ only in the names of bound variables
(Section 2.1: "we write e = e' to denote the syntactic identity of e and e'
except for the names of their bound variables").  We realize that equality
by converting both sides to a nameless (de Bruijn index) form and comparing
structurally.  Free variables keep their names, so two terms with different
free variables are never alpha-equal.
"""

from __future__ import annotations

from typing import Tuple

from repro.lam.terms import Abs, App, Const, EqConst, Let, Term, Var

# Nameless form: nested tuples, cheap to build and hashable.
#   ("ix", k)        bound variable, k binders up
#   ("free", name)   free variable
#   ("const", name)  atomic constant
#   ("eq",)          the Eq constant
#   ("abs", body)
#   ("app", fn, arg)
#   ("let", bound, body)
DeBruijn = Tuple[object, ...]


def to_debruijn(term: Term) -> DeBruijn:
    """Convert ``term`` to its nameless de Bruijn representation."""

    def walk(node: Term, env: Tuple[str, ...]) -> DeBruijn:
        if isinstance(node, Var):
            # Search innermost-first; shadowed binders are invisible.
            for depth, name in enumerate(reversed(env)):
                if name == node.name:
                    return ("ix", depth)
            return ("free", node.name)
        if isinstance(node, Const):
            return ("const", node.name)
        if isinstance(node, EqConst):
            return ("eq",)
        if isinstance(node, Abs):
            return ("abs", walk(node.body, env + (node.var,)))
        if isinstance(node, App):
            return ("app", walk(node.fn, env), walk(node.arg, env))
        if isinstance(node, Let):
            return (
                "let",
                walk(node.bound, env),
                walk(node.body, env + (node.var,)),
            )
        raise TypeError(f"not a term: {node!r}")

    return walk(term, ())


def _free_names(nameless: DeBruijn) -> set:
    names = set()
    stack = [nameless]
    while stack:
        node = stack.pop()
        tag = node[0]
        if tag == "free":
            names.add(node[1])
        elif tag in ("abs",):
            stack.append(node[1])
        elif tag in ("app", "let"):
            stack.append(node[1])
            stack.append(node[2])
    return names


def from_debruijn(nameless: DeBruijn, base: str = "x") -> Term:
    """Convert a nameless form back to a named term.

    Binders are named ``base0, base1, ...`` by depth; the base is mangled
    until no free variable of the term matches the generated pattern, so the
    round trip never captures a free variable.
    """
    free = _free_names(nameless)
    while any(
        name.startswith(base) and name[len(base):].isdigit() for name in free
    ):
        base += "_"

    def walk(node: DeBruijn, depth: int) -> Term:
        tag = node[0]
        if tag == "ix":
            return Var(f"{base}{depth - 1 - node[1]}")
        if tag == "free":
            return Var(node[1])
        if tag == "const":
            return Const(node[1])
        if tag == "eq":
            return EqConst()
        if tag == "abs":
            return Abs(f"{base}{depth}", walk(node[1], depth + 1))
        if tag == "app":
            return App(walk(node[1], depth), walk(node[2], depth))
        if tag == "let":
            return Let(
                f"{base}{depth}",
                walk(node[1], depth),
                walk(node[2], depth + 1),
            )
        raise ValueError(f"bad nameless node: {node!r}")

    return walk(nameless, 0)


def alpha_equal(left: Term, right: Term) -> bool:
    """The paper's term identity: equality up to bound-variable renaming."""
    return to_debruijn(left) == to_debruijn(right)


def alpha_key(term: Term) -> DeBruijn:
    """A hashable key constant across alpha-equivalent terms.

    Lets terms be used in sets/dicts keyed by alpha-equivalence class.
    """
    return to_debruijn(term)


def canonical_names(term: Term, base: str = "x") -> Term:
    """Rename all binders to the deterministic ``base<depth>`` scheme.

    The result is alpha-equal to ``term`` and is literally identical for any
    two alpha-equal inputs — a normal form for names.
    """
    return from_debruijn(to_debruijn(term), base)
