"""The standard encodings of Section 2.3: booleans, numerals, list iteration.

Every combinator is built exactly as the paper writes it, with Church-style
annotations where the paper gives them (annotations never affect reduction;
they are checked by the test suite via :func:`repro.types.check.check_church`
and by Curry-style reconstruction).
"""

from __future__ import annotations

from typing import Sequence

from repro.lam.terms import Abs, App, Term, Var, app, lam
from repro.types.types import Arrow, Type, bool_type, int_type
from repro.types.types import G as TYPE_G


# ---------------------------------------------------------------------------
# Booleans:  True := λx:g. λy:g. x      False := λx:g. λy:g. y
# ---------------------------------------------------------------------------

def true_term() -> Term:
    """``True := λx. λy. x`` of type ``Bool = g -> g -> g``."""
    return lam(["x", "y"], Var("x"), [TYPE_G, TYPE_G])


def false_term() -> Term:
    """``False := λx. λy. y`` of type ``Bool``."""
    return lam(["x", "y"], Var("y"), [TYPE_G, TYPE_G])


def xor_term() -> Term:
    """``Xor := λp. λq. λx. λy. p (q y x) (q x y)`` (Section 2.3)."""
    p, q, x, y = Var("p"), Var("q"), Var("x"), Var("y")
    body = app(p, app(q, y, x), app(q, x, y))
    return lam(
        ["p", "q", "x", "y"],
        body,
        [bool_type(), bool_type(), TYPE_G, TYPE_G],
    )


def and_term() -> Term:
    """``And := λp. λq. λx. λy. p (q x y) y``."""
    p, q, x, y = Var("p"), Var("q"), Var("x"), Var("y")
    return lam(
        ["p", "q", "x", "y"],
        app(p, app(q, x, y), y),
        [bool_type(), bool_type(), TYPE_G, TYPE_G],
    )


def or_term() -> Term:
    """``Or := λp. λq. λx. λy. p x (q x y)``."""
    p, q, x, y = Var("p"), Var("q"), Var("x"), Var("y")
    return lam(
        ["p", "q", "x", "y"],
        app(p, x, app(q, x, y)),
        [bool_type(), bool_type(), TYPE_G, TYPE_G],
    )


def not_term() -> Term:
    """``Not := λp. λx. λy. p y x``."""
    p, x, y = Var("p"), Var("x"), Var("y")
    return lam(
        ["p", "x", "y"], app(p, y, x), [bool_type(), TYPE_G, TYPE_G]
    )


def boolean_term(value: bool) -> Term:
    """The Church boolean for a Python bool."""
    return true_term() if value else false_term()


# ---------------------------------------------------------------------------
# Church numerals:  n := λs. λz. s (s ... (s z))
# ---------------------------------------------------------------------------

def church_numeral(n: int, base: Type = TYPE_G) -> Term:
    """The Church numeral ``n`` of type ``Int = (b -> b) -> b -> b``."""
    if n < 0:
        raise ValueError(f"Church numerals are nonnegative, got {n}")
    body: Term = Var("z")
    for _ in range(n):
        body = App(Var("s"), body)
    return lam(["s", "z"], body, [Arrow(base, base), base])


def zero_term(base: Type = TYPE_G) -> Term:
    """``Zero := λs. λz. z`` (Section 2.3)."""
    return church_numeral(0, base)


def succ_term(base: Type = TYPE_G) -> Term:
    """``Succ := λn. λs. λz. n s (s z)`` (the paper's Length example)."""
    n, s, z = Var("n"), Var("s"), Var("z")
    return lam(
        ["n", "s", "z"],
        app(n, s, App(s, z)),
        [int_type(base), Arrow(base, base), base],
    )


def add_term(base: Type = TYPE_G) -> Term:
    """``Add := λm. λn. λs. λz. m s (n s z)``."""
    m, n, s, z = Var("m"), Var("n"), Var("s"), Var("z")
    return lam(
        ["m", "n", "s", "z"],
        app(m, s, app(n, s, z)),
        [int_type(base), int_type(base), Arrow(base, base), base],
    )


def mul_term(base: Type = TYPE_G) -> Term:
    """``Mul := λm. λn. λs. m (n s)`` — numeral multiplication."""
    m, n, s = Var("m"), Var("n"), Var("s")
    return lam(
        ["m", "n", "s"],
        App(m, App(n, Var("s"))),
        [int_type(base), int_type(base), Arrow(base, base)],
    )


def numeral_value(term: Term) -> int:
    """Decode a normal-form Church numeral ``λs. λz. s^n z`` to ``n``.

    Raises ``ValueError`` when the term is not a numeral normal form.
    """
    if not isinstance(term, Abs) or not isinstance(term.body, Abs):
        raise ValueError(f"not a Church numeral: {term}")
    s_name, z_name = term.var, term.body.var
    node = term.body.body
    count = 0
    while isinstance(node, App):
        if not (isinstance(node.fn, Var) and node.fn.name == s_name):
            raise ValueError(f"not a Church numeral: {term}")
        node = node.arg
        count += 1
    if not (isinstance(node, Var) and node.name == z_name):
        raise ValueError(f"not a Church numeral: {term}")
    return count


def boolean_value(term: Term) -> bool:
    """Decode a normal-form Church boolean (``λx. λy. x`` / ``λx. λy. y``).

    Raises ``ValueError`` otherwise.
    """
    if (
        isinstance(term, Abs)
        and isinstance(term.body, Abs)
        and isinstance(term.body.body, Var)
    ):
        inner = term.body.body.name
        if inner == term.var and inner != term.body.var:
            return True
        if inner == term.body.var:
            return False
    raise ValueError(f"not a Church boolean: {term}")


# ---------------------------------------------------------------------------
# List iteration (Section 2.3)
# ---------------------------------------------------------------------------

def list_iterator(elements: Sequence[Term]) -> Term:
    """``λc. λn. c e1 (c e2 ... (c ek n))`` — the list iterator over the
    given element terms (each element becomes a single argument of ``c``)."""
    body: Term = Var("n")
    for element in reversed(elements):
        body = app(Var("c"), element, body)
    return lam(["c", "n"], body)


def boolean_list(values: Sequence[bool]) -> Term:
    """A list iterator of Church booleans."""
    return list_iterator([boolean_term(v) for v in values])


def parity_term() -> Term:
    """``Parity := λL. L Xor False`` (Section 2.3).

    ``(Parity L)`` reduces to ``Xor e1 (Xor e2 ... (Xor ek False))`` — True
    iff an odd number of the list's booleans are True.  Note the program
    size is constant: "the iterative machinery is taken from the data".
    """
    iter_type = Arrow(
        Arrow(bool_type(), Arrow(bool_type(), bool_type())),
        Arrow(bool_type(), bool_type()),
    )
    return lam(
        ["L"],
        app(Var("L"), xor_term(), false_term()),
        [iter_type],
    )


def length_term(base: Type = TYPE_G) -> Term:
    """``Length := λL. L (λx. Succ) Zero`` (Section 2.3).

    The loop body ``λx. Succ`` absorbs the current element and applies the
    successor to the accumulator.
    """
    element = TYPE_G
    loop_body = Abs("x", succ_term(base), element)
    iter_type = Arrow(
        Arrow(element, Arrow(int_type(base), int_type(base))),
        Arrow(int_type(base), int_type(base)),
    )
    return lam(
        ["L"],
        app(Var("L"), loop_body, zero_term(base)),
        [iter_type],
    )


def pair_term() -> Term:
    """``Pair := λa. λb. λp. p a b`` — Church pairs."""
    return lam(["a", "b", "p"], app(Var("p"), Var("a"), Var("b")))


def fst_term() -> Term:
    """``Fst := λq. q (λa. λb. a)``."""
    return lam("q", App(Var("q"), lam(["a", "b"], Var("a"))))


def snd_term() -> Term:
    """``Snd := λq. q (λa. λb. b)``."""
    return lam("q", App(Var("q"), lam(["a", "b"], Var("b"))))


def pred_term() -> Term:
    """``Pred``: predecessor on Church numerals via the classical
    pair-shifting fold (Kleene's trick):

        λn. Fst (n (λq. Pair (Snd q) (Succ (Snd q))) (Pair 0 0))

    ``Pred 0`` is ``0``.  The pair components are numerals, so the term
    is simply typable (at a higher functionality order than the numeral
    itself — the cost the pure-TLC encodings pay, Section 1's (c)/(d)).
    """
    shift = lam(
        "q",
        app(
            pair_term(),
            App(snd_term(), Var("q")),
            App(succ_term(), App(snd_term(), Var("q"))),
        ),
    )
    start = app(pair_term(), church_numeral(0), church_numeral(0))
    return lam(
        "n", App(fst_term(), app(Var("n"), shift, start))
    )


def is_zero_term() -> Term:
    """``IsZero := λn. n (λw. False) True`` — a Church boolean."""
    return lam(
        "n",
        app(Var("n"), Abs("w", false_term()), true_term()),
    )


def monus_term() -> Term:
    """``Monus := λm. λn. n Pred m`` — truncated subtraction."""
    return lam(
        ["m", "n"], app(Var("n"), pred_term(), Var("m"))
    )


def nat_eq_term() -> Term:
    """Numeral equality:

        λm. λn. And (IsZero (Monus m n)) (IsZero (Monus n m))

    Computes correctly under (untyped) reduction, but is **not simply
    typable**: each lambda-bound numeral would need two incompatible
    instances (iterating ``Pred`` vs being ``Pred``'s fodder), and
    lambda-bound variables are monomorphic.  This is a concrete
    illustration of why the paper adds the ``Eq`` constant to TLC (and
    why the pure-TLC encodings of :mod:`repro.pure` carry their equality
    tester as *input data* instead) — the test suite asserts the
    untypability.
    """
    m, n = Var("m"), Var("n")
    return lam(
        ["m", "n"],
        app(
            and_term(),
            App(is_zero_term(), app(monus_term(), m, n)),
            App(is_zero_term(), app(monus_term(), n, m)),
        ),
    )


def compose_term() -> Term:
    """``λf. λg. λx. f (g x)`` — function composition."""
    return lam(
        ["f", "g", "x"], App(Var("f"), App(Var("g"), Var("x")))
    )


def identity_term() -> Term:
    """``λx. x``."""
    return Abs("x", Var("x"))
