"""Normalization by evaluation (NBE): the performance normalizer.

The Section 5 upper-bound proofs rely on "an evaluator of programs, which
uses reduction plus specialized data structures" rather than naive term
rewriting.  This module is that evaluator's engine: terms are *evaluated*
into a semantic domain of closures and neutral applications (with
call-by-need thunks, so shared subcomputations run once), and normal forms
are *read back* from values.  The result is always the beta-delta-let
normal form — identical, up to alpha, to what the small-step engine of
:mod:`repro.lam.reduce` produces (Church-Rosser), but typically
exponentially faster on list-iteration workloads because environments share
structure instead of copying terms under substitution.

The domain:

* ``_Closure``   — an unapplied ``λx. body`` paired with its environment;
* ``_Neutral``   — a variable, constant, or ``Eq`` applied to a spine of
  values (stuck applications);
* delta is implemented at application time: when an ``Eq`` neutral receives
  its second constant argument, it collapses to a Church boolean value.

Every evaluation carries a per-call :class:`_StepCounter`: one step per
closure/native application (beta), per delta collapse, and per ``let``
binding.  The count is what the static cost analysis
(:mod:`repro.analysis.cost`) upper-bounds, and an optional ``fuel`` budget
turns the counter into an enforced limit (raising
:class:`~repro.errors.FuelExhausted`), so the service runtime can budget
NBE requests the same way it budgets the small-step engines.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Union

from repro.errors import FuelExhausted, ReductionError
from repro.lam.terms import (
    Abs,
    App,
    Const,
    EqConst,
    Let,
    Term,
    Var,
    free_vars,
)


class _StepCounter:
    """Per-normalization work meter, optionally budget-enforcing.

    The kind-discriminating hooks (``tick_beta``/``tick_delta``/
    ``tick_let``) alias :meth:`tick` here, so the unprofiled hot path
    costs exactly what it always did; :class:`_ProfilingCounter` overrides
    them to record the breakdown an ``observer`` asked for.
    """

    __slots__ = ("steps", "limit")

    def __init__(self, limit: Optional[int] = None):
        self.steps = 0
        self.limit = limit

    def tick(self) -> None:
        self.steps = current = self.steps + 1
        limit = self.limit
        if limit is not None and current > limit:
            raise FuelExhausted(current)

    tick_beta = tick
    tick_delta = tick
    tick_let = tick

    def begin_quote(self) -> None:
        """Called once when evaluation ends and readback begins."""

    def note_depth(self, level: int) -> None:
        """Called with the current readback binder depth."""

    def snapshot(self) -> dict:
        return {"steps": self.steps}


class _ProfilingCounter(_StepCounter):
    """A step counter that also attributes steps to beta/delta/let, flags
    the readback ("quote") phase, and tracks the binder-depth watermark."""

    __slots__ = ("beta", "delta", "let", "quote", "in_quote", "max_depth")

    def __init__(self, limit: Optional[int] = None):
        super().__init__(limit)
        self.beta = 0
        self.delta = 0
        self.let = 0
        self.quote = 0
        self.in_quote = False
        self.max_depth = 0

    # The fuel check is inlined (rather than delegated to ``tick``) so the
    # profiled path costs one method call per step, like the plain one.

    def tick_beta(self) -> None:
        self.beta += 1
        if self.in_quote:
            self.quote += 1
        self.steps = current = self.steps + 1
        limit = self.limit
        if limit is not None and current > limit:
            raise FuelExhausted(current)

    def tick_delta(self) -> None:
        self.delta += 1
        if self.in_quote:
            self.quote += 1
        self.steps = current = self.steps + 1
        limit = self.limit
        if limit is not None and current > limit:
            raise FuelExhausted(current)

    def tick_let(self) -> None:
        self.let += 1
        if self.in_quote:
            self.quote += 1
        self.steps = current = self.steps + 1
        limit = self.limit
        if limit is not None and current > limit:
            raise FuelExhausted(current)

    def begin_quote(self) -> None:
        self.in_quote = True

    def note_depth(self, level: int) -> None:
        if level > self.max_depth:
            self.max_depth = level

    def snapshot(self) -> dict:
        return {
            "steps": self.steps,
            "beta": self.beta,
            "delta": self.delta,
            "let": self.let,
            "quote": self.quote,
            "max_depth": self.max_depth,
        }


class _Thunk:
    """A memoized delayed value (call-by-need)."""

    __slots__ = ("_fn", "_value", "_forced")

    def __init__(self, fn: Callable[[], "Value"]):
        self._fn = fn
        self._value: Optional[Value] = None
        self._forced = False

    @staticmethod
    def of(value: "Value") -> "_Thunk":
        thunk = _Thunk(lambda: value)
        thunk._value = value
        thunk._forced = True
        return thunk

    def force(self) -> "Value":
        if not self._forced:
            self._value = self._fn()
            self._forced = True
            self._fn = None  # drop the closure, free its captures
        return self._value


# Environments are persistent association structures: (name, thunk, parent).
_Env = Optional[Tuple[str, _Thunk, "_Env"]]


def _env_lookup(env: _Env, name: str) -> Optional[_Thunk]:
    while env is not None:
        if env[0] == name:
            return env[1]
        env = env[2]
    return None


@dataclass
class _Closure:
    """Value of an abstraction: body waiting for an argument."""

    var: str
    body: Term
    env: _Env

    def apply(self, argument: _Thunk, counter: _StepCounter) -> "Value":
        return _eval(self.body, (self.var, argument, self.env), counter)


@dataclass
class _Native:
    """A value defined by a host-language function (used for the delta rule's
    Church booleans)."""

    fn: Callable[[_Thunk], "Value"]

    def apply(self, argument: _Thunk, counter: _StepCounter) -> "Value":
        return self.fn(argument)


@dataclass
class _Neutral:
    """A stuck application: ``head`` is a free variable, a constant, or Eq;
    ``spine`` is the (already evaluated or delayed) argument list."""

    head: Term
    spine: Tuple[_Thunk, ...]


Value = Union[_Closure, _Native, _Neutral]


def _true_value() -> Value:
    return _Native(lambda x: _Native(lambda y: x.force()))


def _false_value() -> Value:
    return _Native(lambda x: _Native(lambda y: y.force()))


def _apply(fn: Value, argument: _Thunk, counter: _StepCounter) -> Value:
    if isinstance(fn, (_Closure, _Native)):
        counter.tick_beta()
        return fn.apply(argument, counter)
    if isinstance(fn, _Neutral):
        spine = fn.spine + (argument,)
        # Delta rule: Eq o_i o_j collapses once both constants are present.
        if isinstance(fn.head, EqConst) and len(spine) == 2:
            left = spine[0].force()
            right = spine[1].force()
            if isinstance(left, _Neutral) and isinstance(right, _Neutral):
                if (
                    isinstance(left.head, Const)
                    and not left.spine
                    and isinstance(right.head, Const)
                    and not right.spine
                ):
                    counter.tick_delta()
                    if left.head.name == right.head.name:
                        return _true_value()
                    return _false_value()
        return _Neutral(fn.head, spine)
    raise ReductionError(f"cannot apply value {fn!r}")


def _eval(term: Term, env: _Env, counter: _StepCounter) -> Value:
    while True:
        if isinstance(term, Var):
            thunk = _env_lookup(env, term.name)
            if thunk is None:
                return _Neutral(term, ())
            return thunk.force()
        if isinstance(term, (Const, EqConst)):
            return _Neutral(term, ())
        if isinstance(term, Abs):
            return _Closure(term.var, term.body, env)
        if isinstance(term, App):
            fn_value = _eval(term.fn, env, counter)
            # Bind as default arguments: the loop reassigns term/env, and a
            # late-binding closure would evaluate the wrong redex.
            argument = _Thunk(
                lambda t=term.arg, e=env: _eval(t, e, counter)
            )
            if isinstance(fn_value, _Closure):
                # Tail-call into the closure body instead of recursing: keeps
                # Python stack depth proportional to term depth, not to the
                # number of beta steps.
                counter.tick_beta()
                env = (fn_value.var, argument, fn_value.env)
                term = fn_value.body
                continue
            return _apply(fn_value, argument, counter)
        if isinstance(term, Let):
            counter.tick_let()
            bound = _Thunk(
                lambda t=term.bound, e=env: _eval(t, e, counter)
            )
            env = (term.var, bound, env)
            term = term.body
            continue
        raise TypeError(f"not a term: {term!r}")


def _quote(value: Value, supply: "_FreshNames", counter: _StepCounter) -> Term:
    if isinstance(value, (_Closure, _Native)):
        name = supply.fresh()
        counter.note_depth(supply.level)
        fresh_var = _Thunk.of(_Neutral(Var(name), ()))
        body = _quote(_apply(value, fresh_var, counter), supply, counter)
        supply.release()
        return Abs(name, body)
    if isinstance(value, _Neutral):
        result: Term = value.head
        for argument in value.spine:
            result = App(result, _quote(argument.force(), supply, counter))
        return result
    raise ReductionError(f"cannot quote value {value!r}")


class _FreshNames:
    """Level-indexed fresh names ``base0, base1, ...`` for readback."""

    def __init__(self, base: str):
        self.base = base
        self.level = 0

    def fresh(self) -> str:
        name = f"{self.base}{self.level}"
        self.level += 1
        return name

    def release(self) -> None:
        self.level -= 1


def nbe_normalize_counted(
    term: Term,
    max_depth: int = 600_000,
    fuel: Optional[int] = None,
    observer: Optional[Callable[[dict], None]] = None,
) -> Tuple[Term, int]:
    """Normalize ``term`` and report how many evaluation steps it took.

    A "step" is a beta application (closure entry), a delta collapse, or a
    ``let`` binding — the NBE analogue of the small-step engine's counted
    redexes, including the work done during readback.  With ``fuel`` set,
    normalization raises :class:`~repro.errors.FuelExhausted` as soon as
    the step count would exceed the budget.

    ``observer``, when given, selects the profiling counter and is invoked
    exactly once with the step breakdown dict (``steps``/``beta``/
    ``delta``/``let``/``quote``/``max_depth`` — see
    :mod:`repro.obs.profiler`), on completion *and* on fuel exhaustion
    (with the partial counts), never on other errors.  The total step
    count is identical with and without an observer.
    """
    base = "v"
    free = free_vars(term)
    while any(
        name.startswith(base) and name[len(base):].isdigit() for name in free
    ):
        base += "_"
    # Ratchet the recursion limit up, never back down: restoring a lower
    # limit from a nested normalization while an outer computation is still
    # deep would be unsound, and the churn confuses test tooling.
    if sys.getrecursionlimit() < max_depth:
        sys.setrecursionlimit(max_depth)
    counter = (
        _ProfilingCounter(fuel) if observer is not None else _StepCounter(fuel)
    )
    try:
        value = _eval(term, None, counter)
        counter.begin_quote()
        normal_form = _quote(value, _FreshNames(base), counter)
    except FuelExhausted:
        if observer is not None:
            observer(counter.snapshot())
        raise
    if observer is not None:
        observer(counter.snapshot())
    return normal_form, counter.steps


def nbe_normalize(
    term: Term,
    max_depth: int = 600_000,
    fuel: Optional[int] = None,
) -> Term:
    """Normalize ``term`` via evaluation and readback.

    Produces the beta-delta-let normal form (alpha-equal to the output of
    :func:`repro.lam.reduce.normalize`); bound variables in the result are
    renamed to a fresh ``v<level>`` scheme that avoids the term's free
    variables.  ``fuel``, when given, bounds the evaluation step count (see
    :func:`nbe_normalize_counted`).
    """
    normal_form, _ = nbe_normalize_counted(term, max_depth=max_depth, fuel=fuel)
    return normal_form
