"""Parser for the concrete term syntax (inverse of :mod:`repro.lam.pretty`).

Grammar (lambda bodies and let bodies extend as far right as possible;
application is left-associative):

    term   ::= lambda | let | app
    lambda ::= ("\\" | "λ") binder+ "." term
    binder ::= name (":" type)?
    let    ::= "let" name "=" term "in" term
    app    ::= atom+
    atom   ::= name | "Eq" | "(" term ")"

Names are identifiers ``[A-Za-z_][A-Za-z0-9_']*``.  A name is parsed as an
atomic constant when it matches the ``o<digits>`` convention of
:mod:`repro.naming` or is listed in ``constants``; otherwise it is a
variable.  ``Eq`` is reserved for the equality constant.

Type annotations use the syntax of :func:`repro.types.parser.parse_type`
(``o``, ``g``, type variables, and ``->``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, List, Set

from repro.errors import ParseError
from repro.lam.terms import Abs, App, Let, Const, EqConst, Term, Var
from repro.naming import constant_index

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<lambda>\\|λ)
  | (?P<dot>\.)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<colon>:)
  | (?P<arrow>->)
  | (?P<equals>=)
  | (?P<name>[A-Za-z_][A-Za-z0-9_']*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"let", "in", "Eq"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def tokenize(source: str) -> List[_Token]:
    """Split ``source`` into tokens, rejecting anything unrecognized."""
    tokens: List[_Token] = []
    index = 0
    while index < len(source):
        match = _TOKEN_RE.match(source, index)
        if match is None:
            raise ParseError(
                f"unexpected character {source[index]!r}", index, source
            )
        kind = match.lastgroup
        text = match.group()
        if kind != "ws":
            if kind == "name" and text in _KEYWORDS:
                kind = text
            tokens.append(_Token(kind, text, index))
        index = match.end()
    tokens.append(_Token("eof", "", len(source)))
    return tokens


class _Parser:
    def __init__(self, source: str, constants: Set[str]):
        self.source = source
        self.tokens = tokenize(source)
        self.pos = 0
        self.constants = constants

    # -- token plumbing ----------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def next(self) -> _Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.kind} {token.text!r}",
                token.position,
                self.source,
            )
        return self.next()

    # -- grammar -----------------------------------------------------------

    def term(self) -> Term:
        token = self.peek()
        if token.kind == "lambda":
            return self.lambda_()
        if token.kind == "let":
            return self.let_()
        return self.application()

    def lambda_(self) -> Term:
        self.expect("lambda")
        binders = [self.binder()]
        while self.peek().kind == "name":
            binders.append(self.binder())
        self.expect("dot")
        body = self.term()
        for name, annotation in reversed(binders):
            body = Abs(name, body, annotation)
        return body

    def binder(self):
        name = self.expect("name").text
        annotation = None
        if self.peek().kind == "colon":
            self.next()
            annotation = self.type_()
        return name, annotation

    def let_(self) -> Term:
        self.expect("let")
        name = self.expect("name").text
        self.expect("equals")
        bound = self.term()
        self.expect("in")
        body = self.term()
        return Let(name, bound, body)

    def application(self) -> Term:
        result = self.atom()
        while self.peek().kind in ("name", "lparen", "Eq"):
            argument = self.atom()
            result = App(result, argument)
        return result

    def atom(self) -> Term:
        token = self.peek()
        if token.kind == "lparen":
            self.next()
            inner = self.term()
            self.expect("rparen")
            return inner
        if token.kind == "Eq":
            self.next()
            return EqConst()
        if token.kind == "name":
            self.next()
            name = token.text
            if name in self.constants or constant_index(name) is not None:
                return Const(name)
            return Var(name)
        raise ParseError(
            f"expected a term, found {token.kind} {token.text!r}",
            token.position,
            self.source,
        )

    def type_(self):
        """Parse a type annotation: atom (``o``, ``g``, var, parens) or
        right-associative arrow chains."""
        from repro.types.types import Arrow

        left = self.type_atom()
        if self.peek().kind == "arrow":
            self.next()
            right = self.type_()
            return Arrow(left, right)
        return left

    def type_atom(self):
        from repro.types.types import BaseO, BaseG, TypeVar

        token = self.peek()
        if token.kind == "lparen":
            self.next()
            inner = self.type_()
            self.expect("rparen")
            return inner
        if token.kind == "name":
            self.next()
            if token.text == "o":
                return BaseO()
            if token.text == "g":
                return BaseG()
            return TypeVar(token.text)
        raise ParseError(
            f"expected a type, found {token.kind} {token.text!r}",
            token.position,
            self.source,
        )


def parse(source: str, constants: Iterable[str] = ()) -> Term:
    """Parse ``source`` into a term.

    ``constants`` lists extra names (beyond the ``o<digits>`` convention) to
    treat as atomic constants rather than variables.
    """
    parser = _Parser(source, set(constants))
    result = parser.term()
    trailing = parser.peek()
    if trailing.kind != "eof":
        raise ParseError(
            f"trailing input: {trailing.text!r}",
            trailing.position,
            source,
        )
    return result
