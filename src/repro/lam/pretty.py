"""Pretty-printing of terms in the paper's concrete syntax.

The printed form round-trips through :func:`repro.lam.parser.parse`:

* ``\\x. M`` for abstraction (``\\x:T. M`` when Church-annotated and
  ``annotations=True``),
* juxtaposition for application, left-associative, minimal parentheses,
* ``let x = M in N`` for let abstraction,
* ``Eq`` for the equality constant; constants print as their names.

``unicode_lambda=True`` prints ``λ`` instead of ``\\`` (the parser accepts
both).
"""

from __future__ import annotations

from repro.lam.terms import Abs, App, Const, EqConst, Let, Term, Var

# Precedence levels: a term prints without parentheses when its own level is
# at least the level its context requires.
_LEVEL_LAMBDA = 0   # lambdas and lets: extend as far right as possible
_LEVEL_APP = 1      # application spine
_LEVEL_ATOM = 2     # variables and constants


def pretty(
    term: Term,
    *,
    unicode_lambda: bool = False,
    annotations: bool = False,
) -> str:
    """Render ``term`` as a parseable string."""
    lam_symbol = "λ" if unicode_lambda else "\\"

    def type_note(node: Abs) -> str:
        if not annotations or node.annotation is None:
            return ""
        from repro.types.pretty import pretty_type

        return f":{pretty_type(node.annotation)}"

    def walk(node: Term, required: int) -> str:
        if isinstance(node, Var):
            return node.name
        if isinstance(node, Const):
            return node.name
        if isinstance(node, EqConst):
            return "Eq"
        if isinstance(node, Abs):
            # Collapse λx. λy. M into λx. λy. ... in one pass for brevity.
            text = (
                f"{lam_symbol}{node.var}{type_note(node)}. "
                f"{walk(node.body, _LEVEL_LAMBDA)}"
            )
            return _wrap(text, _LEVEL_LAMBDA, required)
        if isinstance(node, App):
            text = (
                f"{walk(node.fn, _LEVEL_APP)} {walk(node.arg, _LEVEL_ATOM)}"
            )
            return _wrap(text, _LEVEL_APP, required)
        if isinstance(node, Let):
            text = (
                f"let {node.var} = {walk(node.bound, _LEVEL_LAMBDA)} "
                f"in {walk(node.body, _LEVEL_LAMBDA)}"
            )
            return _wrap(text, _LEVEL_LAMBDA, required)
        raise TypeError(f"not a term: {node!r}")

    return walk(term, _LEVEL_LAMBDA)


def _wrap(text: str, level: int, required: int) -> str:
    if level < required:
        return f"({text})"
    return text


def pretty_compact(term: Term) -> str:
    """One-line rendering with unicode lambda — for logs and reprs."""
    return pretty(term, unicode_lambda=True)
