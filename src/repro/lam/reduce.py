"""Small-step beta/delta reduction (the paper's operational semantics).

Section 2.1 defines ``>`` as the union of alpha, beta, and — for TLC= —
delta reduction, and query semantics as reduction to normal form.  This
module is the *reference* evaluator: auditable, step-countable, and
strategy-parametric.  The performance evaluator is :mod:`repro.lam.nbe`.

Redexes:

* **beta**: ``(λx. E) E'  >  E[x := E']``
* **delta**: ``Eq o_i o_j  >  λx. λy. x`` if ``i = j`` else ``λx. λy. y``
  (the Church booleans True/False of Section 2.3)
* **let**: ``let x = M in N  >  N[x := M]`` — the paper's operational
  reading "let x = M in N is treated as (λx. N) M", contracted in one step.

Eta reduction (``λx. M x > M`` when ``x`` not free in ``M``) is available
separately via :func:`eta_step`; following the paper we "do not use eta as
part of ``>``".

Strategies:

* ``Strategy.NORMAL_ORDER`` — leftmost-outermost; normalizing.
* ``Strategy.APPLICATIVE_ORDER`` — leftmost-innermost.
* ``Strategy.WEAK_HEAD`` — leftmost-outermost but never under a binder;
  stops at weak head normal form.

By Church-Rosser and strong normalization (Properties 1-2 of Section 2.1),
all strategies agree on the normal forms of well-typed terms; the *number*
of steps differs wildly, which is exactly the Section 5 story (naive
strategies can take exponentially many steps on TLI=1 queries).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import FuelExhausted, ReductionError
from repro.lam.terms import (
    Abs,
    App,
    Const,
    EqConst,
    Let,
    Term,
    Var,
    free_vars,
)
from repro.lam.subst import substitute

#: Church booleans as produced by the delta rule (Section 2.3).
TRUE = Abs("x", Abs("y", Var("x")))
FALSE = Abs("x", Abs("y", Var("y")))

DEFAULT_FUEL = 1_000_000


class Strategy(enum.Enum):
    """Reduction strategies for :func:`step` / :func:`normalize`."""

    NORMAL_ORDER = "normal-order"
    APPLICATIVE_ORDER = "applicative-order"
    WEAK_HEAD = "weak-head"


@dataclass
class NormalizationResult:
    """A normal form together with how it was reached."""

    term: Term
    steps: int
    strategy: Strategy
    beta_steps: int = 0
    delta_steps: int = 0
    let_steps: int = 0


def contract_root(term: Term) -> Optional[Tuple[Term, str]]:
    """Contract the redex at the root of ``term``, if there is one.

    Returns ``(reduct, kind)`` with kind in {"beta", "delta", "let"},
    or ``None`` when the root is not a redex.
    """
    if isinstance(term, App):
        if isinstance(term.fn, Abs):
            return substitute(term.fn.body, term.fn.var, term.arg), "beta"
        # Delta: Eq applied to two constants.
        if (
            isinstance(term.fn, App)
            and isinstance(term.fn.fn, EqConst)
            and isinstance(term.fn.arg, Const)
            and isinstance(term.arg, Const)
        ):
            same = term.fn.arg.name == term.arg.name
            return (TRUE if same else FALSE), "delta"
    if isinstance(term, Let):
        return substitute(term.body, term.var, term.bound), "let"
    return None


def step(
    term: Term, strategy: Strategy = Strategy.NORMAL_ORDER
) -> Optional[Tuple[Term, str]]:
    """Perform one reduction step under ``strategy``.

    Returns ``(new_term, kind)`` or ``None`` if no redex is available (for
    ``WEAK_HEAD``: none in head position).
    """
    if strategy is Strategy.NORMAL_ORDER:
        return _step_normal(term, weak=False)
    if strategy is Strategy.WEAK_HEAD:
        return _step_normal(term, weak=True)
    if strategy is Strategy.APPLICATIVE_ORDER:
        return _step_applicative(term)
    raise ReductionError(f"unknown strategy {strategy!r}")


def _step_normal(term: Term, weak: bool) -> Optional[Tuple[Term, str]]:
    contracted = contract_root(term)
    if contracted is not None:
        return contracted
    if isinstance(term, App):
        inner = _step_normal(term.fn, weak)
        if inner is not None:
            return App(inner[0], term.arg), inner[1]
        if weak:
            # Weak head reduction stops once the head is stuck: argument
            # positions are never reduced.
            return None
        inner = _step_normal(term.arg, weak)
        if inner is not None:
            return App(term.fn, inner[0]), inner[1]
        return None
    if isinstance(term, Abs) and not weak:
        inner = _step_normal(term.body, weak)
        if inner is not None:
            return Abs(term.var, inner[0], term.annotation), inner[1]
    return None


def _step_applicative(term: Term) -> Optional[Tuple[Term, str]]:
    if isinstance(term, App):
        inner = _step_applicative(term.fn)
        if inner is not None:
            return App(inner[0], term.arg), inner[1]
        inner = _step_applicative(term.arg)
        if inner is not None:
            return App(term.fn, inner[0]), inner[1]
        return contract_root(term)
    if isinstance(term, Abs):
        inner = _step_applicative(term.body)
        if inner is not None:
            return Abs(term.var, inner[0], term.annotation), inner[1]
        return None
    if isinstance(term, Let):
        inner = _step_applicative(term.bound)
        if inner is not None:
            return Let(term.var, inner[0], term.body), inner[1]
        return contract_root(term)
    return None


def normalize(
    term: Term,
    strategy: Strategy = Strategy.NORMAL_ORDER,
    fuel: int = DEFAULT_FUEL,
    observer: Optional[Callable[[Dict[str, int]], None]] = None,
) -> NormalizationResult:
    """Reduce ``term`` to normal form (or weak head normal form under
    ``WEAK_HEAD``), counting steps by kind.

    Raises :class:`FuelExhausted` after ``fuel`` steps without reaching a
    normal form — for well-typed terms this means the budget was too small
    (strong normalization guarantees termination).

    ``observer``, when given, is invoked exactly once with the step
    breakdown dict (``steps``/``beta``/``delta``/``let`` — the
    :mod:`repro.obs.profiler` contract; small-step reduction has no
    readback phase, so ``quote``/``max_depth`` are absent), both on
    completion and on fuel exhaustion (with the partial counts).
    """
    counts: Dict[str, int] = {"beta": 0, "delta": 0, "let": 0}
    steps = 0

    def report() -> None:
        if observer is not None:
            observer({"steps": steps, **counts})

    current = term
    while True:
        outcome = step(current, strategy)
        if outcome is None:
            report()
            return NormalizationResult(
                term=current,
                steps=steps,
                strategy=strategy,
                beta_steps=counts["beta"],
                delta_steps=counts["delta"],
                let_steps=counts["let"],
            )
        current, kind = outcome
        counts[kind] += 1
        steps += 1
        if steps > fuel:
            report()
            raise FuelExhausted(fuel)


def is_normal_form(term: Term) -> bool:
    """No beta, delta, or let redex anywhere in ``term``."""
    return find_redex(term) is None


def find_redex(term: Term) -> Optional[Term]:
    """The leftmost-outermost redex of ``term``, or ``None``."""
    if contract_root(term) is not None:
        return term
    if isinstance(term, App):
        return find_redex(term.fn) or find_redex(term.arg)
    if isinstance(term, Abs):
        return find_redex(term.body)
    if isinstance(term, Let):
        # A let is always a redex; unreachable after contract_root, but kept
        # for clarity.
        return term  # pragma: no cover
    return None


def eta_step(term: Term) -> Optional[Term]:
    """One leftmost-outermost eta contraction: ``λx. M x > M`` (x not free
    in M).  Not part of the default reduction relation."""
    if (
        isinstance(term, Abs)
        and isinstance(term.body, App)
        and isinstance(term.body.arg, Var)
        and term.body.arg.name == term.var
        and term.var not in free_vars(term.body.fn)
    ):
        return term.body.fn
    if isinstance(term, Abs):
        inner = eta_step(term.body)
        if inner is not None:
            return Abs(term.var, inner, term.annotation)
        return None
    if isinstance(term, App):
        inner = eta_step(term.fn)
        if inner is not None:
            return App(inner, term.arg)
        inner = eta_step(term.arg)
        if inner is not None:
            return App(term.fn, inner)
        return None
    if isinstance(term, Let):
        inner = eta_step(term.bound)
        if inner is not None:
            return Let(term.var, inner, term.body)
        inner = eta_step(term.body)
        if inner is not None:
            return Let(term.var, term.bound, inner)
        return None
    return None


def eta_normalize(term: Term, fuel: int = DEFAULT_FUEL) -> Term:
    """Contract eta redexes to exhaustion (beta/delta redexes untouched)."""
    current = term
    for _ in range(fuel):
        nxt = eta_step(current)
        if nxt is None:
            return current
        current = nxt
    raise FuelExhausted(fuel)
