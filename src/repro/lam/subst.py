"""Capture-avoiding substitution and bound-variable renaming.

Implements ``E[x := E']`` — "E with E' substituted for all free occurrences
of x in E" (Section 2.1) — with the standard capture-avoidance discipline:
binders whose variable occurs free in the payload (or equals the substituted
variable) are alpha-renamed on the way down.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.lam.terms import (
    Abs,
    App,
    Const,
    EqConst,
    Let,
    Term,
    Var,
    all_vars,
    free_vars,
)
from repro.naming import NameSupply


def substitute(term: Term, var: str, payload: Term) -> Term:
    """Return ``term[var := payload]`` avoiding variable capture."""
    return substitute_many(term, {var: payload})


def substitute_many(term: Term, bindings: Mapping[str, Term]) -> Term:
    """Simultaneous capture-avoiding substitution of several variables.

    Simultaneity matters: ``substitute_many(t, {x: y, y: x})`` swaps the two
    variables, which sequential substitution cannot express.
    """
    live = {
        name: payload
        for name, payload in bindings.items()
        if payload != Var(name)
    }
    if not live:
        return term
    supply = NameSupply(all_vars(term))
    for payload in live.values():
        supply.avoid(free_vars(payload))
    return _subst(term, live, supply)


def _subst(term: Term, bindings: Dict[str, Term], supply: NameSupply) -> Term:
    if isinstance(term, Var):
        return bindings.get(term.name, term)
    if isinstance(term, (Const, EqConst)):
        return term
    if not (free_vars(term) & bindings.keys()):
        return term
    if isinstance(term, App):
        return App(
            _subst(term.fn, bindings, supply),
            _subst(term.arg, bindings, supply),
        )
    if isinstance(term, Abs):
        var, body, live = _enter_binder(
            term.var, term.body, bindings, supply
        )
        return Abs(var, _subst(body, live, supply), term.annotation)
    if isinstance(term, Let):
        bound = _subst(term.bound, bindings, supply)
        var, body, live = _enter_binder(
            term.var, term.body, bindings, supply
        )
        return Let(var, bound, _subst(body, live, supply))
    raise TypeError(f"not a term: {term!r}")


def _enter_binder(
    var: str,
    body: Term,
    bindings: Dict[str, Term],
    supply: NameSupply,
) -> Tuple[str, Term, Dict[str, Term]]:
    """Prepare to substitute under a binder for ``var``.

    Drops the binding shadowed by ``var`` and renames ``var`` when it would
    capture a free variable of a payload that is actually about to be
    substituted into ``body``.  Returns the (possibly renamed) binder, the
    (possibly renamed) body, and the bindings still live under the binder.
    """
    body_free = free_vars(body)
    live = {
        name: payload
        for name, payload in bindings.items()
        if name != var and name in body_free
    }
    captured = any(var in free_vars(payload) for payload in live.values())
    if captured:
        fresh = supply.fresh(var)
        body = _subst(body, {var: Var(fresh)}, supply)
        var = fresh
    return var, body, live


def rename_bound(term: Term, avoid=()) -> Term:
    """Alpha-rename so that every binder in ``term`` is distinct and disjoint
    from ``avoid`` and from the free variables of ``term`` (Barendregt
    convention).  Useful before analyses that track variables by name.
    """
    supply = NameSupply(free_vars(term))
    supply.avoid(avoid)

    def walk(node: Term, renaming: Dict[str, str]) -> Term:
        if isinstance(node, Var):
            return Var(renaming.get(node.name, node.name))
        if isinstance(node, (Const, EqConst)):
            return node
        if isinstance(node, App):
            return App(walk(node.fn, renaming), walk(node.arg, renaming))
        if isinstance(node, Abs):
            fresh = supply.fresh(node.var)
            inner = dict(renaming)
            inner[node.var] = fresh
            return Abs(fresh, walk(node.body, inner), node.annotation)
        if isinstance(node, Let):
            bound = walk(node.bound, renaming)
            fresh = supply.fresh(node.var)
            inner = dict(renaming)
            inner[node.var] = fresh
            return Let(fresh, bound, walk(node.body, inner))
        raise TypeError(f"not a term: {node!r}")

    return walk(term, {})
