"""Abstract syntax of TLC= / core-ML= terms (Section 2 of the paper).

Terms are immutable and hashable.  Structural equality is *literal* (names
of bound variables matter); use :func:`repro.lam.alpha.alpha_equal` for the
paper's ``=`` (identity up to renaming of bound variables).

The grammar, following Sections 2.1-2.2:

    E ::= x                 variable                          (Var)
        | o_i               atomic constant of type o         (Const)
        | Eq                equality constant                 (EqConst)
        | (E E)             application                       (App)
        | λx. E             abstraction, optionally annotated (Abs)
        | let x = E in E    let abstraction (core-ML=)        (Let)

Annotations on ``Abs`` binders give the "Church style" presentation the
paper uses for readability; the Curry-style reconstruction in
:mod:`repro.types.infer` ignores or checks them as requested.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.types.types import Type


class Term:
    """Base class of all term nodes."""

    __slots__ = ()

    # Concrete subclasses are frozen dataclasses; the base class only hosts
    # shared conveniences.

    def __call__(self, *args: "Term") -> "Term":
        """Sugar: ``f(a, b)`` builds the application spine ``((f a) b)``."""
        return app(self, *args)

    def pretty(self) -> str:
        from repro.lam.pretty import pretty

        return pretty(self)

    def __str__(self) -> str:
        return self.pretty()


@dataclass(frozen=True, repr=True, slots=True)
class Var(Term):
    """A term variable."""

    name: str



@dataclass(frozen=True, repr=True, slots=True)
class Const(Term):
    """An atomic constant ``o_i`` of the fixed base type ``o``."""

    name: str



@dataclass(frozen=True, repr=True, slots=True)
class EqConst(Term):
    """The equality constant ``Eq : o -> o -> g -> g -> g``.

    ``Eq o_i o_j`` delta-reduces to the Church boolean ``λx.λy.x`` when
    ``i = j`` and to ``λx.λy.y`` otherwise (Section 2.1).
    """


@dataclass(frozen=True, repr=True, slots=True)
class Abs(Term):
    """Lambda abstraction ``λvar. body`` with optional type annotation."""

    var: str
    body: Term
    annotation: Optional["Type"] = field(default=None, compare=False)



@dataclass(frozen=True, repr=True, slots=True)
class App(Term):
    """Application ``(fn arg)``."""

    fn: Term
    arg: Term



@dataclass(frozen=True, repr=True, slots=True)
class Let(Term):
    """Let abstraction ``let var = bound in body`` (core-ML=, Section 2.2)."""

    var: str
    bound: Term
    body: Term



# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------

def lam(variables, body: Term, annotations: Sequence["Type"] = ()) -> Term:
    """Build ``λv1. λv2. ... body``.

    ``variables`` is a name, a ``Var``, or a sequence of those.  Optional
    ``annotations`` (parallel to the variables) produce Church-style binders.
    """
    if isinstance(variables, (str, Var)):
        variables = [variables]
    names = [v.name if isinstance(v, Var) else v for v in variables]
    result = body
    padded = list(annotations) + [None] * (len(names) - len(annotations))
    for name, note in zip(reversed(names), reversed(padded)):
        result = Abs(name, result, note)
    return result


def abs_many(names: Sequence[str], body: Term) -> Term:
    """Alias of :func:`lam` restricted to plain name sequences."""
    return lam(list(names), body)


def app(fn: Term, *args: Term) -> Term:
    """Build the left-nested application spine ``(((fn a1) a2) ... an)``."""
    result = fn
    for arg in args:
        result = App(result, arg)
    return result


def let(var, bound: Term, body: Term) -> Term:
    """Build ``let var = bound in body``."""
    name = var.name if isinstance(var, Var) else var
    return Let(name, bound, body)


# ---------------------------------------------------------------------------
# Observations
# ---------------------------------------------------------------------------

def free_vars(term: Term) -> FrozenSet[str]:
    """The set of free variable names of ``term``."""
    if isinstance(term, Var):
        return frozenset((term.name,))
    if isinstance(term, (Const, EqConst)):
        return frozenset()
    if isinstance(term, Abs):
        return free_vars(term.body) - {term.var}
    if isinstance(term, App):
        return free_vars(term.fn) | free_vars(term.arg)
    if isinstance(term, Let):
        return free_vars(term.bound) | (free_vars(term.body) - {term.var})
    raise TypeError(f"not a term: {term!r}")


def bound_vars(term: Term) -> FrozenSet[str]:
    """The set of variable names bound anywhere inside ``term``."""
    if isinstance(term, (Var, Const, EqConst)):
        return frozenset()
    if isinstance(term, Abs):
        return bound_vars(term.body) | {term.var}
    if isinstance(term, App):
        return bound_vars(term.fn) | bound_vars(term.arg)
    if isinstance(term, Let):
        return bound_vars(term.bound) | bound_vars(term.body) | {term.var}
    raise TypeError(f"not a term: {term!r}")


def all_vars(term: Term) -> FrozenSet[str]:
    """Free and bound variable names of ``term``."""
    return free_vars(term) | bound_vars(term)


def subterms(term: Term) -> Iterator[Term]:
    """Yield every subterm of ``term`` (pre-order, including ``term``)."""
    stack = [term]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, Abs):
            stack.append(node.body)
        elif isinstance(node, App):
            stack.append(node.arg)
            stack.append(node.fn)
        elif isinstance(node, Let):
            stack.append(node.body)
            stack.append(node.bound)


def term_size(term: Term) -> int:
    """Number of AST nodes in ``term``."""
    return sum(1 for _ in subterms(term))


def constants_of(term: Term) -> FrozenSet[str]:
    """Names of the atomic constants occurring in ``term``."""
    return frozenset(
        node.name for node in subterms(term) if isinstance(node, Const)
    )


def spine(term: Term) -> Tuple[Term, Tuple[Term, ...]]:
    """Decompose ``term`` into head and arguments: ``f M1 ... Ml``.

    Returns ``(f, (M1, ..., Ml))`` with ``f`` not an application.  The paper
    calls ``f`` the *function symbol governing* the ``M_i`` (Section 5.1).
    """
    args = []
    node = term
    while isinstance(node, App):
        args.append(node.arg)
        node = node.fn
    args.reverse()
    return node, tuple(args)


def binder_prefix(term: Term) -> Tuple[Tuple[str, ...], Term]:
    """Strip the maximal prefix of lambda binders: ``λx1...λxk. M``.

    Returns ``((x1, ..., xk), M)`` with ``M`` not an abstraction.
    """
    names = []
    node = term
    while isinstance(node, Abs):
        names.append(node.var)
        node = node.body
    return tuple(names), node


def map_subterms(term: Term, fn: Callable[[Term], Term]) -> Term:
    """Rebuild ``term`` with ``fn`` applied to each immediate child."""
    if isinstance(term, (Var, Const, EqConst)):
        return term
    if isinstance(term, Abs):
        return Abs(term.var, fn(term.body), term.annotation)
    if isinstance(term, App):
        return App(fn(term.fn), fn(term.arg))
    if isinstance(term, Let):
        return Let(term.var, fn(term.bound), fn(term.body))
    raise TypeError(f"not a term: {term!r}")


def expand_lets(term: Term) -> Term:
    """Replace every ``let x = M in N`` by ``N[x := M]`` (Section 5).

    This is the let-elimination step the paper performs on MLI=_i query
    terms before structural analysis: "we can eliminate all let's from Q by
    replacing every subterm of the form let x = N in M with M[x := N]".
    Note the result can be exponentially larger than the input.
    """
    from repro.lam.subst import substitute

    if isinstance(term, Let):
        bound = expand_lets(term.bound)
        body = expand_lets(term.body)
        return substitute(body, term.var, bound)
    return map_subterms(term, expand_lets)


def contains_let(term: Term) -> bool:
    """True iff ``term`` contains a ``let`` node (i.e. is strictly core-ML)."""
    return any(isinstance(node, Let) for node in subterms(term))


# ---------------------------------------------------------------------------
# Structural digests and hash-consing
# ---------------------------------------------------------------------------
#
# The service layer (:mod:`repro.service`) keys plan/result caches on term
# identity.  Structural ``==`` on large terms is O(size) per comparison, so
# cache lookups would dominate; instead terms are keyed by an
# *alpha-invariant* content digest: bound variables are serialized as de
# Bruijn distances, so alpha-variants share a digest (the paper's ``=`` is
# identity up to renaming of bound variables).  The digest of a given term
# *object* is computed once — O(size) — and memoized, so repeated lookups
# are O(1).

#: Memo table ``id(term) -> (term, digest)``.  The strong reference keeps
#: the id stable for the lifetime of the entry; bounded FIFO eviction keeps
#: the table from growing without limit.
_DIGEST_CACHE: Dict[int, Tuple[Term, str]] = {}
_DIGEST_CACHE_MAX = 8192


def digest(term: Term) -> str:
    """An alpha-invariant SHA-256 content digest of ``term``.

    Computed iteratively (no recursion-depth limit on encoded databases),
    memoized per term object: O(size) the first time, O(1) thereafter.
    Annotations on ``Abs`` binders are ignored, matching structural ``==``.
    Alpha-variants digest equal; structurally different terms digest
    differently (up to SHA-256 collisions).
    """
    cached = _DIGEST_CACHE.get(id(term))
    if cached is not None and cached[0] is term:
        return cached[1]
    parts: List[bytes] = []
    # Scope stack per name: the binder depths currently in scope.
    scopes: Dict[str, List[int]] = {}
    depth = 0
    # Work stack of (op, payload): "term" serializes a node, "bind" opens a
    # binder scope, "pop" closes it.  Pre-order with fixed arities per
    # constructor makes the byte string an injective encoding.
    stack: List[Tuple[str, object]] = [("term", term)]
    while stack:
        op, payload = stack.pop()
        if op == "bind":
            scopes.setdefault(payload, []).append(depth)  # type: ignore[arg-type]
            depth += 1
            continue
        if op == "pop":
            scopes[payload].pop()  # type: ignore[index]
            depth -= 1
            continue
        node = payload
        if isinstance(node, Var):
            levels = scopes.get(node.name)
            if levels:
                # Bound: distance to the binder (de Bruijn index).
                parts.append(b"b%d;" % (depth - 1 - levels[-1]))
            else:
                name = node.name.encode()
                parts.append(b"v%d:%s;" % (len(name), name))
        elif isinstance(node, Const):
            name = node.name.encode()
            parts.append(b"c%d:%s;" % (len(name), name))
        elif isinstance(node, EqConst):
            parts.append(b"q;")
        elif isinstance(node, Abs):
            parts.append(b"L")
            stack.append(("pop", node.var))
            stack.append(("term", node.body))
            stack.append(("bind", node.var))
        elif isinstance(node, App):
            parts.append(b"A")
            stack.append(("term", node.arg))
            stack.append(("term", node.fn))
        elif isinstance(node, Let):
            # ``let x = M in N``: x scopes over N only.
            parts.append(b"T")
            stack.append(("pop", node.var))
            stack.append(("term", node.body))
            stack.append(("bind", node.var))
            stack.append(("term", node.bound))
        else:
            raise TypeError(f"not a term: {node!r}")
    result = hashlib.sha256(b"".join(parts)).hexdigest()
    if len(_DIGEST_CACHE) >= _DIGEST_CACHE_MAX:
        _DIGEST_CACHE.pop(next(iter(_DIGEST_CACHE)))
    _DIGEST_CACHE[id(term)] = (term, result)
    return result


#: Hash-consing table: shallow structural key -> canonical node.
_INTERN_TABLE: Dict[tuple, Term] = {}


def intern_term(term: Term) -> Term:
    """Hash-cons ``term``: structurally equal terms map to one shared
    object graph, so later ``is``-checks, ``==``, and :func:`digest` calls
    on interned terms are cheap and maximally shared.

    The rebuild is iterative post-order; each node costs O(1) table work
    (children are keyed by the ``id`` of their canonical representatives,
    which the table keeps alive).  ``Abs`` annotations follow the first
    interned occurrence, consistent with annotations being ignored by
    structural equality.
    """
    done: Dict[int, Term] = {}

    def key_of(node: Term) -> tuple:
        if isinstance(node, Var):
            return ("V", node.name)
        if isinstance(node, Const):
            return ("C", node.name)
        if isinstance(node, EqConst):
            return ("Q",)
        if isinstance(node, Abs):
            return ("L", node.var, id(done[id(node.body)]))
        if isinstance(node, App):
            return ("A", id(done[id(node.fn)]), id(done[id(node.arg)]))
        if isinstance(node, Let):
            return (
                "T",
                node.var,
                id(done[id(node.bound)]),
                id(done[id(node.body)]),
            )
        raise TypeError(f"not a term: {node!r}")

    def rebuild(node: Term) -> Term:
        if isinstance(node, Abs):
            return Abs(node.var, done[id(node.body)], node.annotation)
        if isinstance(node, App):
            return App(done[id(node.fn)], done[id(node.arg)])
        if isinstance(node, Let):
            return Let(node.var, done[id(node.bound)], done[id(node.body)])
        return node

    stack: List[Tuple[Term, bool]] = [(term, False)]
    while stack:
        node, ready = stack.pop()
        if id(node) in done:
            continue
        if not ready:
            stack.append((node, True))
            if isinstance(node, Abs):
                stack.append((node.body, False))
            elif isinstance(node, App):
                stack.append((node.arg, False))
                stack.append((node.fn, False))
            elif isinstance(node, Let):
                stack.append((node.body, False))
                stack.append((node.bound, False))
            continue
        key = key_of(node)
        canonical = _INTERN_TABLE.get(key)
        if canonical is None:
            canonical = rebuild(node)
            _INTERN_TABLE[key] = canonical
        done[id(node)] = canonical
    return done[id(term)]


def clear_intern_table() -> None:
    """Drop all hash-consed nodes (frees memory; interned terms stay valid)."""
    _INTERN_TABLE.clear()
