"""Abstract syntax of TLC= / core-ML= terms (Section 2 of the paper).

Terms are immutable and hashable.  Structural equality is *literal* (names
of bound variables matter); use :func:`repro.lam.alpha.alpha_equal` for the
paper's ``=`` (identity up to renaming of bound variables).

The grammar, following Sections 2.1-2.2:

    E ::= x                 variable                          (Var)
        | o_i               atomic constant of type o         (Const)
        | Eq                equality constant                 (EqConst)
        | (E E)             application                       (App)
        | λx. E             abstraction, optionally annotated (Abs)
        | let x = E in E    let abstraction (core-ML=)        (Let)

Annotations on ``Abs`` binders give the "Church style" presentation the
paper uses for readability; the Curry-style reconstruction in
:mod:`repro.types.infer` ignores or checks them as requested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, FrozenSet, Iterator, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.types.types import Type


class Term:
    """Base class of all term nodes."""

    __slots__ = ()

    # Concrete subclasses are frozen dataclasses; the base class only hosts
    # shared conveniences.

    def __call__(self, *args: "Term") -> "Term":
        """Sugar: ``f(a, b)`` builds the application spine ``((f a) b)``."""
        return app(self, *args)

    def pretty(self) -> str:
        from repro.lam.pretty import pretty

        return pretty(self)

    def __str__(self) -> str:
        return self.pretty()


@dataclass(frozen=True, repr=True, slots=True)
class Var(Term):
    """A term variable."""

    name: str



@dataclass(frozen=True, repr=True, slots=True)
class Const(Term):
    """An atomic constant ``o_i`` of the fixed base type ``o``."""

    name: str



@dataclass(frozen=True, repr=True, slots=True)
class EqConst(Term):
    """The equality constant ``Eq : o -> o -> g -> g -> g``.

    ``Eq o_i o_j`` delta-reduces to the Church boolean ``λx.λy.x`` when
    ``i = j`` and to ``λx.λy.y`` otherwise (Section 2.1).
    """


@dataclass(frozen=True, repr=True, slots=True)
class Abs(Term):
    """Lambda abstraction ``λvar. body`` with optional type annotation."""

    var: str
    body: Term
    annotation: Optional["Type"] = field(default=None, compare=False)



@dataclass(frozen=True, repr=True, slots=True)
class App(Term):
    """Application ``(fn arg)``."""

    fn: Term
    arg: Term



@dataclass(frozen=True, repr=True, slots=True)
class Let(Term):
    """Let abstraction ``let var = bound in body`` (core-ML=, Section 2.2)."""

    var: str
    bound: Term
    body: Term



# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------

def lam(variables, body: Term, annotations: Sequence["Type"] = ()) -> Term:
    """Build ``λv1. λv2. ... body``.

    ``variables`` is a name, a ``Var``, or a sequence of those.  Optional
    ``annotations`` (parallel to the variables) produce Church-style binders.
    """
    if isinstance(variables, (str, Var)):
        variables = [variables]
    names = [v.name if isinstance(v, Var) else v for v in variables]
    result = body
    padded = list(annotations) + [None] * (len(names) - len(annotations))
    for name, note in zip(reversed(names), reversed(padded)):
        result = Abs(name, result, note)
    return result


def abs_many(names: Sequence[str], body: Term) -> Term:
    """Alias of :func:`lam` restricted to plain name sequences."""
    return lam(list(names), body)


def app(fn: Term, *args: Term) -> Term:
    """Build the left-nested application spine ``(((fn a1) a2) ... an)``."""
    result = fn
    for arg in args:
        result = App(result, arg)
    return result


def let(var, bound: Term, body: Term) -> Term:
    """Build ``let var = bound in body``."""
    name = var.name if isinstance(var, Var) else var
    return Let(name, bound, body)


# ---------------------------------------------------------------------------
# Observations
# ---------------------------------------------------------------------------

def free_vars(term: Term) -> FrozenSet[str]:
    """The set of free variable names of ``term``."""
    if isinstance(term, Var):
        return frozenset((term.name,))
    if isinstance(term, (Const, EqConst)):
        return frozenset()
    if isinstance(term, Abs):
        return free_vars(term.body) - {term.var}
    if isinstance(term, App):
        return free_vars(term.fn) | free_vars(term.arg)
    if isinstance(term, Let):
        return free_vars(term.bound) | (free_vars(term.body) - {term.var})
    raise TypeError(f"not a term: {term!r}")


def bound_vars(term: Term) -> FrozenSet[str]:
    """The set of variable names bound anywhere inside ``term``."""
    if isinstance(term, (Var, Const, EqConst)):
        return frozenset()
    if isinstance(term, Abs):
        return bound_vars(term.body) | {term.var}
    if isinstance(term, App):
        return bound_vars(term.fn) | bound_vars(term.arg)
    if isinstance(term, Let):
        return bound_vars(term.bound) | bound_vars(term.body) | {term.var}
    raise TypeError(f"not a term: {term!r}")


def all_vars(term: Term) -> FrozenSet[str]:
    """Free and bound variable names of ``term``."""
    return free_vars(term) | bound_vars(term)


def subterms(term: Term) -> Iterator[Term]:
    """Yield every subterm of ``term`` (pre-order, including ``term``)."""
    stack = [term]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, Abs):
            stack.append(node.body)
        elif isinstance(node, App):
            stack.append(node.arg)
            stack.append(node.fn)
        elif isinstance(node, Let):
            stack.append(node.body)
            stack.append(node.bound)


def term_size(term: Term) -> int:
    """Number of AST nodes in ``term``."""
    return sum(1 for _ in subterms(term))


def constants_of(term: Term) -> FrozenSet[str]:
    """Names of the atomic constants occurring in ``term``."""
    return frozenset(
        node.name for node in subterms(term) if isinstance(node, Const)
    )


def spine(term: Term) -> Tuple[Term, Tuple[Term, ...]]:
    """Decompose ``term`` into head and arguments: ``f M1 ... Ml``.

    Returns ``(f, (M1, ..., Ml))`` with ``f`` not an application.  The paper
    calls ``f`` the *function symbol governing* the ``M_i`` (Section 5.1).
    """
    args = []
    node = term
    while isinstance(node, App):
        args.append(node.arg)
        node = node.fn
    args.reverse()
    return node, tuple(args)


def binder_prefix(term: Term) -> Tuple[Tuple[str, ...], Term]:
    """Strip the maximal prefix of lambda binders: ``λx1...λxk. M``.

    Returns ``((x1, ..., xk), M)`` with ``M`` not an abstraction.
    """
    names = []
    node = term
    while isinstance(node, Abs):
        names.append(node.var)
        node = node.body
    return tuple(names), node


def map_subterms(term: Term, fn: Callable[[Term], Term]) -> Term:
    """Rebuild ``term`` with ``fn`` applied to each immediate child."""
    if isinstance(term, (Var, Const, EqConst)):
        return term
    if isinstance(term, Abs):
        return Abs(term.var, fn(term.body), term.annotation)
    if isinstance(term, App):
        return App(fn(term.fn), fn(term.arg))
    if isinstance(term, Let):
        return Let(term.var, fn(term.bound), fn(term.body))
    raise TypeError(f"not a term: {term!r}")


def expand_lets(term: Term) -> Term:
    """Replace every ``let x = M in N`` by ``N[x := M]`` (Section 5).

    This is the let-elimination step the paper performs on MLI=_i query
    terms before structural analysis: "we can eliminate all let's from Q by
    replacing every subterm of the form let x = N in M with M[x := N]".
    Note the result can be exponentially larger than the input.
    """
    from repro.lam.subst import substitute

    if isinstance(term, Let):
        bound = expand_lets(term.bound)
        body = expand_lets(term.body)
        return substitute(body, term.var, bound)
    return map_subterms(term, expand_lets)


def contains_let(term: Term) -> bool:
    """True iff ``term`` contains a ``let`` node (i.e. is strictly core-ML)."""
    return any(isinstance(node, Let) for node in subterms(term))
