"""Fresh-name supply and constant interning.

The paper works with a countably infinite set of term variables and a
countably infinite set of atomic constants ``o_1, o_2, ...``.  This module
provides:

* :class:`NameSupply` — a deterministic generator of fresh variable names
  that avoids a given set of used names.  Determinism matters: two runs over
  the same input produce literally identical terms, which keeps golden tests
  and benchmarks stable.
* :func:`constant_name` / :func:`constant_index` — the bijection between the
  paper's ``o_i`` notation and the strings this library uses for constants.

Constants are plain interned strings.  Any string is a legal constant name;
the ``o_i`` helpers exist because the paper's examples are phrased that way.
"""

from __future__ import annotations

import itertools
import re
from typing import Iterable, Iterator, Optional, Set

_CONSTANT_RE = re.compile(r"^o_?(\d+)$")


def constant_name(index: int) -> str:
    """Return the canonical name of the paper's constant ``o_index``.

    >>> constant_name(3)
    'o3'
    """
    if index < 1:
        raise ValueError(f"constant indices start at 1, got {index}")
    return f"o{index}"


def constant_index(name: str) -> Optional[int]:
    """Return ``i`` if ``name`` is the canonical constant ``o_i``, else None.

    >>> constant_index("o3")
    3
    >>> constant_index("alice") is None
    True
    """
    match = _CONSTANT_RE.match(name)
    if match is None:
        return None
    return int(match.group(1))


class NameSupply:
    """Deterministic supply of fresh variable names.

    Names are drawn from ``base0, base1, base2, ...`` (or ``base`` itself if
    unused), skipping anything in the avoid set.  The avoid set grows as
    names are handed out, so a single supply never returns the same name
    twice.
    """

    def __init__(self, avoid: Iterable[str] = ()):
        self._avoid: Set[str] = set(avoid)

    def avoid(self, names: Iterable[str]) -> None:
        """Add names to the avoid set."""
        self._avoid.update(names)

    def fresh(self, base: str = "x") -> str:
        """Return ``base`` itself if unused, else the first unused name in
        ``stem0, stem1, ...`` where ``stem`` is ``base`` without its numeric
        suffix."""
        stem = base.rstrip("0123456789") or "x"
        if base not in self._avoid:
            self._avoid.add(base)
            return base
        for i in itertools.count():
            candidate = f"{stem}{i}"
            if candidate not in self._avoid:
                self._avoid.add(candidate)
                return candidate
        raise AssertionError("unreachable")  # pragma: no cover

    def fresh_many(self, count: int, base: str = "x") -> list:
        """Return ``count`` distinct fresh names."""
        return [self.fresh(base) for _ in range(count)]

    def __contains__(self, name: str) -> bool:
        return name in self._avoid


def numbered(base: str, start: int = 0) -> Iterator[str]:
    """Infinite stream ``base0, base1, ...`` — handy for tests."""
    for i in itertools.count(start):
        yield f"{base}{i}"
