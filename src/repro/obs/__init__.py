"""Observability: metrics registry, tracing, and the reduction profiler.

One instrumentation seam through the whole stack:

* :mod:`repro.obs.metrics` — thread-safe counters/gauges/histograms with
  labels, JSON + Prometheus export, and the quantile helper the batch
  stats use;
* :mod:`repro.obs.tracing` — request-lifecycle spans (resolve → cache →
  fuel → evaluate → decode) with ring-buffer and JSONL exporters;
* :mod:`repro.obs.profiler` — beta/delta/let/quote step breakdowns from
  the engines, compared against the certifier's static cost bounds;
* :mod:`repro.obs.flight` — the flight recorder: bounded retention of
  full EXPLAIN reports (static certificate + observed execution) for
  slow, errored, bound-breaching, or explicitly-explained requests.

Metric names, span names, and logger namespaces are documented in
``docs/observability.md``.
"""

from repro.obs.flight import FlightRecorder
from repro.obs.info import build_info, runtime_info, uptime_s
from repro.obs.metrics import (
    CORE_METRIC_NAMES,
    Counter,
    Gauge,
    HTTP_LATENCY_BUCKETS_MS,
    HTTP_METRIC_NAMES,
    Histogram,
    LATENCY_BUCKETS_MS,
    MetricsRegistry,
    get_registry,
    install_core_metrics,
    install_http_metrics,
    quantile,
    set_registry,
)
from repro.obs.profiler import ProfileCollector, ReductionProfile, bound_ratio
from repro.obs.tracing import (
    JsonlExporter,
    RingBufferExporter,
    Span,
    SpanRecorder,
    Tracer,
    current_span,
    format_traceparent,
    get_tracer,
    make_trace_id,
    parse_traceparent,
    render_span_tree,
    set_tracer,
)

__all__ = [
    "CORE_METRIC_NAMES",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "HTTP_LATENCY_BUCKETS_MS",
    "HTTP_METRIC_NAMES",
    "Histogram",
    "JsonlExporter",
    "LATENCY_BUCKETS_MS",
    "MetricsRegistry",
    "ProfileCollector",
    "ReductionProfile",
    "RingBufferExporter",
    "Span",
    "SpanRecorder",
    "Tracer",
    "bound_ratio",
    "build_info",
    "current_span",
    "format_traceparent",
    "get_registry",
    "get_tracer",
    "install_core_metrics",
    "install_http_metrics",
    "make_trace_id",
    "parse_traceparent",
    "quantile",
    "render_span_tree",
    "runtime_info",
    "set_registry",
    "set_tracer",
    "uptime_s",
]
