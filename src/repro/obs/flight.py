"""The flight recorder: a bounded buffer of full EXPLAIN reports.

A :class:`FlightRecorder` retains the end-to-end evidence for the
requests worth keeping — every error, every request whose observed
steps approached or breached its static bound, the slowest N by wall
time, and anything that asked for ``explain: true`` — as structured
reports joining the *static* side (order certificate, cost polynomial
before/after abstract-interpretation tightening, read-set,
distribution class) with the *observed* side (engine, cache path,
per-shard fuel split vs. steps used, reduction profile, span
timings, bound ratio).

It doubles as a span **exporter**: finished spans are grouped by
trace id in a bounded pending map, and when the runtime records a
report for that trace the spans are attached to it.  Admission is
decided per report:

* ``explain`` — the caller asked for the report explicitly;
* ``error`` — terminal status other than ``ok``;
* ``bound_ratio`` — observed/certified steps above the threshold
  (the certifier's model is close to wrong for this plan);
* ``slow`` — among the slowest ``slowest`` requests seen so far.

Records evict LRU at ``capacity`` and are retrievable by trace id
(``GET /debug/flight?trace_id=...``, ``repro flight``).  Everything
is stdlib and thread-safe; one lock guards both maps.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Bounded retention of explain reports, keyed by trace id."""

    def __init__(
        self,
        capacity: int = 256,
        *,
        slowest: int = 32,
        bound_ratio_threshold: float = 0.9,
        pending_traces: int = 512,
    ) -> None:
        self.capacity = max(1, int(capacity))
        self.slowest = max(0, int(slowest))
        self.bound_ratio_threshold = float(bound_ratio_threshold)
        self.pending_traces = max(1, int(pending_traces))
        self._lock = threading.Lock()
        #: trace_id -> list of finished span dicts not yet claimed by a
        #: report (bounded; oldest trace dropped first).
        self._pending: "OrderedDict[str, List[dict]]" = OrderedDict()
        #: trace_id -> admitted report (bounded LRU).
        self._records: "OrderedDict[str, dict]" = OrderedDict()
        #: min-heap of (wall_ms, seq) for the current slowest-N cohort.
        self._slow_heap: List[tuple] = []
        self._seq = itertools.count()
        self._admitted = 0
        self._rejected = 0

    # -- span exporter interface --------------------------------------------

    def export(self, span) -> None:
        """Collect a finished span under its trace until the report lands."""
        data = span.as_dict()
        trace_id = data.get("trace_id")
        if not trace_id:
            return
        with self._lock:
            bucket = self._pending.get(trace_id)
            if bucket is None:
                while len(self._pending) >= self.pending_traces:
                    self._pending.popitem(last=False)
                bucket = self._pending[trace_id] = []
            bucket.append(data)

    # -- report admission ---------------------------------------------------

    def record(self, report: dict) -> bool:
        """Consider ``report`` for retention; returns True if admitted.

        Always claims (and on rejection discards) the trace's pending
        spans, so the pending map cannot leak across requests.
        """
        trace_id = report.get("trace_id")
        with self._lock:
            spans = (
                self._pending.pop(trace_id, None) if trace_id else None
            )
            reasons = self._admission_reasons(report)
            if not reasons:
                self._rejected += 1
                return False
            if spans is not None:
                report = dict(report)
                report["spans"] = spans
            report["reasons"] = reasons
            report.setdefault("recorded_unix", round(time.time(), 3))
            self._admitted += 1
            key = trace_id or f"anon-{next(self._seq)}"
            if key in self._records:
                self._records.pop(key)
            self._records[key] = report
            while len(self._records) > self.capacity:
                self._records.popitem(last=False)
            return True

    def _admission_reasons(self, report: dict) -> List[str]:
        reasons: List[str] = []
        if report.get("explain_requested"):
            reasons.append("explain")
        if report.get("status") not in (None, "ok"):
            reasons.append("error")
        observed = report.get("observed") or {}
        ratio = observed.get("bound_ratio")
        if ratio is not None and ratio > self.bound_ratio_threshold:
            reasons.append("bound_ratio")
        wall_ms = report.get("wall_ms")
        if wall_ms is not None and self.slowest > 0:
            entry = (float(wall_ms), next(self._seq))
            if len(self._slow_heap) < self.slowest:
                heapq.heappush(self._slow_heap, entry)
                reasons.append("slow")
            elif entry[0] > self._slow_heap[0][0]:
                heapq.heapreplace(self._slow_heap, entry)
                reasons.append("slow")
        return reasons

    # -- retrieval ----------------------------------------------------------

    def lookup(self, trace_id: str) -> Optional[dict]:
        with self._lock:
            return self._records.get(trace_id)

    def records(
        self, *, trace_id: Optional[str] = None, limit: Optional[int] = None
    ) -> List[dict]:
        """Retained reports, most recent first (filtered by trace id)."""
        with self._lock:
            if trace_id is not None:
                record = self._records.get(trace_id)
                return [record] if record is not None else []
            items = list(reversed(self._records.values()))
        if limit is not None:
            items = items[: max(0, int(limit))]
        return items

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "retained": len(self._records),
                "admitted_total": self._admitted,
                "rejected_total": self._rejected,
                "pending_traces": len(self._pending),
                "slowest": self.slowest,
                "bound_ratio_threshold": self.bound_ratio_threshold,
            }

    def clear(self) -> None:
        with self._lock:
            self._pending.clear()
            self._records.clear()
            self._slow_heap.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
