"""Process runtime info: build/version identity and monotonic uptime.

Serving infrastructure needs two distinct questions answered cheaply:

* **liveness** — "is the process up?" — which only needs a truthful
  uptime, so the clock must be the *monotonic* one (wall clocks jump
  under NTP corrections and make liveness windows lie);
* **identity** — "which build is this?" — version, Python, platform and
  pid, so a fleet's ``/health`` responses and metric snapshots can be
  correlated with what was actually deployed.

The module records its import time (process start, for all practical
purposes: :mod:`repro` imports are the first thing any entry point does)
on both clocks and exposes one JSON-ready block via :func:`runtime_info`.
The HTTP edge serves it at ``GET /health``; ``repro stats --json``
attaches it to the registry snapshot.
"""

from __future__ import annotations

import os
import platform
import sys
import time

__all__ = ["build_info", "runtime_info", "uptime_s"]

#: Monotonic and wall-clock timestamps taken at first import.  The
#: monotonic one is authoritative for uptime; the wall one is
#: informational (start time as an epoch second).
_START_MONOTONIC = time.monotonic()
_START_WALL = time.time()


def uptime_s() -> float:
    """Seconds since process start on the monotonic clock (never
    negative, immune to wall-clock steps)."""
    return time.monotonic() - _START_MONOTONIC


def build_info() -> dict:
    """The static identity block: package version and interpreter/platform
    coordinates."""
    from repro import __version__

    return {
        "version": __version__,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "pid": os.getpid(),
    }


def runtime_info() -> dict:
    """The full runtime block: build identity plus uptime.

    ``uptime_s`` is monotonic-clock truth; ``started_unix`` is the wall
    clock at import, rounded to milliseconds, for log correlation only.
    """
    return {
        "build": build_info(),
        "uptime_s": round(uptime_s(), 3),
        "started_unix": round(_START_WALL, 3),
    }
