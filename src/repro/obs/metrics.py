"""The metrics registry: counters, gauges, and fixed-bucket histograms.

The service runtime's observable claims are quantitative (step envelopes,
cache hit rates, latency percentiles), so its stats surface is a proper
metrics registry rather than ad-hoc dict counters:

* :class:`Counter` — monotone, labelled (e.g. requests by status);
* :class:`Gauge` — last-write-wins value (e.g. observed/bound step ratio);
* :class:`Histogram` — fixed cumulative buckets plus sum/count (latencies).

All metric types are thread-safe (one lock per registry; the hot path is a
dict update) and exportable two ways: :meth:`MetricsRegistry.as_dict` for
JSON (``repro stats --json``, the ``BENCH_*.json`` snapshots) and
:meth:`MetricsRegistry.render_prometheus` for the Prometheus text
exposition format.

Metric *names* are stable API — they are documented in
``docs/observability.md`` and asserted by CI — so changes there are
breaking.  :func:`install_core_metrics` pre-registers the core family so
every export contains the full set even before traffic arrives.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "COMPILE_METRIC_NAMES",
    "CORE_METRIC_NAMES",
    "Counter",
    "Gauge",
    "HTTP_LATENCY_BUCKETS_MS",
    "HTTP_METRIC_NAMES",
    "Histogram",
    "LATENCY_BUCKETS_MS",
    "MetricsRegistry",
    "SHARD_METRIC_NAMES",
    "get_registry",
    "install_compile_metrics",
    "install_core_metrics",
    "install_http_metrics",
    "install_shard_metrics",
    "quantile",
    "set_registry",
]

#: Default latency buckets (milliseconds): wide enough for both the NBE
#: fast path and multi-second fixpoint cranks.
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)

#: Edge-appropriate latency buckets: the core ladder plus sub-millisecond
#: resolution, because warm-cache HTTP traffic lands almost entirely under
#: 10ms and the core ladder cannot distinguish a 0.3ms hit from a 9ms one.
HTTP_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000,
    10000,
)


def quantile(sorted_values: Sequence[float], q: float) -> float:
    """The ``q``-quantile of ``sorted_values`` by linear interpolation.

    This is the "linear" method (R-7, numpy's default): the quantile sits
    at fractional rank ``h = q * (n - 1)`` and interpolates linearly
    between the two order statistics bracketing ``h``.  Unlike a
    nearest-rank rule it is exact at the endpoints (``q=0`` is the min,
    ``q=1`` the max), continuous in ``q``, and well defined for every list
    length: an empty list yields ``0.0`` and a singleton yields its only
    element (for any ``q``).

    ``sorted_values`` must already be sorted ascending; ``q`` is clamped
    into ``[0, 1]``.
    """
    n = len(sorted_values)
    if n == 0:
        return 0.0
    if n == 1:
        return float(sorted_values[0])
    q = min(1.0, max(0.0, q))
    h = q * (n - 1)
    low = math.floor(h)
    high = min(low + 1, n - 1)
    frac = h - low
    return float(
        sorted_values[low] + (sorted_values[high] - sorted_values[low]) * frac
    )


def _label_key(
    metric_name: str, labelnames: Tuple[str, ...], labels: Dict[str, str]
) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"metric {metric_name!r} takes labels {labelnames}, "
            f"got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Metric:
    """Shared plumbing: a name, help text, label schema, and a lock."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Tuple[str, ...],
        lock: threading.Lock,
    ) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = labelnames
        self._lock = lock

    def _key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        return _label_key(self.name, self.labelnames, labels)

    def _label_dict(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.labelnames, key))


class Counter(_Metric):
    """A monotone counter, optionally labelled."""

    kind = "counter"

    def __init__(self, name, help_text, labelnames, lock):
        super().__init__(name, help_text, labelnames, lock)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0)

    def items(self) -> List[Tuple[Dict[str, str], float]]:
        with self._lock:
            return [
                (self._label_dict(key), value)
                for key, value in sorted(self._values.items())
            ]

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())


class Gauge(_Metric):
    """A point-in-time value, optionally labelled."""

    kind = "gauge"

    def __init__(self, name, help_text, labelnames, lock):
        super().__init__(name, help_text, labelnames, lock)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> Optional[float]:
        with self._lock:
            return self._values.get(self._key(labels))

    def items(self) -> List[Tuple[Dict[str, str], float]]:
        with self._lock:
            return [
                (self._label_dict(key), value)
                for key, value in sorted(self._values.items())
            ]


class Histogram(_Metric):
    """A fixed-bucket cumulative histogram with sum and count.

    Buckets are upper bounds (ascending); a terminal ``+Inf`` bucket is
    implicit.  Quantiles are *estimates* reconstructed from the bucket
    counts by linear interpolation inside the bracketing bucket (the same
    method Prometheus' ``histogram_quantile`` uses); exact quantiles over
    raw samples are :func:`quantile`'s job.
    """

    kind = "histogram"

    def __init__(self, name, help_text, labelnames, lock, buckets):
        super().__init__(name, help_text, labelnames, lock)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {self.name!r} needs >= 1 bucket")
        self.bounds = bounds
        # Per label-key: [bucket counts..., +Inf count], total sum, count.
        self._data: Dict[Tuple[str, ...], List] = {}
        # Per label-key: bucket index -> last exemplar dict.  Exemplars
        # link a bucket to a retained flight record (by trace id); they
        # appear in the JSON snapshots only — the Prometheus text
        # rendering stays byte-identical with or without them.
        self._exemplars: Dict[Tuple[str, ...], Dict[int, dict]] = {}

    def _cell(self, key: Tuple[str, ...]) -> List:
        cell = self._data.get(key)
        if cell is None:
            cell = [[0] * (len(self.bounds) + 1), 0.0, 0]
            self._data[key] = cell
        return cell

    def observe(
        self, value: float, *, exemplar: Optional[str] = None,
        **labels: str,
    ) -> None:
        key = self._key(labels)
        with self._lock:
            counts, total, count = self._cell(key)
            index = len(self.bounds)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    index = i
                    break
            counts[index] += 1
            cell = self._data[key]
            cell[1] = total + value
            cell[2] = count + 1
            if exemplar is not None:
                self._exemplars.setdefault(key, {})[index] = {
                    "trace_id": exemplar,
                    "value": round(float(value), 3),
                    "unix": round(time.time(), 3),
                }

    def snapshot(self, **labels: str) -> dict:
        """Cumulative bucket counts plus sum/count for one label set.

        When any bucket carries an exemplar the snapshot also maps the
        bucket bound to its latest ``{trace_id, value, unix}`` under
        ``"exemplars"``.
        """
        key = self._key(labels)
        with self._lock:
            counts, total, count = self._cell(key)
            counts = list(counts)
            exemplars = {
                index: dict(data)
                for index, data in self._exemplars.get(key, {}).items()
            }
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(
            self.bounds + (math.inf,), counts
        ):
            running += bucket_count
            cumulative.append((bound, running))
        snap = {"buckets": cumulative, "sum": total, "count": count}
        if exemplars:
            all_bounds = self.bounds + (math.inf,)
            snap["exemplars"] = {
                ("+Inf" if math.isinf(all_bounds[index]) else all_bounds[index]): data
                for index, data in sorted(exemplars.items())
            }
        return snap

    def quantile(self, q: float, **labels: str) -> float:
        """Estimate the ``q``-quantile from the cumulative buckets."""
        snap = self.snapshot(**labels)
        count = snap["count"]
        if count == 0:
            return 0.0
        q = min(1.0, max(0.0, q))
        rank = q * count
        previous_bound = 0.0
        previous_cum = 0
        for bound, cum in snap["buckets"]:
            if cum >= rank:
                if math.isinf(bound):
                    return previous_bound
                in_bucket = cum - previous_cum
                if in_bucket == 0:
                    return bound
                frac = (rank - previous_cum) / in_bucket
                return previous_bound + (bound - previous_bound) * frac
            previous_bound, previous_cum = bound, cum
        return previous_bound

    def items(self) -> List[Tuple[Dict[str, str], dict]]:
        with self._lock:
            keys = sorted(self._data)
        return [(self._label_dict(key), self.snapshot(**self._label_dict(key)))
                for key in keys]


class MetricsRegistry:
    """A named collection of metrics with idempotent registration.

    Re-requesting a metric by name returns the existing instance (the
    type and label schema must match), so independent components can share
    one registry without coordinating creation order.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "Dict[str, _Metric]" = {}

    def _register(self, cls, name, help_text, labelnames, **extra):
        labelnames = tuple(labelnames or ())
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or (
                    existing.labelnames != labelnames
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            metric = cls(name, help_text, labelnames, self._lock, **extra)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help_text: str = "",
        labels: Iterable[str] = (),
    ) -> Counter:
        return self._register(Counter, name, help_text, labels)

    def gauge(
        self, name: str, help_text: str = "",
        labels: Iterable[str] = (),
    ) -> Gauge:
        return self._register(Gauge, name, help_text, labels)

    def histogram(
        self, name: str, help_text: str = "",
        labels: Iterable[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS_MS,
    ) -> Histogram:
        return self._register(
            Histogram, name, help_text, labels, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> List[_Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    # -- export --------------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-ready snapshot of every metric."""
        out = []
        for metric in self.metrics():
            entry = {
                "name": metric.name,
                "type": metric.kind,
                "help": metric.help,
                "labels": list(metric.labelnames),
            }
            if isinstance(metric, Histogram):
                entry["values"] = [
                    {
                        "labels": labels,
                        "count": snap["count"],
                        "sum": round(snap["sum"], 6),
                        "buckets": [
                            ["+Inf" if math.isinf(b) else b, c]
                            for b, c in snap["buckets"]
                        ],
                        **(
                            {"exemplars": snap["exemplars"]}
                            if "exemplars" in snap
                            else {}
                        ),
                    }
                    for labels, snap in metric.items()
                ]
            else:
                entry["values"] = [
                    {"labels": labels, "value": value}
                    for labels, value in metric.items()
                ]
            out.append(entry)
        return {"metrics": out}

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for metric in self.metrics():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                for labels, snap in metric.items():
                    for bound, cum in snap["buckets"]:
                        le = "+Inf" if math.isinf(bound) else _num(bound)
                        lines.append(
                            f"{metric.name}_bucket"
                            f"{_labels({**labels, 'le': le})} {cum}"
                        )
                    lines.append(
                        f"{metric.name}_sum{_labels(labels)} "
                        f"{_num(snap['sum'])}"
                    )
                    lines.append(
                        f"{metric.name}_count{_labels(labels)} "
                        f"{snap['count']}"
                    )
            else:
                items = metric.items() or [({}, 0) if not metric.labelnames
                                           else None]
                for item in items:
                    if item is None:
                        continue
                    labels, value = item
                    lines.append(
                        f"{metric.name}{_labels(labels)} {_num(value)}"
                    )
        return "\n".join(lines) + "\n"


def _num(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    quoted = ",".join(
        f'{name}="{_escape(value)}"' for name, value in sorted(labels.items())
    )
    return "{" + quoted + "}"


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


# -- the core metric family --------------------------------------------------

#: Names every ``repro stats`` export must contain (CI asserts this set).
CORE_METRIC_NAMES = (
    "repro_requests_total",
    "repro_request_latency_ms",
    "repro_cache_hits_total",
    "repro_cache_misses_total",
    "repro_cache_inflight_waits_total",
    "repro_cache_provenance_saves_total",
    "repro_engine_steps_total",
    "repro_steps_bound_ratio",
    "repro_cost_tightening_ratio",
    "repro_slow_queries_total",
)


def install_core_metrics(registry: MetricsRegistry) -> Dict[str, _Metric]:
    """Pre-register the query-lifecycle metric family on ``registry``.

    Idempotent; returns the handles keyed by short name so the runtime can
    update them without registry lookups on the hot path.
    """
    return {
        "requests": registry.counter(
            "repro_requests_total",
            "Requests served, by terminal status",
            labels=("status",),
        ),
        "latency": registry.histogram(
            "repro_request_latency_ms",
            "End-to-end request wall time (milliseconds)",
            buckets=LATENCY_BUCKETS_MS,
        ),
        "cache_hits": registry.counter(
            "repro_cache_hits_total",
            "Result-cache lookups that hit",
        ),
        "cache_misses": registry.counter(
            "repro_cache_misses_total",
            "Result-cache lookups that missed",
        ),
        "inflight_waits": registry.counter(
            "repro_cache_inflight_waits_total",
            "Requests that waited behind an identical in-flight evaluation",
        ),
        "provenance_saves": registry.counter(
            "repro_cache_provenance_saves_total",
            "Cache hits served across a database version bump because the "
            "read-set's version sub-vector survived (TLI023 keying)",
        ),
        "engine_steps": registry.counter(
            "repro_engine_steps_total",
            "Reduction steps spent in the engines, by engine",
            labels=("engine",),
        ),
        "bound_ratio": registry.gauge(
            "repro_steps_bound_ratio",
            "Observed steps / static cost bound, last evaluation per query "
            "(Theorem 5.1 says honest plans stay <= 1)",
            labels=("query",),
        ),
        "tightening": registry.gauge(
            "repro_cost_tightening_ratio",
            "Absint-tightened bound / syntactic bound, last evaluation "
            "per query (in (0, 1]; absent when no tightening applied)",
            labels=("query",),
        ),
        "slow_queries": registry.counter(
            "repro_slow_queries_total",
            "Requests over the configured --slow-query-ms threshold",
        ),
    }


#: Names the sharded execution engine exports (``repro shard`` / service
#: requests with a :class:`~repro.shard.policy.ShardPolicy`).
SHARD_METRIC_NAMES = (
    "repro_shard_requests_total",
    "repro_shard_tasks_total",
    "repro_shard_retries_total",
    "repro_shard_worker_crashes_total",
    "repro_shard_degraded_total",
    "repro_shard_workers",
)


def install_shard_metrics(registry: MetricsRegistry) -> Dict[str, _Metric]:
    """Pre-register the sharded-execution metric family on ``registry``.

    Idempotent (same contract as :func:`install_core_metrics`); the pool's
    observer hook and the runtime's sharded path both write through these
    handles.
    """
    return {
        "shard_requests": registry.counter(
            "repro_shard_requests_total",
            "Sharded requests, by distribution mode "
            "(partitionable / broadcast / local-only)",
            labels=("mode",),
        ),
        "shard_tasks": registry.counter(
            "repro_shard_tasks_total",
            "Per-shard tasks dispatched to the worker pool",
        ),
        "shard_retries": registry.counter(
            "repro_shard_retries_total",
            "Shard tasks retried after a worker crash or timeout",
        ),
        "shard_crashes": registry.counter(
            "repro_shard_worker_crashes_total",
            "Worker processes observed dead (crash or timeout kill)",
        ),
        "shard_degraded": registry.counter(
            "repro_shard_degraded_total",
            "Shard tasks that exhausted retries and degraded to "
            "in-process evaluation",
        ),
        "shard_workers": registry.gauge(
            "repro_shard_workers",
            "Live worker processes in the shard pool",
        ),
    }


#: Names the plan compiler exports (the ``"ra"`` engine of
#: :mod:`repro.compile`).
COMPILE_METRIC_NAMES = (
    "repro_compile_plans_total",
    "repro_compile_requests_total",
    "repro_compile_runtime_fallbacks_total",
)


def install_compile_metrics(registry: MetricsRegistry) -> Dict[str, _Metric]:
    """Pre-register the plan-compiler metric family on ``registry``.

    Idempotent (same contract as :func:`install_core_metrics`); the
    catalog's compile-at-registration pass and the runtime's ``"ra"``
    dispatch both write through these handles.
    """
    return {
        "compile_plans": registry.counter(
            "repro_compile_plans_total",
            "Compile decisions at plan registration, by outcome "
            "(compiled / fallback) and plan kind (term / fixpoint)",
            labels=("status", "kind"),
        ),
        "compile_requests": registry.counter(
            "repro_compile_requests_total",
            "Requests served by evaluation path "
            "(compiled = the set-backed \"ra\" engine, "
            "fallback = a reduction engine)",
            labels=("path",),
        ),
        "compile_runtime_fallbacks": registry.counter(
            "repro_compile_runtime_fallbacks_total",
            "\"ra\" executions that degraded to NBE at run time "
            "(defensive fallback; correctness-neutral)",
        ),
    }


#: Names the HTTP edge exports (``repro serve`` /
#: :class:`repro.http.server.QueryEdge`).
HTTP_METRIC_NAMES = (
    "repro_http_connections_total",
    "repro_http_connections_active",
    "repro_http_requests_total",
    "repro_http_request_latency_ms",
    "repro_http_inflight_fuel",
    "repro_http_queue_fuel",
    "repro_http_admitted_fuel_total",
    "repro_http_rejected_fuel_total",
    "repro_http_rate_limited_total",
    "repro_http_draining",
)


def install_http_metrics(
    registry: MetricsRegistry,
    *,
    latency_buckets: Sequence[float] = HTTP_LATENCY_BUCKETS_MS,
) -> Dict[str, _Metric]:
    """Pre-register the HTTP-edge metric family on ``registry``.

    Idempotent (same contract as :func:`install_core_metrics`).  Fuel
    gauges/counters are denominated in *certified fuel units* — the
    admission controller accounts capacity in the Theorem 5.1 cost
    certificates of the admitted plans, not in request counts.

    The edge latency histogram defaults to the finer
    :data:`HTTP_LATENCY_BUCKETS_MS` ladder (sub-millisecond buckets for
    cache-hit traffic); metric names and label schemas are unchanged, so
    ``/metrics`` stays backward compatible.
    """
    return {
        "connections": registry.counter(
            "repro_http_connections_total",
            "TCP connections accepted by the HTTP edge",
        ),
        "connections_active": registry.gauge(
            "repro_http_connections_active",
            "Currently open HTTP connections",
        ),
        "http_requests": registry.counter(
            "repro_http_requests_total",
            "HTTP requests served, by route and status code",
            labels=("route", "code"),
        ),
        "http_latency": registry.histogram(
            "repro_http_request_latency_ms",
            "HTTP request wall time (milliseconds), by route",
            labels=("route",),
            buckets=latency_buckets,
        ),
        "inflight_fuel": registry.gauge(
            "repro_http_inflight_fuel",
            "Certified fuel units currently admitted and executing",
        ),
        "queue_fuel": registry.gauge(
            "repro_http_queue_fuel",
            "Certified fuel units waiting in the admission queue",
        ),
        "admitted_fuel": registry.counter(
            "repro_http_admitted_fuel_total",
            "Certified fuel units admitted past admission control",
        ),
        "rejected_fuel": registry.counter(
            "repro_http_rejected_fuel_total",
            "Certified fuel units rejected by admission control, by reason",
            labels=("reason",),
        ),
        "rate_limited": registry.counter(
            "repro_http_rate_limited_total",
            "Requests rejected by the per-client token bucket",
        ),
        "draining": registry.gauge(
            "repro_http_draining",
            "1 while the edge is draining (SIGTERM received), else 0",
        ),
    }


_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (shared by components that are
    not handed an explicit one)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide default registry; returns the previous."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous
