"""The reduction profiler: per-evaluation step breakdowns vs. static bounds.

The engines already *count* steps (that is what the Theorem 5.1/5.2 cost
certificates bound); this module gives the count structure.  Engines
accept an ``observer`` callable — see
:func:`repro.lam.nbe.nbe_normalize_counted`,
:func:`repro.lam.reduce.normalize`, and
:func:`repro.eval.ptime.run_fixpoint_query` — which they invoke with a
plain dict breakdown (``steps``/``beta``/``delta``/``let``/``quote``/
``max_depth``) when the evaluation finishes *or* exhausts its fuel.  The
engines stay dependency-free: they emit dicts, and this module provides
the typed accumulator (:class:`ProfileCollector`) that merges the
per-stage dicts of a fixpoint run into one :class:`ReductionProfile`.

``quote`` counts the steps spent in NBE readback (a subset of ``beta`` +
``delta``: readback re-enters application to go under binders);
``max_depth`` is the readback binder-depth watermark.  The profile
surfaces on :class:`~repro.service.runtime.QueryResponse` as ``profile``,
with the observed/static-bound ratio mirrored to the
``repro_steps_bound_ratio`` gauge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

__all__ = ["ProfileCollector", "ReductionProfile", "bound_ratio"]


@dataclass
class ReductionProfile:
    """Accumulated step breakdown of one (possibly multi-stage) evaluation.

    ``steps`` is the engine's authoritative total (the quantity fuel
    budgets and cost certificates are measured in); the per-kind fields
    partition it for engines that discriminate (NBE and the small-step
    engines both do).  ``events`` counts how many engine invocations were
    merged in — 1 for a plain term plan, one per stage normalization for a
    fixpoint run.
    """

    steps: int = 0
    beta: int = 0
    delta: int = 0
    let: int = 0
    quote: int = 0
    max_depth: int = 0
    events: int = 0

    def merge(self, breakdown: Mapping[str, int]) -> None:
        """Fold one engine-emitted breakdown dict into the totals."""
        self.steps += int(breakdown.get("steps", 0))
        self.beta += int(breakdown.get("beta", 0))
        self.delta += int(breakdown.get("delta", 0))
        self.let += int(breakdown.get("let", 0))
        self.quote += int(breakdown.get("quote", 0))
        self.max_depth = max(
            self.max_depth, int(breakdown.get("max_depth", 0))
        )
        self.events += 1

    def as_dict(self) -> dict:
        return {
            "steps": self.steps,
            "beta": self.beta,
            "delta": self.delta,
            "let": self.let,
            "quote": self.quote,
            "max_depth": self.max_depth,
            "events": self.events,
        }


@dataclass
class ProfileCollector:
    """The observer hook handed to the engines: collect every breakdown
    they emit into one profile.  Instances are callables, so they plug
    directly into the ``observer=`` parameters."""

    profile: ReductionProfile = field(default_factory=ReductionProfile)

    def __call__(self, breakdown: Mapping[str, int]) -> None:
        self.profile.merge(breakdown)


def bound_ratio(
    observed_steps: Optional[int], static_bound: Optional[int]
) -> Optional[float]:
    """Observed steps as a fraction of the static cost bound.

    ``None`` when either side is unavailable (no certificate, or an engine
    that did not report steps).  Theorem 5.1-honest plans satisfy
    ``ratio <= 1``; a ratio above 1 means the static envelope was violated
    and the certifier's model is wrong for this plan — worth alerting on.
    """
    if observed_steps is None or not static_bound:
        return None
    return observed_steps / static_bound
