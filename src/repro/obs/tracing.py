"""Lightweight query-lifecycle tracing: spans, exporters, tree rendering.

A :class:`Span` is one timed segment of a request (catalog resolve, cache
lookup, single-flight wait, fuel derivation, engine evaluation, decode);
spans nest via a context variable, so the runtime never threads parent
handles explicitly.  A :class:`Tracer` hands out spans as context
managers — the ``finally`` in ``__exit__`` guarantees that *every* span
closes, including on :class:`~repro.errors.FuelExhausted` and timeouts —
and forwards finished spans to its exporters:

* :class:`RingBufferExporter` — a bounded in-memory buffer, the source for
  ``repro trace``'s span tree;
* :class:`JsonlExporter` — one JSON object per line, append-only, for
  offline analysis.

Tracing is **off by default**: the module-level default tracer is disabled
and a disabled tracer's :meth:`Tracer.span` returns a shared no-op span
without allocating anything, so the instrumented hot path costs one
attribute check per span site.

**Cross-process propagation.**  A trace crosses process boundaries as
plain data: the coordinator ships ``{"trace_id", "parent_id"}`` with a
shard task, the worker records its own spans with a
:class:`SpanRecorder` (no tracer, no contextvars — just nested dicts
in :meth:`Span.as_dict` shape), and the reply carries them back over
the pipe where :meth:`Tracer.ingest` grafts them into the
coordinator's exporters.  At the HTTP edge the same ``trace_id``
travels in a W3C ``traceparent``-style header
(``00-<trace_id>-<parent_id>-01``; see :func:`parse_traceparent` /
:func:`format_traceparent`), so one tree spans edge → service →
workers.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
import uuid
from collections import deque
from contextvars import ContextVar
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "JsonlExporter",
    "RingBufferExporter",
    "Span",
    "SpanRecorder",
    "Tracer",
    "current_span",
    "format_traceparent",
    "get_tracer",
    "make_trace_id",
    "parse_traceparent",
    "render_span_tree",
    "set_tracer",
]

#: The innermost open span of the current thread/context (spans started in
#: other threads do not inherit it: worker threads trace their own roots).
_CURRENT_SPAN: ContextVar[Optional["Span"]] = ContextVar(
    "repro_obs_current_span", default=None
)


def current_span() -> Optional["Span"]:
    """The innermost open span in this context, if any."""
    span = _CURRENT_SPAN.get()
    return span if isinstance(span, Span) else None


class _NoopSpan:
    """The shared do-nothing span a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attr(self, name: str, value) -> None:
        pass

    def set_status(self, status: str) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Span:
    """One timed, attributed segment of work.

    ``start_unix`` is epoch wall time (for logs and JSONL correlation);
    durations come from the monotonic clock.  ``status`` is ``"ok"``
    unless :meth:`set_status` was called or the body raised.
    """

    __slots__ = (
        "name", "span_id", "parent_id", "trace_id", "attrs", "status",
        "start_unix", "_start_perf", "duration_ms", "_tracer", "_token",
    )

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: Optional[str],
        trace_id: str,
        attrs: Dict[str, object],
        tracer: "Tracer",
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.attrs = attrs
        self.status = "ok"
        self.start_unix: float = 0.0
        self._start_perf: float = 0.0
        self.duration_ms: Optional[float] = None
        self._tracer = tracer
        self._token = None

    def set_attr(self, name: str, value) -> None:
        self.attrs[name] = value

    def set_status(self, status: str) -> None:
        self.status = status

    def __enter__(self) -> "Span":
        self.start_unix = time.time()
        self._start_perf = time.perf_counter()
        self._token = _CURRENT_SPAN.set(self)
        self._tracer._opened(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        try:
            self.duration_ms = (
                time.perf_counter() - self._start_perf
            ) * 1000.0
            if exc_type is not None and self.status == "ok":
                self.status = "error"
                self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        finally:
            if self._token is not None:
                _CURRENT_SPAN.reset(self._token)
                self._token = None
            self._tracer._closed(self)
        return False

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "status": self.status,
            "start_unix": round(self.start_unix, 6),
            "duration_ms": (
                round(self.duration_ms, 3)
                if self.duration_ms is not None
                else None
            ),
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Hands out spans and fans finished spans out to exporters.

    ``enabled=False`` (the default tracer's state) short-circuits
    :meth:`span` to a shared no-op object.  :meth:`open_spans` reports
    spans that were entered but not yet exited — after any request
    completes (ok, fuel-exhausted, errored, or abandoned by a timeout
    *and* finished in the background) it must drain back to zero.
    """

    def __init__(self, exporters: Sequence = (), *, enabled: bool = True):
        self.exporters = list(exporters)
        self.enabled = enabled
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._open: Dict[str, Span] = {}

    def span(self, name: str, *, trace_id: Optional[str] = None, **attrs):
        """A context manager for one span; nests under the context's
        current open span.

        ``trace_id`` seeds the trace for a *root* span (e.g. the id a
        ``traceparent`` header carried in); when there is an open parent
        span in this context the parent's trace wins.
        """
        if not self.enabled:
            return NOOP_SPAN
        parent = _CURRENT_SPAN.get()
        span_id = f"{next(self._ids):012x}"
        if parent is not None:
            parent_id: Optional[str] = parent.span_id
            trace = parent.trace_id
        else:
            parent_id = None
            trace = trace_id or span_id
        return Span(name, span_id, parent_id, trace, dict(attrs), self)

    def new_span_id(self) -> str:
        """A fresh span id (for synthesizing spans outside :meth:`span`,
        e.g. the coordinator-side ``shard.respawn`` marker)."""
        return f"{next(self._ids):012x}"

    def ingest(self, span_dicts: Iterable[dict]) -> List[Span]:
        """Graft already-finished spans (``Span.as_dict`` shape, e.g.
        recorded in a shard worker and shipped back over the pipe) into
        this tracer's exporters.

        The spans keep their own ids/parents/trace, so a worker subtree
        whose root points at a coordinator span id renders inside the
        coordinator's tree.  No-op when disabled.
        """
        if not self.enabled:
            return []
        grafted: List[Span] = []
        for data in span_dicts:
            span = Span(
                str(data.get("name", "span")),
                str(data.get("span_id", "")),
                data.get("parent_id"),
                str(data.get("trace_id", "")),
                dict(data.get("attrs") or {}),
                self,
            )
            span.status = str(data.get("status", "ok"))
            span.start_unix = float(data.get("start_unix") or 0.0)
            duration = data.get("duration_ms")
            span.duration_ms = float(duration) if duration is not None else None
            for exporter in self.exporters:
                exporter.export(span)
            grafted.append(span)
        return grafted

    def add_exporter(self, exporter) -> None:
        self.exporters.append(exporter)

    def open_spans(self) -> List[Span]:
        with self._lock:
            return list(self._open.values())

    # -- span lifecycle callbacks -------------------------------------------

    def _opened(self, span: Span) -> None:
        with self._lock:
            self._open[span.span_id] = span

    def _closed(self, span: Span) -> None:
        with self._lock:
            self._open.pop(span.span_id, None)
        for exporter in self.exporters:
            exporter.export(span)


class RingBufferExporter:
    """Keeps the last ``capacity`` finished spans in memory."""

    def __init__(self, capacity: int = 2048):
        self._spans: "deque[Span]" = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def export(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class JsonlExporter:
    """Appends each finished span as one JSON line to ``path``."""

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._handle = None

    def export(self, span: Span) -> None:
        line = json.dumps(span.as_dict(), sort_keys=True)
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class RecordedSpan:
    """One span captured by a :class:`SpanRecorder` (worker side).

    A plain context manager mirroring :class:`Span`'s surface
    (``set_attr``/``set_status``) without a tracer, contextvars, or
    locks — shard workers are single-threaded per task.
    """

    __slots__ = (
        "name", "span_id", "parent_id", "trace_id", "attrs", "status",
        "start_unix", "_start_perf", "duration_ms", "_recorder",
    )

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: Optional[str],
        trace_id: str,
        attrs: Dict[str, object],
        recorder: "SpanRecorder",
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.attrs = attrs
        self.status = "ok"
        self.start_unix = 0.0
        self._start_perf = 0.0
        self.duration_ms: Optional[float] = None
        self._recorder = recorder

    def set_attr(self, name: str, value) -> None:
        self.attrs[name] = value

    def set_status(self, status: str) -> None:
        self.status = status

    def __enter__(self) -> "RecordedSpan":
        self.start_unix = time.time()
        self._start_perf = time.perf_counter()
        self._recorder._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_ms = (time.perf_counter() - self._start_perf) * 1000.0
        if exc_type is not None and self.status == "ok":
            self.status = "error"
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        stack = self._recorder._stack
        if stack and stack[-1] is self:
            stack.pop()
        self._recorder._finished.append(self.as_dict())
        return False

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "status": self.status,
            "start_unix": round(self.start_unix, 6),
            "duration_ms": (
                round(self.duration_ms, 3)
                if self.duration_ms is not None
                else None
            ),
            "attrs": dict(self.attrs),
        }


class SpanRecorder:
    """Records spans in a process with no tracer, for shipping back.

    A shard worker builds one per task from the coordinator's trace
    context (``trace_id`` + the coordinator span to parent under),
    nests spans on a plain stack, and serializes the finished list —
    :meth:`Span.as_dict`-shaped dicts — into the reply, where
    :meth:`Tracer.ingest` grafts them into the coordinator's tree.
    ``prefix`` keeps worker span ids (e.g. ``w1234-1``) from colliding
    with the coordinator's counter-based ids across processes.
    """

    def __init__(
        self,
        trace_id: str,
        parent_id: Optional[str] = None,
        *,
        prefix: str = "w",
    ) -> None:
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.prefix = prefix
        self._count = 0
        self._stack: List[RecordedSpan] = []
        self._finished: List[dict] = []

    def span(self, name: str, **attrs) -> RecordedSpan:
        self._count += 1
        span_id = f"{self.prefix}-{self._count}"
        parent = self._stack[-1].span_id if self._stack else self.parent_id
        return RecordedSpan(
            name, span_id, parent, self.trace_id, dict(attrs), self
        )

    def spans(self) -> List[dict]:
        """The finished spans, in completion order."""
        return list(self._finished)


def make_trace_id() -> str:
    """A fresh 32-hex-char trace id (uuid4)."""
    return uuid.uuid4().hex


def parse_traceparent(value: Optional[str]) -> Optional[str]:
    """The trace id from a W3C ``traceparent``-style header, if usable.

    Lenient: accepts ``00-<trace>-<span>-<flags>`` and returns the
    trace field when it is non-zero hex; anything malformed yields
    ``None`` (the caller mints a fresh id).
    """
    if not value:
        return None
    parts = value.strip().split("-")
    if len(parts) < 2:
        return None
    trace = parts[1].lower()
    if not trace or any(ch not in "0123456789abcdef" for ch in trace):
        return None
    if set(trace) == {"0"}:
        return None
    return trace


def format_traceparent(trace_id: str, span_id: str = "") -> str:
    """Render a W3C-shaped ``traceparent`` value for response headers."""
    trace = (trace_id or make_trace_id()).ljust(32, "0")[:32]
    span = (span_id or "0").ljust(16, "0")[:16]
    return f"00-{trace}-{span}-01"


def render_span_tree(spans: Sequence[Span], *, attrs: bool = True) -> str:
    """Render finished spans as an indented tree (roots in start order).

    Orphans (parent not in the list, e.g. evicted from the ring buffer)
    are promoted to roots rather than dropped.
    """
    by_id = {span.span_id: span for span in spans}
    children: Dict[Optional[str], List[Span]] = {}
    roots: List[Span] = []
    for span in spans:
        if span.parent_id is not None and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: s.start_unix)
    roots.sort(key=lambda s: s.start_unix)

    lines: List[str] = []

    def describe(span: Span) -> str:
        duration = (
            f"{span.duration_ms:.2f}ms"
            if span.duration_ms is not None
            else "?ms"
        )
        parts = [span.name, duration]
        if span.status != "ok":
            parts.append(f"status={span.status}")
        if attrs:
            parts.extend(
                f"{key}={value}"
                for key, value in sorted(span.attrs.items())
                if value is not None
                and not (key == "status" and value == span.status)
            )
        return " ".join(parts)

    def walk(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(describe(span))
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            lines.append(prefix + connector + describe(span))
            child_prefix = prefix + ("   " if is_last else "│  ")
        kids = children.get(span.span_id, [])
        for index, child in enumerate(kids):
            walk(child, child_prefix, index == len(kids) - 1, False)

    for root in roots:
        walk(root, "", True, True)
    return "\n".join(lines)


_default_tracer = Tracer(enabled=False)
_default_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide default tracer (disabled until configured)."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the process-wide default tracer; returns the previous."""
    global _default_tracer
    with _default_lock:
        previous = _default_tracer
        _default_tracer = tracer
    return previous
