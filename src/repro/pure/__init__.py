"""The pure-TLC track: query languages *without* the equality constant.

Section 1 of the paper summarizes the [25] results for pure TLC alongside
TLC=: "(c) PTIME-embeddings exist for every FO-query using terms of order
at most 3 in TLC= or order at most 4 in TLC".  The extra order comes from
the input conventions: without the delta rule, the encodings themselves
must make constants *comparable by application*.

This package implements that convention:

* constants become **domain-position selectors** ``λz1 ... zd. zi`` —
  order-1 terms over the active domain ``D = (d1 < ... < dd)``;
* each relation is the usual list iterator, but over selector components,
  so its type is ``(sel -> ... -> sel -> t -> t) -> t -> t`` with
  ``order(sel) = 1`` — order 3 instead of 2;
* the input tuple is extended with an **equality tester** ``EQ`` — a
  closed *data* term (the identity matrix of Church booleans, applied via
  the selectors) with ``EQ a b u v`` reducing to ``u``/``v`` as ``a`` and
  ``b`` select the same/different positions;
* a query is ``λEQ. λR1 ... λRl. M``: pure lambda terms, beta reduction
  only — the test suite asserts zero delta steps — of functionality
  order 4 (the paper's pure-TLC bound).
"""

from repro.pure.encode import (
    PureDatabase,
    decode_pure_relation,
    encode_pure_database,
    equality_tester_term,
    selector_term,
)
from repro.pure.operators import (
    pure_equal_term,
    pure_intersection_term,
    pure_member_term,
    pure_select_term,
    pure_union_term,
)
from repro.pure.driver import run_pure_query

__all__ = [
    "PureDatabase",
    "decode_pure_relation",
    "encode_pure_database",
    "equality_tester_term",
    "pure_equal_term",
    "pure_intersection_term",
    "pure_member_term",
    "pure_select_term",
    "pure_union_term",
    "run_pure_query",
    "selector_term",
]
