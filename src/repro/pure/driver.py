"""Running pure-TLC queries: apply, beta-reduce, decode.

The whole point of the pure track is that *no delta rule fires*: the
driver can therefore also assert purity (``require_pure=True`` re-runs the
reduction on the small-step engine and checks ``delta_steps == 0``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.db.relations import Database, Relation
from repro.errors import EvaluationError
from repro.lam.nbe import nbe_normalize
from repro.lam.reduce import normalize
from repro.lam.terms import Term, app
from repro.pure.encode import decode_pure_relation, encode_pure_database


@dataclass
class PureQueryRun:
    relation: Relation
    normal_form: Term
    delta_steps: Optional[int]


def run_pure_query(
    query: Term,
    database: Database,
    arity: int,
    *,
    require_pure: bool = False,
    max_depth: int = 600_000,
) -> PureQueryRun:
    """Apply a pure query ``λEQ. λR̄. M`` to the encoded database."""
    encoded = encode_pure_database(database)
    applied = app(query, *encoded.inputs)
    delta_steps: Optional[int] = None
    if require_pure:
        outcome = normalize(applied, fuel=5_000_000)
        if outcome.delta_steps:
            raise EvaluationError(
                f"pure query performed {outcome.delta_steps} delta steps"
            )
        delta_steps = outcome.delta_steps
        normal_form = outcome.term
    else:
        normal_form = nbe_normalize(applied, max_depth=max_depth)
    relation = decode_pure_relation(normal_form, arity, encoded.domain)
    return PureQueryRun(
        relation=relation,
        normal_form=normal_form,
        delta_steps=delta_steps,
    )
