"""Pure-TLC encodings: selector constants and the input equality tester.

The active domain ``D = (d1 < ... < dd)`` (first-appearance order, as in
:mod:`repro.db.domain`) fixes the meaning of the selectors: the constant at
position ``i`` encodes as ``λz1 ... zd. z_{i+1}``.  Selector equality by
application: ``EQ a b u v = a row_1 ... row_d`` where ``row_i = b e_{i1}
... e_{id}`` and the matrix entry ``e_{ij}`` is ``u`` exactly on the
diagonal and ``v`` off it.  ``EQ`` is an O(d²)-size
closed term, but it is *data* (part of the encoded input), not part of any
query, so query terms stay data-independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.db.relations import Database, Relation
from repro.errors import DecodeError, EncodingError

from repro.lam.terms import Abs, Term, Var, app, binder_prefix, lam, spine


def selector_term(position: int, domain_size: int, base: str = "z") -> Term:
    """The selector ``λz1 ... zd. z_{position+1}`` (0-based position)."""
    if not 0 <= position < domain_size:
        raise EncodingError(
            f"selector position {position} out of range for domain size "
            f"{domain_size}"
        )
    names = [f"{base}{i + 1}" for i in range(domain_size)]
    return lam(names, Var(names[position]))


def equality_tester_term(domain_size: int) -> Term:
    """``EQ := λa. λb. λu. λv. a row_1 ... row_d`` where
    ``row_i = b e_{i1} ... e_{id}`` and ``e_{ij}`` is ``u`` on the diagonal
    and ``v`` off it.

    ``EQ s_i s_j u v`` beta-reduces to ``u`` iff ``i = j`` — the pure
    replacement for the ``Eq`` delta rule, packaged with the data.  Putting
    ``u``/``v`` directly in the matrix (rather than Church booleans) keeps
    both selectors at the order-1 type ``g -> ... -> g -> g``, which is
    what gives pure-TLC queries the paper's functionality order 4 (one
    above the TLC= order 3).
    """
    if domain_size == 0:
        # Degenerate: no constants exist, so no comparison ever happens;
        # any function of the right shape will do.
        return lam(["a", "b", "u", "v"], Var("v"))
    rows: List[Term] = []
    for i in range(domain_size):
        entries = [
            Var("u") if i == j else Var("v")
            for j in range(domain_size)
        ]
        rows.append(app(Var("b"), *entries))
    body = app(Var("a"), *rows)
    return lam(["a", "b", "u", "v"], body)


@dataclass
class PureDatabase:
    """A database in the pure-TLC input convention.

    ``inputs`` is the tuple the query is applied to: the equality tester
    followed by the encoded relations.  ``domain`` fixes the
    selector-position <-> constant bijection for decoding.
    """

    domain: Tuple[str, ...]
    equality: Term
    relations: Tuple[Tuple[str, Term], ...]

    @property
    def inputs(self) -> List[Term]:
        return [self.equality] + [term for _, term in self.relations]


def encode_pure_database(database: Database) -> PureDatabase:
    """Encode ``database`` per the pure-TLC convention."""
    domain = tuple(database.active_domain())
    position: Dict[str, int] = {name: i for i, name in enumerate(domain)}
    size = len(domain)

    def encode_relation(relation: Relation) -> Term:
        body: Term = Var("n")
        for row in reversed(relation.tuples):
            selectors = [
                selector_term(position[value], size) for value in row
            ]
            body = app(Var("c"), *selectors, body)
        return lam(["c", "n"], body)

    return PureDatabase(
        domain=domain,
        equality=equality_tester_term(size),
        relations=tuple(
            (name, encode_relation(relation))
            for name, relation in database
        ),
    )


def _selector_position(term: Term, domain_size: int) -> int:
    """Read the position a normal-form selector picks."""
    names, body = binder_prefix(term)
    if len(names) != domain_size or not isinstance(body, Var):
        raise DecodeError(
            f"not a {domain_size}-ary selector: {term.pretty()}"
        )
    try:
        return names.index(body.name)
    except ValueError:
        raise DecodeError(
            f"selector body {body.name} is not one of its binders"
        ) from None


def decode_pure_relation(
    term: Term, arity: int, domain: Sequence[str]
) -> Relation:
    """Decode a normal-form pure encoding back to a relation.

    The Lemma 3.2 analysis carries over: the normal form is
    ``λc. λn. c s̄1 (... (c s̄m n))`` with every component a selector.
    Duplicates are removed (first occurrence kept), as in
    :func:`repro.db.decode.decode_relation`.
    """
    if not (isinstance(term, Abs) and isinstance(term.body, Abs)):
        raise DecodeError(f"not a pure relation encoding: {term.pretty()}")
    cons_name, nil_name = term.var, term.body.var
    node = term.body.body
    rows: List[Tuple[str, ...]] = []
    size = len(domain)
    while True:
        if isinstance(node, Var) and node.name == nil_name:
            break
        head, args = spine(node)
        if not (
            isinstance(head, Var)
            and head.name == cons_name
            and len(args) == arity + 1
        ):
            raise DecodeError(
                f"unexpected node in pure encoding: {node.pretty()}"
            )
        row = tuple(
            domain[_selector_position(component, size)]
            for component in args[:arity]
        )
        rows.append(row)
        node = args[arity]
    return Relation.deduplicated(arity, rows)
