"""Relational operators in pure TLC (no Eq constant).

The Section 4 operator shapes carry over verbatim, with every
``Eq S T U V`` replaced by an application ``EQ S T U V`` of the bound
equality-tester variable.  An operator here is an *open* term over ``EQ``
(closed by the query's leading ``λEQ`` binder), so the family composes the
same way as the TLC= library.
"""

from __future__ import annotations

from typing import List

from repro.lam.terms import Term, Var, app, lam

EQ_VAR = "EQ"


def _tuple_vars(base: str, count: int) -> List[str]:
    return [f"{base}{i + 1}" for i in range(count)]


def pure_equal_term(k: int) -> Term:
    """``Equal_k`` with the tester threaded through:

        λx̄. λȳ. λu. λv. EQ x1 y1 (EQ x2 y2 ... (EQ xk yk u v) v) v
    """
    xs = _tuple_vars("x", k)
    ys = _tuple_vars("y", k)
    body: Term = Var("u")
    for x, y in reversed(list(zip(xs, ys))):
        body = app(Var(EQ_VAR), Var(x), Var(y), body, Var("v"))
    return lam(xs + ys + ["u", "v"], body)


def pure_member_term(k: int) -> Term:
    """``Member_k`` over selector tuples."""
    xs = _tuple_vars("x", k)
    ys = _tuple_vars("y", k)
    loop = lam(
        ys + ["T"],
        app(
            pure_equal_term(k),
            *[Var(x) for x in xs],
            *[Var(y) for y in ys],
            Var("u"),
            Var("T"),
        ),
    )
    return lam(xs + ["R", "u", "v"], app(Var("R"), loop, Var("v")))


def pure_intersection_term(k: int) -> Term:
    """``Intersection_k`` over selector tuples (open in ``EQ``)."""
    xs = _tuple_vars("x", k)
    x_vars = [Var(x) for x in xs]
    keep = app(Var("c"), *x_vars, Var("T"))
    loop = lam(
        xs + ["T"],
        app(pure_member_term(k), *x_vars, Var("S"), keep, Var("T")),
    )
    return lam(["R", "S", "c", "n"], app(Var("R"), loop, Var("n")))


def pure_union_term(k: int) -> Term:
    """``Union_k`` needs no equality at all."""
    return lam(
        ["R", "S", "c", "n"],
        app(Var("R"), Var("c"), app(Var("S"), Var("c"), Var("n"))),
    )


def pure_difference_term(k: int) -> Term:
    """``Difference_k`` over selector tuples (open in ``EQ``)."""
    xs = _tuple_vars("x", k)
    x_vars = [Var(x) for x in xs]
    keep = app(Var("c"), *x_vars, Var("T"))
    loop = lam(
        xs + ["T"],
        app(pure_member_term(k), *x_vars, Var("S"), Var("T"), keep),
    )
    return lam(["R", "S", "c", "n"], app(Var("R"), loop, Var("n")))


def pure_select_term(k: int, left: int, right: int) -> Term:
    """Selection ``column left = column right`` (open in ``EQ``)."""
    xs = _tuple_vars("x", k)
    x_vars = [Var(x) for x in xs]
    keep = app(Var("c"), *x_vars, Var("T"))
    loop = lam(
        xs + ["T"],
        app(Var(EQ_VAR), x_vars[left], x_vars[right], keep, Var("T")),
    )
    return lam(["R", "c", "n"], app(Var("R"), loop, Var("n")))


def pure_query(body: Term, input_names: List[str]) -> Term:
    """Close an operator composition into the pure query shape
    ``λEQ. λR1 ... λRl. body``."""
    return lam([EQ_VAR] + list(input_names), body)
