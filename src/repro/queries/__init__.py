"""Query languages over encoded databases (Sections 3.2 and 4).

* :mod:`repro.queries.operators` — the TLI=0 relational-operator terms
  (Equal_k, Member_k, Intersection_k, Order_k, ... — Section 4 and the
  Appendix).
* :mod:`repro.queries.relalg_compile` — relational algebra to TLI=0 terms
  (Theorem 4.1).
* :mod:`repro.queries.fo_compile` — first-order formulas to relational
  algebra (active-domain semantics; together with the above this embeds the
  FO-queries of Definition 3.5).
* :mod:`repro.queries.fixpoint` — the Section 4 fixpoint machinery
  (ListToFunc, FuncToList, Copy gadgets, Crank) compiling fixpoint queries
  to TLI=1 / MLI=1 terms (Theorem 4.2).
* :mod:`repro.queries.language` — TLI=_i / MLI=_i query-term recognition
  (Definitions 3.7/3.8, Lemma 3.9).
"""

from repro.queries.language import (
    QueryArity,
    is_mli_query_term,
    is_tli_query_term,
    mli_query_order,
    tli_query_order,
)
from repro.queries.relalg_compile import build_ra_query, compile_ra
from repro.queries.fixpoint import build_fixpoint_query, FixpointQuery

__all__ = [
    "FixpointQuery",
    "QueryArity",
    "build_fixpoint_query",
    "build_ra_query",
    "compile_ra",
    "is_mli_query_term",
    "is_tli_query_term",
    "mli_query_order",
    "tli_query_order",
]
