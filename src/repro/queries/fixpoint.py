"""Fixpoint queries as TLI=1 / MLI=1 terms (Section 4, Theorem 4.2).

A fixpoint query iterates a TLI=0-expressible step ``M`` (a relational
algebra expression over the inputs R1..Rl and the fixpoint variable) from
the empty relation, polynomially many times.  Following the paper:

* **Intermediate representation.**  Stages are passed as *characteristic
  functions* ``Phi = o -> ... -> o -> Bool`` (order 1), because TLI=1
  iterations may pass only order-1 objects.  ``ListToFunc`` and
  ``FuncToList`` translate between list and characteristic-function form;
  ``FuncToList`` enumerates the active domain ``D``.
* **Crank.**  A sufficiently long iterator: the ``k``-fold product
  ``D x ... x D`` used as a Church-numeral-like engine that applies the
  step ``|D|^k`` times (a monotone/inflationary fixpoint over ``k``-ary
  relations converges within ``|D|^k`` stages).
* **Typing.**  Inside the step and the list<->function converters the
  inputs are iterated with order-0 accumulators; inside the Crank they are
  iterated with accumulator ``Phi`` (order 1).  These typings do not unify,
  so the MLI=1 variant relies on let-polymorphism, while the TLI=1 variant
  inserts the *type-laundering* ``Copy_i`` gadgets: ``(Copy_i R_i)``
  reduces to a copy of ``R_i`` but is typed at ``o^{k_i}_g`` while ``R_i``
  itself is typed with accumulator ``Phi``.

The step is compiled with :mod:`repro.queries.relalg_compile`; use the
reserved name :data:`FIX_NAME` in the step expression to refer to the
current stage.  With ``inflationary=True`` (default) the step is wrapped as
``FIX union M``, so convergence holds for any step (inflationary fixpoint
logic, which captures PTIME on ordered — hence on list-represented —
databases [28, 46]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.errors import QueryTermError
from repro.lam.terms import Abs, Const, Term, Var, app, lam
from repro.queries import operators as ops
from repro.queries.relalg_compile import compile_ra
from repro.relalg.ast import Base, RAExpr, Union

#: The reserved relation name standing for the fixpoint variable in steps.
FIX_NAME = "__FIX__"


def fix() -> Base:
    """The fixpoint variable as an RA base relation."""
    return Base(FIX_NAME)


def _tuple_vars(base: str, count: int) -> list:
    return [f"{base}{i + 1}" for i in range(count)]


# ---------------------------------------------------------------------------
# The Section 4 building blocks
# ---------------------------------------------------------------------------

def list_to_func_term(k: int) -> Term:
    """``ListToFunc : o^k_g -> Phi_k`` (Section 4):

        λR. λx̄. λu. λv. R (λȳ. λT. Equal_k x̄ ȳ u T) v
    """
    xs = _tuple_vars("x", k)
    ys = _tuple_vars("y", k)
    loop = lam(
        ys + ["T"],
        app(
            ops.equal_term(k),
            *[Var(x) for x in xs],
            *[Var(y) for y in ys],
            Var("u"),
            Var("T"),
        ),
    )
    return lam(["R"] + xs + ["u", "v"], app(Var("R"), loop, Var("v")))


def func_to_list_term(k: int, domain_term: Term) -> Term:
    """``FuncToList : Phi_k -> o^k_g`` (Section 4): enumerate ``D^k`` and
    keep the tuples the characteristic function accepts:

        λf. λc. λn.
          D (λx1. λT1. D (λx2. λT2. ... D (λxk. λTk.
              f x̄ (c x̄ Tk) Tk) T_{k-1} ...) T1) n

    ``domain_term`` is the (open) term computing the active-domain list.
    """
    xs = _tuple_vars("x", k)
    x_vars = [Var(x) for x in xs]
    if k == 0:
        # Nullary: the single empty tuple is in iff f accepts it.
        body = app(Var("f"), app(Var("c"), Var("n")), Var("n"))
        return lam(["f", "c", "n"], body)
    accumulators = ["n"] + [f"T{i + 1}" for i in range(k)]
    innermost = app(
        Var("f"),
        *x_vars,
        app(Var("c"), *x_vars, Var(accumulators[k])),
        Var(accumulators[k]),
    )
    body = innermost
    for level in range(k, 0, -1):
        body = app(
            domain_term,
            lam([xs[level - 1], accumulators[level]], body),
            Var(accumulators[level - 1]),
        )
    return lam(["f", "c", "n"], body)


def copy_gadget_term(input_arity: int, pad_arity: int) -> Term:
    """The type-laundering ``Copy`` gadget (Section 4, from [25]).

    ``(Copy R)`` reduces to another encoding of the same relation.  ``R``
    itself is iterated with accumulator type
    ``Phi = o^pad_arity -> g -> g -> g`` (order 1 — the same type the Crank
    uses), while the copy has type ``o^{input_arity}_g``:

        λR. λc. λn.
          R (λx̄. λA. λz̄. λu. λv. c x̄ (A z̄ u v))
            (λz̄. λu. λv. v)
          d̄ n n

    where ``z̄``/``d̄`` are ``pad_arity`` dummy arguments (the dummies are
    the constant ``o1``; they are absorbed and never reach the output).
    """
    xs = _tuple_vars("x", input_arity)
    zs = _tuple_vars("z", pad_arity)
    step = lam(
        xs + ["A"] + zs + ["u", "v"],
        app(
            Var("c"),
            *[Var(x) for x in xs],
            app(Var("A"), *[Var(z) for z in zs], Var("u"), Var("v")),
        ),
    )
    start = lam(zs + ["u", "v"], Var("v"))
    dummies = [Const("o1")] * pad_arity
    body = app(
        app(Var("R"), step, start), *dummies, Var("n"), Var("n")
    )
    return lam(["R", "c", "n"], body)


def crank_term(k: int, domain_term: Term) -> Term:
    """The ``Crank`` iterator (Section 4): applies its first argument
    ``|D|^k`` times to its second, by iterating the ``k``-fold product
    ``D x ... x D`` while absorbing the tuple components:

        λs. λz. (D x ... x D) (λw1...wk. λT. s T) z

    ``domain_term`` computes ``D`` from the (raw) inputs.  For ``k = 0``
    the product is the one-tuple list, giving a single application.
    """
    if k == 0:
        product: Term = lam(["c", "n"], app(Var("c"), Var("n")))
    else:
        product = domain_term
        for width in range(1, k):
            # Widen left-by-one: D x (D^width) has arity width + 1.
            product = app(ops.product_term(1, width), domain_term, product)
    ws = _tuple_vars("w", k)
    step = lam(ws + ["T"], app(Var("s"), Var("T")))
    return lam(["s", "z"], app(product, step, Var("z")))


def empty_characteristic_term(k: int) -> Term:
    """``λx̄. False`` — the characteristic function of the empty relation."""
    xs = _tuple_vars("x", k)
    return lam(xs + ["u", "v"], Var("v"))


# ---------------------------------------------------------------------------
# Whole-query assembly
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FixpointQuery:
    """A fixpoint query specification.

    ``step`` is an RA expression over the input names and :data:`FIX_NAME`;
    ``output_arity`` is the arity of the fixpoint relation.  With
    ``inflationary=True`` the effective step is ``FIX union step``.
    """

    step: RAExpr
    output_arity: int
    input_schema: Tuple[Tuple[str, int], ...]
    inflationary: bool = True

    @staticmethod
    def of(
        step: RAExpr,
        output_arity: int,
        input_schema: Mapping[str, int],
        inflationary: bool = True,
    ) -> "FixpointQuery":
        return FixpointQuery(
            step, output_arity, tuple(input_schema.items()), inflationary
        )

    def schema(self) -> Dict[str, int]:
        return dict(self.input_schema)

    def effective_step(self) -> RAExpr:
        if self.inflationary:
            return Union(fix(), self.step)
        return self.step

    def input_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.input_schema)


def _adom_term(schema: Mapping[str, int], var_of, distinct: bool = True) -> Term:
    """Active-domain list over the *input* relations only.

    ``distinct=False`` selects the plain projection/union operators: the
    duplicate-suppressing variants branch on ``Eq``, whose branches have
    type ``g``, so they only type at order-0 accumulators — inside the
    Crank the domain is iterated at accumulator ``Phi`` (order 1) and must
    be built Eq-free (the duplicates merely pad the Crank's length, which
    stays polynomial)."""
    from repro.queries.relalg_compile import active_domain_expr_term

    return active_domain_expr_term(schema, var_of, distinct=distinct)


def build_fixpoint_query(query: FixpointQuery, style: str = "tli") -> Term:
    """Compile a fixpoint query to a TLI=1 (``style="tli"``) or MLI=1
    (``style="mli"``) query term ``λR1 ... λRl. ...`` (Theorem 4.2).

    The two styles produce the same relation on every input; they differ
    only in the typing devices (Copy gadgets vs let-polymorphism).
    """
    if style not in ("tli", "mli"):
        raise QueryTermError(f"unknown style {style!r}")
    schema = query.schema()
    names = list(query.input_names())
    k = query.output_arity
    step_expr = query.effective_step()
    step_schema = dict(schema)
    step_schema[FIX_NAME] = k

    if style == "tli":
        # Occurrences inside the step / converters use (Copy_i R_i); the
        # Crank and the Copy gadgets themselves use the raw R_i.
        def laundered(name: str) -> Term:
            return app(copy_gadget_term(schema[name], k), Var(name))
    else:
        def laundered(name: str) -> Term:
            return Var(name)

    fix_var = Var("FIXSTAGE")
    step_variables: Dict[str, Term] = {
        name: laundered(name) for name in names
    }
    step_variables[FIX_NAME] = fix_var
    step_body = compile_ra(step_expr, step_schema, step_variables)
    step_fn = Abs("FIXSTAGE", step_body)

    # Converters: the domain inside FuncToList uses laundered inputs.
    domain_for_converters = _adom_term(
        schema, lambda name: laundered(name)
    )
    func_to_list = func_to_list_term(k, domain_for_converters)
    list_to_func = list_to_func_term(k)

    # Crank: the domain here uses the raw inputs (accumulator Phi), built
    # from the Eq-free operator variants (see _adom_term).
    domain_for_crank = _adom_term(
        schema, lambda name: Var(name), distinct=False
    )
    crank = crank_term(k, domain_for_crank)

    one_stage = lam(
        ["f"],
        app(list_to_func, app(step_fn, app(func_to_list, Var("f")))),
    )
    cranked = app(crank, one_stage, empty_characteristic_term(k))
    body = app(func_to_list, cranked)
    return lam(names, body)


def transitive_closure_query(edge_name: str = "E") -> FixpointQuery:
    """The canonical PTIME-complete example: transitive closure of a binary
    relation.  Step: ``TC(x, y) <- E(x, y)  |  E(x, z), TC(z, y)``."""
    from repro.relalg.ast import ColumnEqualsColumn, Product, Project, Select

    edge = Base(edge_name)
    join = Project(
        Select(Product(edge, fix()), ColumnEqualsColumn(1, 2)),
        (0, 3),
    )
    step = Union(edge, join)
    return FixpointQuery.of(step, 2, {edge_name: 2}, inflationary=True)


def reachability_query(
    source_name: str = "S", edge_name: str = "E"
) -> FixpointQuery:
    """Single-source reachability:
    ``R(x) <- S(x)  |  R(y), E(y, x)`` — the query the paper's introduction
    motivates as not first-order expressible."""
    from repro.relalg.ast import ColumnEqualsColumn, Product, Project, Select

    frontier = Project(
        Select(
            Product(fix(), Base(edge_name)), ColumnEqualsColumn(0, 1)
        ),
        (2,),
    )
    step = Union(Base(source_name), frontier)
    return FixpointQuery.of(
        step, 1, {source_name: 1, edge_name: 2}, inflationary=True
    )


def same_generation_query(
    flat_name: str = "flat",
    up_name: str = "up",
    down_name: str = "down",
) -> FixpointQuery:
    """The classical same-generation query:
    ``SG(x, y) <- flat(x, y)  |  up(x, x'), SG(x', y'), down(y', y)``."""
    from repro.relalg.ast import ColumnEqualsColumn, Product, Project, Select

    # Columns of up x (SG x down): (x, x', x'', y', y'', y).
    joined = Select(
        Select(
            Product(Base(up_name), Product(fix(), Base(down_name))),
            ColumnEqualsColumn(1, 2),
        ),
        ColumnEqualsColumn(3, 4),
    )
    step = Union(Base(flat_name), Project(joined, (0, 5)))
    return FixpointQuery.of(
        step,
        2,
        {flat_name: 2, up_name: 2, down_name: 2},
        inflationary=True,
    )
