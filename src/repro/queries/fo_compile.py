"""Compiling first-order formulas to relational algebra (Codd's theorem).

Theorem 4.1 embeds the FO-queries into TLI=0 via "Codd's equivalence
theorem for relational algebra and calculus".  This module is that step:
an FO formula with free variables ``v1 < ... < vk`` compiles to an RA
expression over the database schema plus the derived bases ``adom`` and
``precedes(R)``, whose value is exactly the formula's active-domain answer
set ``{x̄ : structure |= φ(x̄)}``.

The translation is the standard active-domain one.  For every subformula,
we produce an RA expression whose columns are the subformula's free
variables in sorted order:

* atoms compile to selections/projections over the base relation (constant
  arguments become constant selections, repeated variables equality
  selections), padded with ``adom`` columns when a variable list must grow;
* ``and`` compiles to a natural join (product + equality selection +
  projection), ``or`` to union after padding both sides to the joint
  variable set, ``not φ`` to ``adom^k - φ``;
* ``exists v`` projects the variable away; ``forall v`` is
  ``not exists v not``.

Composed with :mod:`repro.queries.relalg_compile`, every FO-query becomes a
TLI=0 (MLI=0) query term, which is the constructive half of
Theorem 4.1/5.1's equivalence — the tests check agreement of the full
pipeline against :mod:`repro.folog.evaluate` on random databases.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import EvaluationError
from repro.folog.formulas import (
    And,
    Atom,
    Equals,
    Exists,
    FConst,
    FTerm,
    FVar,
    FalseFormula,
    Forall,
    Formula,
    Not,
    Or,
    Precedes,
    TrueFormula,
    formula_free_vars,
)
from repro.relalg.ast import (
    Base,
    ColumnEqualsColumn,
    ColumnEqualsConst,
    CondAnd,
    CondTrue,
    Condition,
    Difference,
    Product,
    Project,
    RAExpr,
    Select,
    Union,
    adom,
    precedes,
)


def compile_fo(
    formula: Formula,
    output_vars: Sequence[str],
    schema: Mapping[str, int],
) -> RAExpr:
    """Compile ``formula`` to an RA expression with one column per
    ``output_vars`` entry (in the given order).

    The formula's free variables must be contained in ``output_vars``;
    variables not free in the formula range over the active domain.
    """
    free = formula_free_vars(formula)
    missing = free - set(output_vars)
    if missing:
        raise EvaluationError(
            f"free variables {sorted(missing)} not among output variables"
        )
    if len(set(output_vars)) != len(output_vars):
        raise EvaluationError("output variables must be distinct")
    expr, columns = _compile(formula, schema)
    # Pad to the full output variable set, then project into order.
    expr, columns = _pad(expr, columns, sorted(set(output_vars)))
    return Project(
        expr, tuple(columns.index(name) for name in output_vars)
    )


def _compile(
    formula: Formula, schema: Mapping[str, int]
) -> Tuple[RAExpr, List[str]]:
    """Compile to (expression, column variable names in sorted order)."""
    if isinstance(formula, TrueFormula):
        # The zero-ary relation containing the empty tuple: adom projected
        # to no columns (nonempty iff the domain is nonempty, which is the
        # active-domain reading of "true").
        return Project(adom(), ()), []
    if isinstance(formula, FalseFormula):
        return Difference(Project(adom(), ()), Project(adom(), ())), []
    if isinstance(formula, Atom):
        return _compile_atom(
            Base(formula.relation), formula.terms, schema
        )
    if isinstance(formula, Precedes):
        return _compile_atom(
            precedes(formula.relation),
            tuple(formula.left) + tuple(formula.right),
            schema,
        )
    if isinstance(formula, Equals):
        return _compile_equals(formula)
    if isinstance(formula, And):
        left, left_cols = _compile(formula.left, schema)
        right, right_cols = _compile(formula.right, schema)
        return _join(left, left_cols, right, right_cols)
    if isinstance(formula, Or):
        left, left_cols = _compile(formula.left, schema)
        right, right_cols = _compile(formula.right, schema)
        all_cols = sorted(set(left_cols) | set(right_cols))
        left, left_cols = _pad(left, left_cols, all_cols)
        right, right_cols = _pad(right, right_cols, all_cols)
        right = Project(
            right,
            tuple(right_cols.index(name) for name in left_cols),
        )
        return Union(left, right), left_cols
    if isinstance(formula, Not):
        inner, columns = _compile(formula.inner, schema)
        return Difference(_domain_power(len(columns)), inner), columns
    if isinstance(formula, Exists):
        inner, columns = _compile(formula.body, schema)
        if formula.var not in columns:
            return inner, columns
        kept = [name for name in columns if name != formula.var]
        return (
            Project(
                inner, tuple(columns.index(name) for name in kept)
            ),
            kept,
        )
    if isinstance(formula, Forall):
        rewritten = Not(Exists(formula.var, Not(formula.body)))
        return _compile(rewritten, schema)
    raise TypeError(f"not a formula: {formula!r}")


def _compile_atom(
    base: RAExpr, terms: Tuple[FTerm, ...], schema: Mapping[str, int]
) -> Tuple[RAExpr, List[str]]:
    """Selection for constants/repeats, then projection to sorted vars."""
    condition: Condition = CondTrue()
    first_position: Dict[str, int] = {}
    for index, term in enumerate(terms):
        if isinstance(term, FConst):
            condition = _conjoin(
                condition, ColumnEqualsConst(index, term.name)
            )
        elif isinstance(term, FVar):
            if term.name in first_position:
                condition = _conjoin(
                    condition,
                    ColumnEqualsColumn(first_position[term.name], index),
                )
            else:
                first_position[term.name] = index
        else:
            raise TypeError(f"not a term: {term!r}")
    expr: RAExpr = base
    if not isinstance(condition, CondTrue):
        expr = Select(expr, condition)
    columns = sorted(first_position)
    return (
        Project(expr, tuple(first_position[name] for name in columns)),
        columns,
    )


def _compile_equals(formula: Equals) -> Tuple[RAExpr, List[str]]:
    left, right = formula.left, formula.right
    if isinstance(left, FConst) and isinstance(right, FConst):
        if left.name == right.name:
            return Project(adom(), ()), []
        return Difference(Project(adom(), ()), Project(adom(), ())), []
    if isinstance(left, FVar) and isinstance(right, FVar):
        if left.name == right.name:
            return adom(), [left.name]
        columns = sorted((left.name, right.name))
        return (
            Select(
                Product(adom(), adom()), ColumnEqualsColumn(0, 1)
            ),
            columns,
        )
    # variable = constant (either orientation)
    var = left if isinstance(left, FVar) else right
    const = right if isinstance(right, FConst) else left
    assert isinstance(var, FVar) and isinstance(const, FConst)
    return (
        Select(adom(), ColumnEqualsConst(0, const.name)),
        [var.name],
    )


def _conjoin(left: Condition, right: Condition) -> Condition:
    if isinstance(left, CondTrue):
        return right
    return CondAnd(left, right)


def _domain_power(arity: int) -> RAExpr:
    """``adom^arity`` (the zero-ary one-row relation when arity is 0)."""
    if arity == 0:
        return Project(adom(), ())
    expr: RAExpr = adom()
    for _ in range(arity - 1):
        expr = Product(expr, adom())
    return expr


def _pad(
    expr: RAExpr, columns: List[str], target: Sequence[str]
) -> Tuple[RAExpr, List[str]]:
    """Extend ``expr`` with adom columns for the variables in ``target``
    that it lacks; resulting columns are ``target`` order."""
    extra = [name for name in target if name not in columns]
    missing = [name for name in columns if name not in target]
    if missing:
        raise EvaluationError(
            f"cannot pad away existing columns {missing}"
        )
    padded: RAExpr = expr
    padded_cols = list(columns)
    for name in extra:
        padded = Product(padded, adom())
        padded_cols.append(name)
    return (
        Project(
            padded, tuple(padded_cols.index(name) for name in target)
        ),
        list(target),
    )


def _join(
    left: RAExpr,
    left_cols: List[str],
    right: RAExpr,
    right_cols: List[str],
) -> Tuple[RAExpr, List[str]]:
    """Natural join on shared variable names."""
    shared = [name for name in left_cols if name in right_cols]
    condition: Condition = CondTrue()
    offset = len(left_cols)
    for name in shared:
        condition = _conjoin(
            condition,
            ColumnEqualsColumn(
                left_cols.index(name), offset + right_cols.index(name)
            ),
        )
    product: RAExpr = Product(left, right)
    if not isinstance(condition, CondTrue):
        product = Select(product, condition)
    all_cols = sorted(set(left_cols) | set(right_cols))
    positions = []
    for name in all_cols:
        if name in left_cols:
            positions.append(left_cols.index(name))
        else:
            positions.append(offset + right_cols.index(name))
    return Project(product, tuple(positions)), all_cols
