"""TLI=_i / MLI=_i query-term recognition (Definitions 3.7/3.8, Lemma 3.9).

A query term of arity ``(k1, ..., kl; k)`` in TLI=_i is a typed TLC= term
``Q = λR1 ... λRl. M`` of order ``i + 3`` such that for every encoded
database of the right arities, ``(Q r̄1 ... r̄l)`` can be typed as
``o^k_d`` for some type variable ``d`` different from ``o``.  MLI=_i is the
same with core-ML= typing and the ``R`` bindings treated as lets.

Lemma 3.9 makes the semantic quantification syntactic: it suffices to check
the application against inputs of *principal* relation type ``o^{k_j}``.
We realize this by typing the body with each ``R_j`` assumed at
``o^{k_j}_{a_j}`` for a fresh accumulator variable ``a_j`` (TLI) or at the
scheme ``forall a. o^{k_j}_a`` (MLI), then unifying the result with
``o^k_d`` for a fresh ``d`` and checking that ``d`` stays a variable (or
the fixed ``g``), never ``o`` or an arrow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import QueryTermError, TypeInferenceError
from repro.lam.terms import Abs, Term, binder_prefix
from repro.types.ml import TypeScheme, ml_infer
from repro.types.infer import infer
from repro.types.types import BaseG, Type, TypeVar, relation_type
from repro.types.unify import UnificationError


@dataclass(frozen=True)
class QueryArity:
    """The arity signature ``(k1, ..., kl; k)`` of a query."""

    inputs: Tuple[int, ...]
    output: int

    def __str__(self) -> str:
        ins = ", ".join(str(k) for k in self.inputs)
        return f"({ins}; {self.output})"


@dataclass
class RecognitionResult:
    """Outcome of a successful recognition: the order actually required."""

    arity: QueryArity
    derivation_order: int
    result_accumulator: Type


def _split_query(term: Term, input_count: int) -> Tuple[Sequence[str], Term]:
    binders, body = binder_prefix(term)
    if len(binders) < input_count:
        raise QueryTermError(
            f"query term has {len(binders)} leading binders, "
            f"needs {input_count}"
        )
    # Only the first l binders are relation inputs; re-wrap the rest.
    from repro.lam.terms import lam

    names = binders[:input_count]
    if len(set(names)) != len(names):
        raise QueryTermError(
            "relation binders must be distinct variables"
        )
    rest = lam(list(binders[input_count:]), body) if (
        len(binders) > input_count
    ) else body
    return names, rest


def _check_result_accumulator(result_type: Type, subst, output: int) -> Type:
    """Unify the body type with ``o^k_d`` (fresh d) and validate d."""
    fresh = TypeVar("?result_acc")
    try:
        subst.unify(result_type, relation_type(output, fresh))
    except UnificationError as exc:
        raise QueryTermError(
            f"query result does not have relation type o^{output}: {exc}"
        ) from exc
    accumulator = subst.walk(fresh)
    if isinstance(accumulator, (TypeVar, BaseG)):
        return accumulator
    raise QueryTermError(
        f"result accumulator is forced to {accumulator}, "
        f"not a type variable different from o (Definition 3.7)"
    )


def recognize_tli(
    term: Term,
    arity: QueryArity,
    max_order: Optional[int] = None,
) -> RecognitionResult:
    """Recognize ``term`` as a TLI= query term of the given arity.

    ``max_order`` (when given) additionally enforces the order bound
    ``i + 3``; use :func:`tli_query_order` to measure the least bound.
    Raises :class:`QueryTermError` when the term is not a query term.
    """
    names, body = _split_query(term, len(arity.inputs))
    env = {
        name: relation_type(k, TypeVar(f"?acc_{name}"))
        for name, k in zip(names, arity.inputs)
    }
    try:
        result = infer(body, env)
    except TypeInferenceError as exc:
        raise QueryTermError(f"query body does not type: {exc}") from exc
    accumulator = _check_result_accumulator(
        result.occurrence_types[()], result.subst, arity.output
    )
    order_needed = result.derivation_order()
    # The query term itself has type o^{k1} -> ... -> o^k; each input
    # assumption contributes 1 + its own order (the lambda binder).
    from repro.types.order import ground, order as type_order

    for assumed in env.values():
        order_needed = max(
            order_needed,
            1 + type_order(ground(result.subst.apply(assumed))),
        )
    if max_order is not None and order_needed > max_order:
        raise QueryTermError(
            f"query requires order {order_needed}, bound is {max_order}"
        )
    return RecognitionResult(arity, order_needed, accumulator)


def recognize_mli(
    term: Term,
    arity: QueryArity,
    max_order: Optional[int] = None,
) -> RecognitionResult:
    """Recognize ``term`` as an MLI= query term: as :func:`recognize_tli`
    but with the relation bindings typed as lets (each occurrence of an
    input may pick a different accumulator instance)."""
    names, body = _split_query(term, len(arity.inputs))
    schemes = {
        name: TypeScheme(
            (f"?sch_{name}",), relation_type(k, TypeVar(f"?sch_{name}"))
        )
        for name, k in zip(names, arity.inputs)
    }
    try:
        result = ml_infer(body, env_schemes=schemes)
    except TypeInferenceError as exc:
        raise QueryTermError(f"query body does not ML-type: {exc}") from exc
    accumulator = _check_result_accumulator(
        result.occurrence_types[()], result.subst, arity.output
    )
    order_needed = result.derivation_order()
    # Each occurrence of an input contributes 1 + the order of its
    # instance (the lambda/let binder of the query term).
    from repro.types.order import ground, order as type_order

    for path in _var_occurrence_paths(body, set(names)):
        occurrence = result.occurrence_types.get(path)
        if occurrence is not None:
            order_needed = max(
                order_needed,
                1 + type_order(ground(result.subst.apply(occurrence))),
            )
    if max_order is not None and order_needed > max_order:
        raise QueryTermError(
            f"query requires order {order_needed}, bound is {max_order}"
        )
    return RecognitionResult(arity, order_needed, accumulator)


def _var_occurrence_paths(term, names):
    """Paths (child-index tuples) of free occurrences of the given
    variables — the same path scheme the inference engines record."""
    from repro.lam.terms import Abs, App, Let, Var

    paths = []

    def walk(node, path, bound):
        if isinstance(node, Var):
            if node.name in names and node.name not in bound:
                paths.append(path)
        elif isinstance(node, Abs):
            walk(node.body, path + (0,), bound | {node.var})
        elif isinstance(node, App):
            walk(node.fn, path + (0,), bound)
            walk(node.arg, path + (1,), bound)
        elif isinstance(node, Let):
            walk(node.bound, path + (0,), bound)
            walk(node.body, path + (1,), bound | {node.var})

    walk(term, (), frozenset())
    return paths


def is_tli_query_term(term: Term, arity: QueryArity, i: int) -> bool:
    """Is ``term`` a TLI=_i query term of the given arity (Lemma 3.9)?"""
    try:
        recognize_tli(term, arity, max_order=i + 3)
        return True
    except QueryTermError:
        return False


def is_mli_query_term(term: Term, arity: QueryArity, i: int) -> bool:
    """Is ``term`` an MLI=_i query term of the given arity (Lemma 3.9)?"""
    try:
        recognize_mli(term, arity, max_order=i + 3)
        return True
    except QueryTermError:
        return False


def tli_query_order(term: Term, arity: QueryArity) -> int:
    """The least order bound under which ``term`` is a TLI= query term;
    the least ``i`` with ``term`` in TLI=_i is this value minus 3
    (clamped at 0)."""
    return recognize_tli(term, arity).derivation_order


def mli_query_order(term: Term, arity: QueryArity) -> int:
    """The least order bound under which ``term`` is an MLI= query term."""
    return recognize_mli(term, arity).derivation_order
