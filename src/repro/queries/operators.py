"""The TLI=0 relational-operator terms (Section 4 and the Appendix).

Each function returns a *closed* lambda term, built exactly as the paper
writes it; arity-indexed families are functions of ``k``.  The terms given
explicitly in the paper's text are Equal_k, Member_k, Intersection_k, and
Order_k; the rest (union, difference, product, projection, selection, the
active-domain projections, and the strict tuple-order relation) are the
Appendix library, reconstructed in the same style and validated against the
baseline engine by the test suite.

Typing summary (over the fixed variables ``o`` and ``g``; ``d`` below is
the output accumulator, instantiated to ``g`` in whole-query typings):

    Equal_k        : o^k -> o^k -> Bool           (Bool = g -> g -> g)
    Member_k       : o^k -> o^k_g -> Bool
    Order_k        : o^k -> o^k -> o^k_g -> Bool
    Intersection_k : o^k_d -> o^k_g -> o^k_d      (with d = g)
    Union_k        : o^k_d -> o^k_d -> o^k_d
    ...

All operators are order <= 3, hence TLI=0 building blocks.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import QueryTermError
from repro.lam.terms import Const, EqConst, Term, Var, app, lam
from repro.relalg.ast import (
    ColumnEqualsColumn,
    ColumnEqualsConst,
    CondAnd,
    CondNot,
    CondOr,
    CondTrue,
    Condition,
)


def _tuple_vars(base: str, count: int) -> list:
    return [f"{base}{i + 1}" for i in range(count)]


def equal_term(k: int) -> Term:
    """``Equal_k``: tuple equality (Section 4).

    ``Equal_k x1..xk y1..yk`` reduces to ``True`` iff the tuples agree:

        λx̄. λȳ. λu. λv. Eq x1 y1 (Eq x2 y2 (... (Eq xk yk u v) ... v) v
    """
    xs = _tuple_vars("x", k)
    ys = _tuple_vars("y", k)
    body: Term = Var("u")
    # Build inside-out: the innermost test yields u, any failure yields v.
    for x, y in reversed(list(zip(xs, ys))):
        body = app(EqConst(), Var(x), Var(y), body, Var("v"))
    return lam(xs + ys + ["u", "v"], body)


def member_term(k: int) -> Term:
    """``Member_k``: tuple membership in an encoded relation (Section 4).

        λx̄. λR. λu. λv. R (λȳ. λT. Equal_k x̄ ȳ u T) v
    """
    xs = _tuple_vars("x", k)
    ys = _tuple_vars("y", k)
    loop = lam(
        ys + ["T"],
        app(
            equal_term(k),
            *[Var(x) for x in xs],
            *[Var(y) for y in ys],
            Var("u"),
            Var("T"),
        ),
    )
    return lam(xs + ["R", "u", "v"], app(Var("R"), loop, Var("v")))


def order_term(k: int) -> Term:
    """``Order_k``: weak tuple order in an encoded relation (Section 4).

    ``Order_k x̄ ȳ R`` reduces to ``True`` iff the first of the two tuples
    reached in R's list order is ``x̄`` (so ``True`` when ``x̄ = ȳ`` is
    present, and ``False`` when neither occurs):

        λx̄. λȳ. λR. λu. λv.
            R (λz̄. λT. Equal_k x̄ z̄ u (Equal_k ȳ z̄ v T)) v
    """
    xs = _tuple_vars("x", k)
    ys = _tuple_vars("y", k)
    zs = _tuple_vars("z", k)
    x_vars = [Var(x) for x in xs]
    y_vars = [Var(y) for y in ys]
    z_vars = [Var(z) for z in zs]
    loop = lam(
        zs + ["T"],
        app(
            equal_term(k),
            *x_vars,
            *z_vars,
            Var("u"),
            app(equal_term(k), *y_vars, *z_vars, Var("v"), Var("T")),
        ),
    )
    return lam(
        xs + ys + ["R", "u", "v"], app(Var("R"), loop, Var("v"))
    )


def intersection_term(k: int) -> Term:
    """``Intersection_k`` (Section 4):

        λR. λS. λc. λn. R (λx̄. λT. Member_k x̄ S (c x̄ T) T) n
    """
    xs = _tuple_vars("x", k)
    x_vars = [Var(x) for x in xs]
    keep = app(Var("c"), *x_vars, Var("T"))
    loop = lam(
        xs + ["T"],
        app(member_term(k), *x_vars, Var("S"), keep, Var("T")),
    )
    return lam(["R", "S", "c", "n"], app(Var("R"), loop, Var("n")))


def union_term(k: int) -> Term:
    """``Union_k`` (Appendix): ``λR. λS. λc. λn. R c (S c n)`` — prepend
    R's tuples to S's list."""
    return lam(
        ["R", "S", "c", "n"],
        app(Var("R"), Var("c"), app(Var("S"), Var("c"), Var("n"))),
    )


def difference_term(k: int) -> Term:
    """``Difference_k`` (Appendix):

        λR. λS. λc. λn. R (λx̄. λT. Member_k x̄ S T (c x̄ T)) n
    """
    xs = _tuple_vars("x", k)
    x_vars = [Var(x) for x in xs]
    keep = app(Var("c"), *x_vars, Var("T"))
    loop = lam(
        xs + ["T"],
        app(member_term(k), *x_vars, Var("S"), Var("T"), keep),
    )
    return lam(["R", "S", "c", "n"], app(Var("R"), loop, Var("n")))


def product_term(k: int, width: int) -> Term:
    """``Product_{k,l}`` (Appendix): Cartesian product by nested iteration:

        λR. λS. λc. λn. R (λx̄. λT. S (λȳ. λU. c x̄ ȳ U) T) n
    """
    xs = _tuple_vars("x", k)
    ys = _tuple_vars("y", width)
    inner = lam(
        ys + ["U"],
        app(
            Var("c"),
            *[Var(x) for x in xs],
            *[Var(y) for y in ys],
            Var("U"),
        ),
    )
    outer = lam(xs + ["T"], app(Var("S"), inner, Var("T")))
    return lam(["R", "S", "c", "n"], app(Var("R"), outer, Var("n")))


def project_term(k: int, columns: Sequence[int]) -> Term:
    """``Project_{k -> columns}`` (Appendix): generalized projection
    (columns may repeat and reorder; 0-based):

        λR. λc. λn. R (λx̄. λT. c x_{i1} ... x_{ip} T) n
    """
    for column in columns:
        if not 0 <= column < k:
            raise QueryTermError(
                f"projection column {column} out of range for arity {k}"
            )
    xs = _tuple_vars("x", k)
    loop = lam(
        xs + ["T"],
        app(Var("c"), *[Var(xs[i]) for i in columns], Var("T")),
    )
    return lam(["R", "c", "n"], app(Var("R"), loop, Var("n")))


def select_term(k: int, condition: Condition) -> Term:
    """``Select_{k, cond}`` (Appendix): selection by a boolean combination
    of column equalities, compiled into nested ``Eq`` branches:

        λR. λc. λn. R (λx̄. λT. [cond](c x̄ T, T)) n
    """
    xs = _tuple_vars("x", k)
    x_vars = [Var(x) for x in xs]
    keep = app(Var("c"), *x_vars, Var("T"))
    body = compile_condition(condition, x_vars, keep, Var("T"))
    loop = lam(xs + ["T"], body)
    return lam(["R", "c", "n"], app(Var("R"), loop, Var("n")))


def compile_condition(
    condition: Condition,
    columns: Sequence[Term],
    then_term: Term,
    else_term: Term,
) -> Term:
    """Compile a selection condition into an ``Eq``-branching term that
    reduces to ``then_term`` when the condition holds of the tuple bound to
    ``columns`` and to ``else_term`` otherwise.

    Conjunction, disjunction, and negation are compiled by branch chaining
    (no Church-boolean intermediates), so the result stays within the
    shapes Lemma 5.6 allows for type-``g`` subterms.
    """
    if isinstance(condition, CondTrue):
        return then_term
    if isinstance(condition, ColumnEqualsColumn):
        return app(
            EqConst(),
            columns[condition.left],
            columns[condition.right],
            then_term,
            else_term,
        )
    if isinstance(condition, ColumnEqualsConst):
        return app(
            EqConst(),
            columns[condition.column],
            Const(condition.constant),
            then_term,
            else_term,
        )
    if isinstance(condition, CondAnd):
        inner = compile_condition(
            condition.right, columns, then_term, else_term
        )
        return compile_condition(condition.left, columns, inner, else_term)
    if isinstance(condition, CondOr):
        inner = compile_condition(
            condition.right, columns, then_term, else_term
        )
        return compile_condition(condition.left, columns, then_term, inner)
    if isinstance(condition, CondNot):
        return compile_condition(
            condition.inner, columns, else_term, then_term
        )
    raise TypeError(f"not a condition: {condition!r}")


def distinct_projection_term(k: int, column: int) -> Term:
    """Single-column projection emitting each value once (Appendix style).

    A plain projection ``π_i R`` emits one copy of ``x_i`` per row, so the
    active-domain list would grow with the relation, and products over it
    square the waste.  This variant emits ``y_i`` only from the *first* row
    (in R's list order) that carries that value in column ``i``:

        λR. λc. λn.
          R (λȳ. λT.
              R (λz̄. λA.
                  Eq z_i y_i
                     (Equal_k z̄ ȳ A (Order_k z̄ ȳ R T A))
                     A)
                (c y_i T)) n

    The inner fold starts from "keep" (``c y_i T``) and flips to "skip"
    (``T``) exactly when some row with the same column value strictly
    precedes ``ȳ``; inputs are duplicate-free encodings (Definition 3.1),
    so Order_k's first-match semantics is the list order.
    """
    if not 0 <= column < k:
        raise QueryTermError(
            f"projection column {column} out of range for arity {k}"
        )
    ys = _tuple_vars("y", k)
    zs = _tuple_vars("z", k)
    y_vars = [Var(y) for y in ys]
    z_vars = [Var(z) for z in zs]
    keep = app(Var("c"), y_vars[column], Var("T"))
    skip = Var("T")
    strict_then_skip = app(
        equal_term(k),
        *z_vars,
        *y_vars,
        Var("A"),
        app(order_term(k), *z_vars, *y_vars, Var("R"), skip, Var("A")),
    )
    inner_body = app(
        EqConst(), z_vars[column], y_vars[column], strict_then_skip, Var("A")
    )
    inner = lam(zs + ["A"], inner_body)
    outer = lam(ys + ["T"], app(Var("R"), inner, keep))
    return lam(["R", "c", "n"], app(Var("R"), outer, Var("n")))


def distinct_union_term(k: int) -> Term:
    """Union that avoids re-listing tuples of R already present in S:

        λR. λS. λc. λn. R (λx̄. λT. Member_k x̄ S T (c x̄ T)) (S c n)

    The output is ``(R minus S)`` followed by ``S`` — the same set as
    ``Union_k``, with duplicates across the two inputs suppressed.
    """
    xs = _tuple_vars("x", k)
    x_vars = [Var(x) for x in xs]
    keep = app(Var("c"), *x_vars, Var("T"))
    loop = lam(
        xs + ["T"],
        app(member_term(k), *x_vars, Var("S"), Var("T"), keep),
    )
    return lam(
        ["R", "S", "c", "n"],
        app(Var("R"), loop, app(Var("S"), Var("c"), Var("n"))),
    )


def empty_relation_term() -> Term:
    """The encoding of the empty relation: ``λc. λn. n``."""
    return lam(["c", "n"], Var("n"))


def precedes_relation_term(k: int) -> Term:
    """The strict list-order relation of an input (Section 5.2's interpreted
    ``Precedes`` predicate, computable in TLI=0 because encodings order
    their tuples):

        λR. λc. λn.
          R (λx̄. λT.
              R (λȳ. λU.
                  Equal_k x̄ ȳ U (Order_k x̄ ȳ R (c x̄ ȳ U) U)) T) n

    Produces the 2k-ary relation {(x̄, ȳ) : x̄ strictly before ȳ in R}.
    """
    xs = _tuple_vars("x", k)
    ys = _tuple_vars("y", k)
    x_vars = [Var(x) for x in xs]
    y_vars = [Var(y) for y in ys]
    keep = app(Var("c"), *x_vars, *y_vars, Var("U"))
    strict = app(
        order_term(k), *x_vars, *y_vars, Var("R"), keep, Var("U")
    )
    inner = lam(
        ys + ["U"],
        app(equal_term(k), *x_vars, *y_vars, Var("U"), strict),
    )
    outer = lam(xs + ["T"], app(Var("R"), inner, Var("T")))
    return lam(["R", "c", "n"], app(Var("R"), outer, Var("n")))
