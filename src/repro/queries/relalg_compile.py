"""Compiling relational algebra into TLI=0 query terms (Theorem 4.1).

"These encodings, together with Codd's equivalence theorem for relational
algebra and calculus, establish ... every FO-query, over list-represented
databases, is a TLI=0 (MLI=0) query."

:func:`compile_ra` maps an RA expression to an *open* term over the
relation variables; :func:`build_ra_query` closes it into the query shape
``λR1 ... λRl. M`` of Definition 3.7.  The derived bases (active domain,
tuple order) compile to the Section 4 terms that compute them from the
inputs.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.db.relations import Database
from repro.errors import QueryTermError, SchemaError
from repro.lam.terms import Term, Var, app, lam
from repro.queries import operators as ops
from repro.relalg.ast import (
    ADOM_NAME,
    PRECEDES_PREFIX,
    Base,
    Difference,
    Intersection,
    Product,
    Project,
    RAExpr,
    Select,
    Union,
    schema_with_derived,
)


def compile_ra(
    expr: RAExpr,
    schema: Mapping[str, int],
    variables: Optional[Mapping[str, Term]] = None,
) -> Term:
    """Compile ``expr`` to a term open in the relation variables.

    ``schema`` maps input names to arities; ``variables`` maps input names
    to the terms standing for them (default: same-named variables).
    """
    full_schema = schema_with_derived(schema)
    expr.arity(full_schema)  # arity-check everything up front

    def var_of(name: str) -> Term:
        if variables is not None:
            if name not in variables:
                raise QueryTermError(f"no variable for relation {name!r}")
            return variables[name]
        return Var(name)

    def go(node: RAExpr) -> Term:
        if isinstance(node, Base):
            if node.name == ADOM_NAME:
                return active_domain_expr_term(schema, var_of)
            if node.name.startswith(PRECEDES_PREFIX):
                base_name = node.name[len(PRECEDES_PREFIX):]
                if base_name not in schema:
                    raise SchemaError(f"unknown relation {base_name!r}")
                return app(
                    ops.precedes_relation_term(schema[base_name]),
                    var_of(base_name),
                )
            return var_of(node.name)
        if isinstance(node, Union):
            arity = node.left.arity(full_schema)
            return app(ops.union_term(arity), go(node.left), go(node.right))
        if isinstance(node, Intersection):
            arity = node.left.arity(full_schema)
            return app(
                ops.intersection_term(arity), go(node.left), go(node.right)
            )
        if isinstance(node, Difference):
            arity = node.left.arity(full_schema)
            return app(
                ops.difference_term(arity), go(node.left), go(node.right)
            )
        if isinstance(node, Product):
            left_arity = node.left.arity(full_schema)
            right_arity = node.right.arity(full_schema)
            return app(
                ops.product_term(left_arity, right_arity),
                go(node.left),
                go(node.right),
            )
        if isinstance(node, Project):
            inner_arity = node.inner.arity(full_schema)
            return app(
                ops.project_term(inner_arity, node.columns), go(node.inner)
            )
        if isinstance(node, Select):
            inner_arity = node.inner.arity(full_schema)
            return app(
                ops.select_term(inner_arity, node.condition), go(node.inner)
            )
        raise TypeError(f"not an RA expression: {node!r}")

    return go(expr)


def active_domain_expr_term(
    schema: Mapping[str, int], var_of, distinct: bool = True
) -> Term:
    """The term computing the active domain ``D`` from the inputs: the
    union of all single-column projections of all input relations
    (Section 4: "computed by a sequence of projections and unions").

    With ``distinct=True`` (default) the duplicate-suppressing operator
    variants are used, so the computed list has one entry per domain
    constant — FuncToList iterates over powers of this list, and duplicate
    entries would multiply its (still polynomial) cost by |r|^k factors.
    The distinct variants branch on ``Eq`` and therefore require an
    order-0 accumulator; callers iterating the domain at a higher-order
    accumulator (the Crank) must pass ``distinct=False``.
    """
    if distinct:
        projection = ops.distinct_projection_term
        union = ops.distinct_union_term
    else:
        def projection(arity, column):
            return ops.project_term(arity, [column])

        union = ops.union_term
    pieces = []
    for name in schema:
        arity = schema[name]
        for column in range(arity):
            pieces.append(app(projection(arity, column), var_of(name)))
    if not pieces:
        return ops.empty_relation_term()
    result = pieces[0]
    for piece in pieces[1:]:
        result = app(union(1), piece, result)
    return result


def build_ra_query(
    expr: RAExpr,
    input_names: Sequence[str],
    schema: Mapping[str, int],
) -> Term:
    """Close the compilation into a query term ``λR1 ... λRl. M``
    (Definition 3.7), with one binder per input in the given order."""
    for name in input_names:
        if name not in schema:
            raise SchemaError(f"input {name!r} missing from schema")
    body = compile_ra(expr, {n: schema[n] for n in input_names})
    return lam(list(input_names), body)


def schema_of(database: Database) -> Dict[str, int]:
    """Convenience: the schema of a database (name -> arity)."""
    return {name: relation.arity for name, relation in database}
