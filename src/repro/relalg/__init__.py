"""Relational algebra: shared AST and the baseline in-memory engine (S15).

The same AST is consumed by two independent implementations:

* :mod:`repro.relalg.engine` — a direct Python evaluator over
  :class:`repro.db.Relation` values (the baseline);
* :mod:`repro.queries.relalg_compile` — the compiler into TLI=0 lambda
  terms (Theorem 4.1).

Agreement of the two on random databases is the executable content of the
Theorem 4.1 benchmarks and tests.
"""

from repro.relalg.ast import (
    Base,
    ColumnEqualsColumn,
    ColumnEqualsConst,
    CondAnd,
    CondNot,
    CondOr,
    CondTrue,
    Difference,
    Intersection,
    Product,
    Project,
    RAExpr,
    Select,
    Union,
)
from repro.relalg.engine import evaluate_ra

__all__ = [
    "Base",
    "ColumnEqualsColumn",
    "ColumnEqualsConst",
    "CondAnd",
    "CondNot",
    "CondOr",
    "CondTrue",
    "Difference",
    "Intersection",
    "Product",
    "Project",
    "RAExpr",
    "Select",
    "Union",
    "evaluate_ra",
]
