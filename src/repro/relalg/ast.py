"""Relational algebra AST (positional columns, unnamed perspective).

Expressions are arity-checked against a schema before use; arities propagate
bottom-up.  Selection conditions are boolean combinations of column/column
and column/constant equalities — exactly what the TLI=0 operator library of
Section 4 can express with ``Eq``.

Two *derived* base relations are available beyond the schema:

* ``adom()`` — the unary active-domain relation ``D`` (Section 3.1);
* ``precedes(name)`` — the 2k-ary tuple-order relation of input ``name``
  (the interpreted ``Precedes_i`` predicate of Section 5.2, available to
  queries because databases are list-represented).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Tuple

from repro.errors import SchemaError

ADOM_NAME = "__adom__"
PRECEDES_PREFIX = "__precedes__"


# ---------------------------------------------------------------------------
# Selection conditions
# ---------------------------------------------------------------------------

class Condition:
    """Base class of selection conditions."""

    __slots__ = ()

    def __and__(self, other: "Condition") -> "Condition":
        return CondAnd(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return CondOr(self, other)

    def __invert__(self) -> "Condition":
        return CondNot(self)


@dataclass(frozen=True, slots=True)
class CondTrue(Condition):
    """The always-true condition."""


@dataclass(frozen=True, slots=True)
class ColumnEqualsColumn(Condition):
    """``#left = #right`` (0-based column indices)."""

    left: int
    right: int


@dataclass(frozen=True, slots=True)
class ColumnEqualsConst(Condition):
    """``#column = constant``."""

    column: int
    constant: str


@dataclass(frozen=True, slots=True)
class CondAnd(Condition):
    left: Condition
    right: Condition


@dataclass(frozen=True, slots=True)
class CondOr(Condition):
    left: Condition
    right: Condition


@dataclass(frozen=True, slots=True)
class CondNot(Condition):
    inner: Condition


def condition_columns(condition: Condition) -> Tuple[int, ...]:
    """All column indices mentioned by ``condition``."""
    if isinstance(condition, ColumnEqualsColumn):
        return (condition.left, condition.right)
    if isinstance(condition, ColumnEqualsConst):
        return (condition.column,)
    if isinstance(condition, (CondAnd, CondOr)):
        return condition_columns(condition.left) + condition_columns(
            condition.right
        )
    if isinstance(condition, CondNot):
        return condition_columns(condition.inner)
    if isinstance(condition, CondTrue):
        return ()
    raise TypeError(f"not a condition: {condition!r}")


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class RAExpr:
    """Base class of relational algebra expressions."""

    __slots__ = ()

    def arity(self, schema: Mapping[str, int]) -> int:
        """The output arity under ``schema`` (relation name -> arity).

        Raises :class:`SchemaError` on arity mismatches anywhere inside.
        """
        raise NotImplementedError

    # Fluent constructors --------------------------------------------------

    def union(self, other: "RAExpr") -> "RAExpr":
        return Union(self, other)

    def intersect(self, other: "RAExpr") -> "RAExpr":
        return Intersection(self, other)

    def minus(self, other: "RAExpr") -> "RAExpr":
        return Difference(self, other)

    def times(self, other: "RAExpr") -> "RAExpr":
        return Product(self, other)

    def project(self, *columns: int) -> "RAExpr":
        return Project(self, tuple(columns))

    def where(self, condition: Condition) -> "RAExpr":
        return Select(self, condition)


@dataclass(frozen=True, slots=True)
class Base(RAExpr):
    """A base relation reference (input relation, adom, or precedes)."""

    name: str

    def arity(self, schema: Mapping[str, int]) -> int:
        if self.name not in schema:
            raise SchemaError(f"unknown relation {self.name!r}")
        return schema[self.name]


def adom() -> Base:
    """The unary active-domain base relation."""
    return Base(ADOM_NAME)


def precedes(name: str) -> Base:
    """The 2k-ary list-order relation of input ``name``: contains
    ``(s̄, t̄)`` iff both tuples are in the input and ``s̄`` strictly
    precedes ``t̄`` in its list order."""
    return Base(PRECEDES_PREFIX + name)


def schema_with_derived(schema: Mapping[str, int]) -> dict:
    """Extend a schema with the derived adom / precedes relations."""
    extended = dict(schema)
    extended[ADOM_NAME] = 1
    for name, arity in schema.items():
        if not name.startswith("__"):
            extended[PRECEDES_PREFIX + name] = 2 * arity
    return extended


@dataclass(frozen=True, slots=True)
class Union(RAExpr):
    left: RAExpr
    right: RAExpr

    def arity(self, schema: Mapping[str, int]) -> int:
        return _same_arity(self.left, self.right, schema, "union")


@dataclass(frozen=True, slots=True)
class Intersection(RAExpr):
    left: RAExpr
    right: RAExpr

    def arity(self, schema: Mapping[str, int]) -> int:
        return _same_arity(self.left, self.right, schema, "intersection")


@dataclass(frozen=True, slots=True)
class Difference(RAExpr):
    left: RAExpr
    right: RAExpr

    def arity(self, schema: Mapping[str, int]) -> int:
        return _same_arity(self.left, self.right, schema, "difference")


@dataclass(frozen=True, slots=True)
class Product(RAExpr):
    """Cartesian product; output columns are left's then right's."""

    left: RAExpr
    right: RAExpr

    def arity(self, schema: Mapping[str, int]) -> int:
        return self.left.arity(schema) + self.right.arity(schema)


@dataclass(frozen=True, slots=True)
class Project(RAExpr):
    """Generalized projection: ``columns`` may repeat and reorder."""

    inner: RAExpr
    columns: Tuple[int, ...]

    def arity(self, schema: Mapping[str, int]) -> int:
        inner_arity = self.inner.arity(schema)
        for column in self.columns:
            if not 0 <= column < inner_arity:
                raise SchemaError(
                    f"projection column {column} out of range "
                    f"(inner arity {inner_arity})"
                )
        return len(self.columns)


@dataclass(frozen=True, slots=True)
class Select(RAExpr):
    inner: RAExpr
    condition: Condition

    def arity(self, schema: Mapping[str, int]) -> int:
        inner_arity = self.inner.arity(schema)
        for column in condition_columns(self.condition):
            if not 0 <= column < inner_arity:
                raise SchemaError(
                    f"selection column {column} out of range "
                    f"(inner arity {inner_arity})"
                )
        return inner_arity


def _same_arity(
    left: RAExpr, right: RAExpr, schema: Mapping[str, int], what: str
) -> int:
    left_arity = left.arity(schema)
    right_arity = right.arity(schema)
    if left_arity != right_arity:
        raise SchemaError(
            f"{what} of arities {left_arity} and {right_arity}"
        )
    return left_arity


def join(
    left: RAExpr,
    right: RAExpr,
    pairs: Sequence[Tuple[int, int]],
    schema: Mapping[str, int],
) -> RAExpr:
    """Equi-join as product + selection (columns of ``right`` are shifted
    by ``left``'s arity); a convenience used by the FO compiler."""
    offset = left.arity(schema)
    condition: Condition = CondTrue()
    for left_col, right_col in pairs:
        atom = ColumnEqualsColumn(left_col, offset + right_col)
        condition = (
            atom if isinstance(condition, CondTrue) else CondAnd(condition, atom)
        )
    return Select(Product(left, right), condition)
