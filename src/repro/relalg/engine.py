"""Baseline relational algebra engine over list-represented relations.

Evaluates :mod:`repro.relalg.ast` expressions directly on
:class:`repro.db.Relation` values.  Output order is deterministic: every
operator preserves the left-to-right, first-occurrence order of its inputs,
which makes golden tests possible; set-level agreement with the lambda
pipeline is what the theorem tests assert.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.db.relations import Database, Relation
from repro.errors import SchemaError
from repro.relalg.ast import (
    ADOM_NAME,
    PRECEDES_PREFIX,
    Base,
    ColumnEqualsColumn,
    ColumnEqualsConst,
    CondAnd,
    CondNot,
    CondOr,
    CondTrue,
    Condition,
    Difference,
    Intersection,
    Product,
    Project,
    RAExpr,
    Select,
    Union,
)


def database_schema(database: Database) -> Dict[str, int]:
    """The schema (name -> arity) of a database."""
    return {name: relation.arity for name, relation in database}


def derived_relation(database: Database, name: str) -> Relation:
    """Materialize a derived base relation (adom or precedes)."""
    if name == ADOM_NAME:
        return Relation.unary(database.active_domain())
    if name.startswith(PRECEDES_PREFIX):
        base_name = name[len(PRECEDES_PREFIX):]
        base = database[base_name]
        rows = [
            left + right
            for index, left in enumerate(base.tuples)
            for right in base.tuples[index + 1:]
        ]
        return Relation.from_tuples(2 * base.arity, rows)
    raise SchemaError(f"unknown derived relation {name!r}")


def evaluate_ra(expr: RAExpr, database: Database) -> Relation:
    """Evaluate ``expr`` over ``database``.

    Arity errors raise :class:`SchemaError` before any tuple is touched.
    """
    schema = database_schema(database)
    from repro.relalg.ast import schema_with_derived

    expr.arity(schema_with_derived(schema))
    return _eval(expr, database, schema)


def _eval(
    expr: RAExpr, database: Database, schema: Mapping[str, int]
) -> Relation:
    if isinstance(expr, Base):
        if expr.name in schema:
            return database[expr.name]
        return derived_relation(database, expr.name)
    if isinstance(expr, Union):
        left = _eval(expr.left, database, schema)
        right = _eval(expr.right, database, schema)
        return Relation.deduplicated(
            left.arity, list(left.tuples) + list(right.tuples)
        )
    if isinstance(expr, Intersection):
        left = _eval(expr.left, database, schema)
        right_set = _eval(expr.right, database, schema).as_set()
        return Relation.from_tuples(
            left.arity, [row for row in left.tuples if row in right_set]
        )
    if isinstance(expr, Difference):
        left = _eval(expr.left, database, schema)
        right_set = _eval(expr.right, database, schema).as_set()
        return Relation.from_tuples(
            left.arity, [row for row in left.tuples if row not in right_set]
        )
    if isinstance(expr, Product):
        left = _eval(expr.left, database, schema)
        right = _eval(expr.right, database, schema)
        return Relation.from_tuples(
            left.arity + right.arity,
            [a + b for a in left.tuples for b in right.tuples],
        )
    if isinstance(expr, Project):
        inner = _eval(expr.inner, database, schema)
        return Relation.deduplicated(
            len(expr.columns),
            [
                tuple(row[column] for column in expr.columns)
                for row in inner.tuples
            ],
        )
    if isinstance(expr, Select):
        inner = _eval(expr.inner, database, schema)
        return Relation.from_tuples(
            inner.arity,
            [
                row
                for row in inner.tuples
                if _test(expr.condition, row)
            ],
        )
    raise TypeError(f"not an RA expression: {expr!r}")


def _test(condition: Condition, row) -> bool:
    if isinstance(condition, CondTrue):
        return True
    if isinstance(condition, ColumnEqualsColumn):
        return row[condition.left] == row[condition.right]
    if isinstance(condition, ColumnEqualsConst):
        return row[condition.column] == condition.constant
    if isinstance(condition, CondAnd):
        return _test(condition.left, row) and _test(condition.right, row)
    if isinstance(condition, CondOr):
        return _test(condition.left, row) or _test(condition.right, row)
    if isinstance(condition, CondNot):
        return not _test(condition.inner, row)
    raise TypeError(f"not a condition: {condition!r}")
