"""The in-process query service runtime (catalog, caching, batching).

The paper's central move — queries are *terms* applied to *encoded
databases* (Definition 3.10) — makes a serving layer unusually clean:

* the encoding of a database is a value, computable once per database
  version (:mod:`repro.service.catalog`);
* a query's normal form is a pure function of (query term, database
  version), so results are perfectly cacheable under a structural term
  digest (:mod:`repro.service.cache`, :func:`repro.lam.terms.digest`);
* evaluation of independent requests commutes, so batches fan out over a
  thread pool with per-request fuel/depth budgets
  (:mod:`repro.service.runtime`).

Public API::

    from repro.service import Catalog, QueryRequest, QueryService

    service = QueryService()
    service.catalog.register_database("main", database)
    service.catalog.register_query("tc", transitive_closure_query())
    result = service.execute_batch([
        QueryRequest(query="tc", database="main"), ...
    ])
"""

from repro.service.cache import CachedResult, CacheStats, ResultCache
from repro.service.catalog import Catalog, DatabaseEntry, QueryEntry
from repro.service.engines import (
    ENGINES,
    EngineResult,
    evaluate_term_query,
    validate_engine,
)
from repro.service.runtime import (
    BatchResult,
    QueryRequest,
    QueryResponse,
    QueryService,
)
from repro.shard.policy import ShardPolicy

__all__ = [
    "BatchResult",
    "ShardPolicy",
    "CachedResult",
    "CacheStats",
    "Catalog",
    "DatabaseEntry",
    "ENGINES",
    "EngineResult",
    "QueryEntry",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "ResultCache",
    "evaluate_term_query",
    "validate_engine",
]
