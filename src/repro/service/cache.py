"""The plan/result cache: normal forms keyed by structural digests.

A query's normal form is a pure function of the query term and the encoded
database (strong normalization + Church-Rosser, Properties 1-2 of
Section 2.1), so caching is sound with a key of

    (query digest, database name, version key, engine)

where the query digest is the alpha-invariant content digest of
:func:`repro.lam.terms.digest`.  The *version key* comes in two shapes:

* a plain ``int`` — the database's global version (legacy whole-version
  keying, still used for plans without a provenance certificate);
* a tuple of ``(relation_name, relation_version)`` pairs — the plan's
  read-set **sub-vector** of the catalog's per-relation version vector.
  The result is a pure function of the relations the plan reads
  (TLI023), so the key stays valid across updates that bump only other
  relations — those hits are counted as ``provenance_saves``.  The
  wildcard pair ``("*", global_version)`` marks a non-exact read-set
  (TLI027): any relation bump invalidates it, i.e. exactly the legacy
  behavior.

Only *successful* evaluations are cached — a ``FuelExhausted`` under one
budget says nothing about larger budgets — so fuel and depth budgets are
deliberately not part of the key: any budget that reached the normal form
reached *the* normal form.

The cache is a bounded LRU, safe for concurrent use by the batch executor.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple, Union

from repro.db.decode import DecodedRelation
from repro.db.relations import Relation
from repro.lam.terms import Term

#: Either the database's global version or the read-set's
#: ``((relation_name, relation_version), ...)`` sub-vector (sorted;
#: ``("*", v)`` is the conservative wildcard).
VersionKey = Union[int, Tuple[Tuple[str, int], ...]]

#: (query digest, database key, version key, engine)
CacheKey = Tuple[str, str, VersionKey, str]

#: The wildcard relation name in a sub-vector version key.
WILDCARD = "*"


@dataclass(frozen=True)
class CachedResult:
    """A memoized evaluation outcome (always a success)."""

    relation: Relation
    decoded: DecodedRelation
    normal_form: Term
    engine: str
    steps: Optional[int]
    stages: Optional[int]
    compute_wall_ms: float
    #: The fuel budget the computing request ran under (None for engines
    #: that take no fuel); informational on later hits.
    fuel_budget: Optional[int] = None
    #: The computing request's reduction profile (step breakdown plus the
    #: static-bound comparison); replayed verbatim on later hits.
    profile: Optional[dict] = None
    #: The database's *global* version when the result was computed; a hit
    #: at a higher global version is a provenance save (the read-set key
    #: survived an update to relations the plan never scans).
    database_version: Optional[int] = None


@dataclass
class CacheStats:
    """Counters surfaced on every service response.

    ``inflight_waits`` counts requests that blocked behind an identical
    in-flight evaluation (single-flight sharing): those requests never
    performed an independent evaluation, and their subsequent lookup is a
    hit against the entry the leader populated.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    inflight_waits: int = 0
    #: Hits served from a read-set-keyed entry *after* the database's
    #: global version moved on — reuse the legacy whole-version
    #: invalidation would have destroyed.
    provenance_saves: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def hit_rate(self) -> float:
        """``hits / (hits + misses)`` over *lookups only*.

        Evictions and invalidations are bookkeeping, not lookups, so they
        do not dilute the rate: dropping a database's entries (or the
        LRU shedding cold ones) leaves the hit rate exactly where the
        lookup history put it.
        """
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "inflight_waits": self.inflight_waits,
            "provenance_saves": self.provenance_saves,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": round(self.hit_rate, 4),
        }


class ResultCache:
    """Thread-safe bounded LRU from :data:`CacheKey` to
    :class:`CachedResult`."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self._capacity = capacity
        self._data: "OrderedDict[CacheKey, CachedResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._inflight_waits = 0
        self._provenance_saves = 0

    def get(self, key: CacheKey) -> Optional[CachedResult]:
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._data.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: CacheKey, value: CachedResult) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self._capacity:
                self._data.popitem(last=False)
                self._evictions += 1

    def invalidate_database(self, database_key: str) -> int:
        """Drop every entry for ``database_key`` (all versions); returns the
        number of entries dropped.  Version bumps already make stale keys
        unreachable — this eagerly frees their memory."""
        with self._lock:
            stale = [k for k in self._data if k[1] == database_key]
            for k in stale:
                del self._data[k]
            self._invalidations += len(stale)
            return len(stale)

    def invalidate_relations(
        self, database_key: str, names: Iterable[str]
    ) -> int:
        """Relation-granular invalidation: drop the entries for
        ``database_key`` whose version key depends on a relation in
        ``names``.

        Three key shapes are affected: legacy ``int`` version keys (the
        plan has no read-set — the global version moved, so they are
        unreachable anyway; drop them eagerly), wildcard sub-vectors
        (TLI027 conservative top — depends on everything), and
        sub-vectors naming a touched relation.  Sub-vectors over disjoint
        relations *survive*: the result provably cannot have changed.
        Returns the number of entries dropped.
        """
        touched = set(names)
        with self._lock:
            stale = []
            for key in self._data:
                if key[1] != database_key:
                    continue
                version_key = key[2]
                if isinstance(version_key, int):
                    stale.append(key)
                elif any(
                    rel == WILDCARD or rel in touched
                    for rel, _ in version_key
                ):
                    stale.append(key)
            for key in stale:
                del self._data[key]
            self._invalidations += len(stale)
            return len(stale)

    def count_inflight_wait(self) -> None:
        """Record one request that waited behind an identical in-flight
        evaluation (called by the runtime's single-flight path)."""
        with self._lock:
            self._inflight_waits += 1

    def count_provenance_save(self) -> None:
        """Record one hit served across a global version bump thanks to
        read-set keying (called by the runtime's hit path)."""
        with self._lock:
            self._provenance_saves += 1

    def clear(self) -> None:
        with self._lock:
            self._invalidations += len(self._data)
            self._data.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                inflight_waits=self._inflight_waits,
                provenance_saves=self._provenance_saves,
                size=len(self._data),
                capacity=self._capacity,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)
