"""The service catalog: named databases and named query plans.

Registration is where the one-time work happens, so requests don't repeat
it:

* **Databases** are encoded once (Definition 3.1) at registration; the
  encoded terms are shared by every request until the next
  :meth:`Catalog.update_database`, which bumps the entry's version (the
  cache key component) and reports the stale name for eager invalidation.
* **Query terms** are type-checked and order-checked once (Lemma 3.9 via
  :func:`repro.queries.language.recognize_tli` when an arity signature is
  supplied, plain principal-type reconstruction otherwise), hash-consed,
  and digested.  Registration fails fast on ill-typed or wrong-order
  terms — a request can never hit an unchecked plan.
* **Engine auto-selection**: a checked term plan is compiled once by
  :mod:`repro.compile`; when it lowers cleanly to relational algebra the
  entry defaults to the set-backed ``"ra"`` engine (TLI028), otherwise to
  ``"nbe"`` with a TLI029 diagnostic naming the fallback reason.  A
  :class:`repro.queries.fixpoint.FixpointQuery` spec is a TLI=1 fixpoint
  tower and runs on the Theorem 5.2 PTIME stage evaluator
  (``"fixpoint"``) — naive normalization of those towers is exponential
  (Section 5), so the spec form is the one to register; ``engine="ra"``
  opts the spec into the set-based fixpoint runner.  An explicit
  ``engine=`` always overrides the choice.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.analysis.analyzer import analyze_fixpoint, analyze_term
from repro.analysis.cost import CostProfile, DatabaseStats
from repro.analysis.diagnostics import AnalysisReport, Severity
from repro.analysis.provenance import (
    ProvenanceFacts,
    check_schema_contract,
    database_schema,
)
from repro.compile import (
    CompileDecision,
    compile_decision,
    decision_for_fixpoint,
)
from repro.db.encode import encode_relation
from repro.db.relations import Database, Relation
from repro.errors import EvaluationError, SchemaError
from repro.lam.terms import Term, digest, intern_term
from repro.queries.fixpoint import FixpointQuery, build_fixpoint_query
from repro.queries.language import QueryArity, recognize_tli
from repro.service.engines import FIXPOINT_ENGINE, validate_engine

QuerySpec = Union[Term, FixpointQuery]


def database_digest(database: Database) -> str:
    """A content digest of a list-represented database (names, arities, and
    tuple lists in list order — Definition 3.4 equality).

    Every variable-length field (relation name, tuple component) is
    length-prefixed, so the serialization is injective: constants that
    happen to contain separator bytes cannot shift a boundary and collide
    with a differently-split database.  The arity and row count are framed
    in too, making each relation's byte region self-delimiting.
    """
    hasher = hashlib.sha256()
    for name, relation in database:
        encoded_name = name.encode()
        hasher.update(b"R%d:%s;%d;%d;" % (
            len(encoded_name),
            encoded_name,
            relation.arity,
            len(relation.tuples),
        ))
        for row in relation.tuples:
            for value in row:
                encoded = value.encode()
                hasher.update(b"%d:%s," % (len(encoded), encoded))
            hasher.update(b".")
    return hasher.hexdigest()


@dataclass(frozen=True)
class DatabaseEntry:
    """A registered database: the value plus its one-time encoding."""

    name: str
    database: Database
    encoded: Tuple[Term, ...]
    version: int
    digest: str
    #: Size statistics the static cost polynomials range over; computed at
    #: registration so per-request fuel derivation is O(1).
    stats: Optional[DatabaseStats] = None
    #: Per-relation version vector, ``((relation_name, version), ...)`` in
    #: schema order.  An update bumps only the relations it touched, so a
    #: cache key built from a plan's read-set sub-vector survives updates
    #: to relations the plan never scans.
    versions: Tuple[Tuple[str, int], ...] = ()

    @property
    def schema(self) -> Dict[str, int]:
        return {name: rel.arity for name, rel in self.database}

    def relation_version(self, name: str) -> int:
        for candidate, version in self.versions:
            if candidate == name:
                return version
        return self.version

    def summary(self) -> dict:
        return {
            "name": self.name,
            "version": self.version,
            "digest": self.digest[:12],
            "relations": {
                name: len(rel) for name, rel in self.database
            },
            "relation_versions": dict(self.versions),
            "active_domain": len(self.database.active_domain()),
        }


@dataclass(frozen=True)
class QueryEntry:
    """A registered query plan.

    ``kind`` is ``"term"`` or ``"fixpoint"``; ``term`` is the (interned)
    query term for term plans and the compiled Theorem 4.2 tower for
    fixpoint plans (kept for digesting and reference cross-checks);
    ``order`` is the derivation order found at registration when a
    signature was checked (``i + 3`` for TLI=i, Definition 3.7);
    ``report`` is the static analyzer's full report (absent only with
    ``check=False``), whose cost profile seeds per-request fuel budgets.
    """

    name: str
    kind: str
    term: Term
    engine: str
    digest: str
    fixpoint: Optional[FixpointQuery] = None
    signature: Optional[QueryArity] = None
    order: Optional[int] = None
    report: Optional[AnalysisReport] = None
    #: The simplifier's output when it rewrote the plan (the runtime
    #: evaluates this; ``term`` and ``digest`` stay on the original for
    #: cache continuity and reference cross-checks).
    simplified: Optional[Term] = None
    #: The compiler's decision record (TLI028/TLI029): whether the plan
    #: lowers to relational algebra, the operator chain when it does, and
    #: the fallback-taxonomy reason when it doesn't.
    compiled: Optional[CompileDecision] = None

    @property
    def output_arity(self) -> Optional[int]:
        if self.fixpoint is not None:
            return self.fixpoint.output_arity
        if self.signature is not None:
            return self.signature.output
        return None

    @property
    def cost(self) -> Optional[CostProfile]:
        return self.report.cost if self.report is not None else None

    @property
    def effective_cost(self) -> Optional[CostProfile]:
        """The absint-tightened profile when adopted, else the syntactic
        one — what fuel budgets and shard splits should use."""
        if self.report is None:
            return None
        return self.report.tightened_cost or self.report.cost

    @property
    def plan_term(self) -> Term:
        """The term the engines should evaluate (simplified when the
        simplifier changed the plan)."""
        return self.simplified if self.simplified is not None else self.term

    @property
    def provenance(self) -> Optional[ProvenanceFacts]:
        """The read-set / schema-contract certificate (TLI023)."""
        return self.report.provenance if self.report is not None else None

    def summary(self) -> dict:
        report = self.report
        return {
            "name": self.name,
            "kind": self.kind,
            "engine": self.engine,
            "digest": self.digest[:12],
            "order": self.order,
            "fragment": report.fragment if report else None,
            "signature": str(self.signature) if self.signature else None,
            "output_arity": self.output_arity,
            "cost": (
                report.cost.describe()
                if report and report.cost is not None
                else None
            ),
            "tightened_cost": (
                report.tightened_cost.describe()
                if report and report.tightened_cost is not None
                else None
            ),
            "simplified": self.simplified is not None,
            "compile": (
                self.compiled.as_dict() if self.compiled is not None else None
            ),
            "reads": (
                self.provenance.describe()
                if self.provenance is not None
                else None
            ),
            "warnings": (
                [d.format() for d in report.warnings()] if report else []
            ),
        }


class Catalog:
    """Thread-safe registry of named databases and query plans."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._databases: Dict[str, DatabaseEntry] = {}
        self._queries: Dict[str, QueryEntry] = {}
        #: Optional hook invoked with each registration's
        #: :class:`~repro.compile.CompileDecision` — the service runtime
        #: attaches its metrics recorder here (the catalog itself stays
        #: metrics-free).
        self.compile_observer: Optional[
            Callable[[CompileDecision], None]
        ] = None

    # -- databases -----------------------------------------------------------

    def register_database(
        self, name: str, database: Database
    ) -> DatabaseEntry:
        """Register (or replace) ``name``, encoding every relation once.

        Returns the new entry; replacing bumps the global version so
        cached results for the old contents can never be served.  The
        per-relation version vector is diffed against the previous
        contents: a relation that is structurally unchanged keeps its
        version (and its encoded term), so read-set-keyed cache entries
        that never scan the touched relations stay valid.
        """
        with self._lock:
            previous = self._databases.get(name)
            version = previous.version + 1 if previous else 1
            prev_relations: Dict[str, Relation] = {}
            prev_encoded: Dict[str, Term] = {}
            prev_versions: Dict[str, int] = {}
            if previous is not None:
                prev_relations = dict(previous.database.relations)
                prev_encoded = {
                    rel_name: term
                    for (rel_name, _), term in zip(
                        previous.database, previous.encoded
                    )
                }
                prev_versions = dict(previous.versions)
            encoded: List[Term] = []
            versions: List[Tuple[str, int]] = []
            for rel_name, relation in database:
                if (
                    rel_name in prev_relations
                    and prev_relations[rel_name] == relation
                ):
                    encoded.append(prev_encoded[rel_name])
                    versions.append(
                        (rel_name, prev_versions.get(rel_name, version))
                    )
                else:
                    encoded.append(encode_relation(relation))
                    versions.append((rel_name, version))
            entry = DatabaseEntry(
                name=name,
                database=database,
                encoded=tuple(encoded),
                version=version,
                digest=database_digest(database),
                stats=DatabaseStats.of(database),
                versions=tuple(versions),
            )
            self._databases[name] = entry
            return entry

    def update_database(self, name: str, database: Database) -> DatabaseEntry:
        """Replace the contents of a registered database (version bump)."""
        with self._lock:
            if name not in self._databases:
                raise SchemaError(f"database {name!r} is not registered")
            return self.register_database(name, database)

    def apply(
        self, name: str, updates: Mapping[str, Relation]
    ) -> Tuple[DatabaseEntry, Tuple[str, ...]]:
        """Apply a per-relation update to a registered database.

        ``updates`` maps relation names to their new contents (existing
        names are replaced, new names appended).  Only genuinely changed
        relations get their version bumped; the returned tuple is
        ``(new_entry, touched_names)`` where ``touched_names`` are the
        relations whose contents actually changed — what the runtime
        feeds to relation-granular cache invalidation.
        """
        with self._lock:
            if name not in self._databases:
                raise SchemaError(f"database {name!r} is not registered")
            previous = self._databases[name]
            merged = previous.database
            touched: List[str] = []
            for rel_name, relation in updates.items():
                if (
                    rel_name in previous.database
                    and previous.database[rel_name] == relation
                ):
                    continue  # no-op update: keep the version
                merged = merged.with_relation(rel_name, relation)
                touched.append(rel_name)
            entry = self.register_database(name, merged)
            return entry, tuple(touched)

    def get_database(self, name: str) -> DatabaseEntry:
        with self._lock:
            entry = self._databases.get(name)
            if entry is None:
                raise SchemaError(
                    f"database {name!r} is not registered; "
                    f"known: {sorted(self._databases)}"
                )
        return entry

    def databases(self) -> List[DatabaseEntry]:
        with self._lock:
            return list(self._databases.values())

    # -- queries -------------------------------------------------------------

    def register_query(
        self,
        name: str,
        query: QuerySpec,
        *,
        signature: Optional[QueryArity] = None,
        engine: Optional[str] = None,
        check: bool = True,
        max_order: Optional[int] = None,
    ) -> QueryEntry:
        """Register (or replace) the plan ``name``.

        ``query`` is a lambda term (optionally checked against an arity
        ``signature`` per Lemma 3.9) or a :class:`FixpointQuery` spec.
        ``engine`` overrides the auto-selection; ``max_order`` declares an
        order budget the plan must certify under (TLI007 otherwise);
        ``check=False`` skips registration-time static analysis (untyped
        experiments only).

        Checked registration runs the full static analyzer: a report with
        errors fails registration, and the report (warnings, order and
        cost certificates) is attached to the returned entry.
        """
        if isinstance(query, FixpointQuery):
            entry = self._register_fixpoint(
                name, query, engine, check, max_order
            )
        elif isinstance(query, Term):
            entry = self._register_term(
                name, query, signature, engine, check, max_order
            )
        else:
            raise EvaluationError(
                f"query {name!r} must be a Term or FixpointQuery, "
                f"got {type(query).__name__}"
            )
        self._cross_check_contract(entry)
        if entry.compiled is not None and self.compile_observer is not None:
            self.compile_observer(entry.compiled)
        with self._lock:
            self._queries[name] = entry
        return entry

    def _cross_check_contract(self, entry: QueryEntry) -> None:
        """Check the plan's schema contract against every registered
        database (TLI024/TLI025 appended to the report).

        A mismatch is a *warning* here, not an error: a catalog may hold
        databases the plan never targets.  Admission rejects the pair
        hard when a request actually combines them.
        """
        provenance = entry.provenance
        if entry.report is None or provenance is None:
            return
        for db_entry in self.databases():
            mismatches, unused = check_schema_contract(
                provenance, database_schema(db_entry.database)
            )
            for message in mismatches:
                entry.report.add(
                    "TLI024",
                    f"against database {db_entry.name!r}: {message}",
                    severity=Severity.WARNING,
                )
            for message in unused:
                entry.report.add(
                    "TLI025",
                    f"against database {db_entry.name!r}: {message}",
                )

    def _register_term(
        self,
        name: str,
        query: Term,
        signature: Optional[QueryArity],
        engine: Optional[str],
        check: bool,
        max_order: Optional[int],
    ) -> QueryEntry:
        order: Optional[int] = None
        report: Optional[AnalysisReport] = None
        if check:
            report = analyze_term(
                query, name=name, signature=signature, max_order=max_order
            )
            if not report.ok:
                # Typing and signature failures re-raise through the
                # original checkers so callers see the precise exception
                # types; analyzer-only findings fall through to the
                # generic rejection below.
                if signature is not None:
                    recognize_tli(query, signature)
                else:
                    from repro.types.infer import infer

                    infer(query)
                self._reject(name, report)
            order = report.order
        term = intern_term(query)
        simplified: Optional[Term] = None
        if report is not None and report.simplified is not None:
            simplified = intern_term(report.simplified)
        decision: Optional[CompileDecision] = None
        if report is not None and signature is not None:
            plan_term = simplified if simplified is not None else term
            decision = compile_decision(
                plan_term, signature.inputs, signature.output
            )
            if decision.compiled:
                report.add(
                    "TLI028",
                    f"plan compiles to relational algebra: "
                    f"{decision.summary}",
                )
            else:
                report.add(
                    "TLI029",
                    f"compile fallback to reduction "
                    f"({decision.reason}): {decision.summary}",
                )
        if engine:
            chosen = validate_engine(engine)
        elif decision is not None and decision.compiled:
            chosen = "ra"
        else:
            chosen = "nbe"
        return QueryEntry(
            name=name,
            kind="term",
            term=term,
            engine=chosen,
            digest=digest(term),
            signature=signature,
            order=order,
            report=report,
            simplified=simplified,
            compiled=decision,
        )

    def _register_fixpoint(
        self,
        name: str,
        query: FixpointQuery,
        engine: Optional[str],
        check: bool = True,
        max_order: Optional[int] = None,
    ) -> QueryEntry:
        report: Optional[AnalysisReport] = None
        if check:
            report = analyze_fixpoint(query, name=name, max_order=max_order)
            if not report.ok:
                # Schema-invalid steps re-raise through the compiler
                # (precise SchemaError); budget violations and the like
                # fall through to the generic rejection.
                build_fixpoint_query(query)
                self._reject(name, report)
        # Compile the Theorem 4.2 tower once: validates the spec, and the
        # compiled term is what non-fixpoint engines (reference
        # cross-checks) normalize.
        compiled = intern_term(build_fixpoint_query(query))
        # A fixpoint step is already relational algebra, so the decision
        # always compiles; the stage evaluator stays the default (``"ra"``
        # is the per-entry/per-request opt-in to the set-based runner).
        decision = decision_for_fixpoint(query) if check else None
        if report is not None and decision is not None:
            report.add(
                "TLI028",
                f"fixpoint step compiles to set algebra: "
                f"{decision.summary}",
            )
        chosen = (
            validate_engine(engine, allow_fixpoint=True)
            if engine
            else FIXPOINT_ENGINE
        )
        signature = QueryArity(
            tuple(k for _, k in query.input_schema), query.output_arity
        )
        return QueryEntry(
            name=name,
            kind="fixpoint",
            term=compiled,
            engine=chosen,
            digest=digest(compiled),
            fixpoint=query,
            signature=signature,
            order=4,  # TLI=1 towers live at order 4 (Definition 3.7).
            report=report,
            compiled=decision,
        )

    @staticmethod
    def _reject(name: str, report: AnalysisReport) -> None:
        details = "; ".join(d.format() for d in report.errors())
        raise EvaluationError(
            f"query {name!r} failed static analysis: {details}"
        )

    def get_query(self, name: str) -> QueryEntry:
        with self._lock:
            entry = self._queries.get(name)
            if entry is None:
                raise EvaluationError(
                    f"query {name!r} is not registered; "
                    f"known: {sorted(self._queries)}"
                )
        return entry

    def queries(self) -> List[QueryEntry]:
        with self._lock:
            return list(self._queries.values())

    def summary(self) -> dict:
        with self._lock:
            return {
                "databases": [e.summary() for e in self._databases.values()],
                "queries": [e.summary() for e in self._queries.values()],
            }
