"""The service catalog: named databases and named query plans.

Registration is where the one-time work happens, so requests don't repeat
it:

* **Databases** are encoded once (Definition 3.1) at registration; the
  encoded terms are shared by every request until the next
  :meth:`Catalog.update_database`, which bumps the entry's version (the
  cache key component) and reports the stale name for eager invalidation.
* **Query terms** are type-checked and order-checked once (Lemma 3.9 via
  :func:`repro.queries.language.recognize_tli` when an arity signature is
  supplied, plain principal-type reconstruction otherwise), hash-consed,
  and digested.  Registration fails fast on ill-typed or wrong-order
  terms — a request can never hit an unchecked plan.
* **Engine auto-selection**: a plain term is a TLI=0-shaped plan and runs
  on ``"nbe"`` (Theorem 5.1 territory: normalization is cheap); a
  :class:`repro.queries.fixpoint.FixpointQuery` spec is a TLI=1 fixpoint
  tower and runs on the Theorem 5.2 PTIME stage evaluator
  (``"fixpoint"``) — naive normalization of those towers is exponential
  (Section 5), so the spec form is the one to register.  An explicit
  ``engine=`` overrides the choice.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.db.encode import encode_database
from repro.db.relations import Database
from repro.errors import EvaluationError, SchemaError
from repro.lam.terms import Term, digest, intern_term
from repro.queries.fixpoint import FixpointQuery, build_fixpoint_query
from repro.queries.language import QueryArity, recognize_tli
from repro.service.engines import FIXPOINT_ENGINE, validate_engine

QuerySpec = Union[Term, FixpointQuery]


def database_digest(database: Database) -> str:
    """A content digest of a list-represented database (names, arities, and
    tuple lists in list order — Definition 3.4 equality)."""
    hasher = hashlib.sha256()
    for name, relation in database:
        hasher.update(
            f"{name}\x00{relation.arity}\x00".encode()
        )
        for row in relation.tuples:
            hasher.update("\x1f".join(row).encode() + b"\x1e")
        hasher.update(b"\x1d")
    return hasher.hexdigest()


@dataclass(frozen=True)
class DatabaseEntry:
    """A registered database: the value plus its one-time encoding."""

    name: str
    database: Database
    encoded: Tuple[Term, ...]
    version: int
    digest: str

    @property
    def schema(self) -> Dict[str, int]:
        return {name: rel.arity for name, rel in self.database}

    def summary(self) -> dict:
        return {
            "name": self.name,
            "version": self.version,
            "digest": self.digest[:12],
            "relations": {
                name: len(rel) for name, rel in self.database
            },
            "active_domain": len(self.database.active_domain()),
        }


@dataclass(frozen=True)
class QueryEntry:
    """A registered query plan.

    ``kind`` is ``"term"`` or ``"fixpoint"``; ``term`` is the (interned)
    query term for term plans and the compiled Theorem 4.2 tower for
    fixpoint plans (kept for digesting and reference cross-checks);
    ``order`` is the derivation order found at registration when a
    signature was checked (``i + 3`` for TLI=i, Definition 3.7).
    """

    name: str
    kind: str
    term: Term
    engine: str
    digest: str
    fixpoint: Optional[FixpointQuery] = None
    signature: Optional[QueryArity] = None
    order: Optional[int] = None

    @property
    def output_arity(self) -> Optional[int]:
        if self.fixpoint is not None:
            return self.fixpoint.output_arity
        if self.signature is not None:
            return self.signature.output
        return None

    def summary(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "engine": self.engine,
            "digest": self.digest[:12],
            "order": self.order,
            "signature": str(self.signature) if self.signature else None,
            "output_arity": self.output_arity,
        }


class Catalog:
    """Thread-safe registry of named databases and query plans."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._databases: Dict[str, DatabaseEntry] = {}
        self._queries: Dict[str, QueryEntry] = {}

    # -- databases -----------------------------------------------------------

    def register_database(
        self, name: str, database: Database
    ) -> DatabaseEntry:
        """Register (or replace) ``name``, encoding every relation once.

        Returns the new entry; replacing bumps the version so cached
        results for the old contents can never be served.
        """
        with self._lock:
            previous = self._databases.get(name)
            version = previous.version + 1 if previous else 1
            entry = DatabaseEntry(
                name=name,
                database=database,
                encoded=tuple(encode_database(database)),
                version=version,
                digest=database_digest(database),
            )
            self._databases[name] = entry
            return entry

    def update_database(self, name: str, database: Database) -> DatabaseEntry:
        """Replace the contents of a registered database (version bump)."""
        with self._lock:
            if name not in self._databases:
                raise SchemaError(f"database {name!r} is not registered")
            return self.register_database(name, database)

    def get_database(self, name: str) -> DatabaseEntry:
        with self._lock:
            entry = self._databases.get(name)
            if entry is None:
                raise SchemaError(
                    f"database {name!r} is not registered; "
                    f"known: {sorted(self._databases)}"
                )
        return entry

    def databases(self) -> List[DatabaseEntry]:
        with self._lock:
            return list(self._databases.values())

    # -- queries -------------------------------------------------------------

    def register_query(
        self,
        name: str,
        query: QuerySpec,
        *,
        signature: Optional[QueryArity] = None,
        engine: Optional[str] = None,
        check: bool = True,
    ) -> QueryEntry:
        """Register (or replace) the plan ``name``.

        ``query`` is a lambda term (optionally checked against an arity
        ``signature`` per Lemma 3.9) or a :class:`FixpointQuery` spec.
        ``engine`` overrides the auto-selection; ``check=False`` skips
        registration-time type/order checking (untyped experiments only).
        """
        if isinstance(query, FixpointQuery):
            entry = self._register_fixpoint(name, query, engine)
        elif isinstance(query, Term):
            entry = self._register_term(name, query, signature, engine, check)
        else:
            raise EvaluationError(
                f"query {name!r} must be a Term or FixpointQuery, "
                f"got {type(query).__name__}"
            )
        with self._lock:
            self._queries[name] = entry
        return entry

    def _register_term(
        self,
        name: str,
        query: Term,
        signature: Optional[QueryArity],
        engine: Optional[str],
        check: bool,
    ) -> QueryEntry:
        order: Optional[int] = None
        if check and signature is not None:
            order = recognize_tli(query, signature).derivation_order
        elif check:
            from repro.types.infer import infer

            order = infer(query).derivation_order()
        term = intern_term(query)
        chosen = validate_engine(engine) if engine else "nbe"
        return QueryEntry(
            name=name,
            kind="term",
            term=term,
            engine=chosen,
            digest=digest(term),
            signature=signature,
            order=order,
        )

    def _register_fixpoint(
        self,
        name: str,
        query: FixpointQuery,
        engine: Optional[str],
    ) -> QueryEntry:
        # Compile the Theorem 4.2 tower once: validates the spec, and the
        # compiled term is what non-fixpoint engines (reference
        # cross-checks) normalize.
        compiled = intern_term(build_fixpoint_query(query))
        chosen = (
            validate_engine(engine, allow_fixpoint=True)
            if engine
            else FIXPOINT_ENGINE
        )
        signature = QueryArity(
            tuple(k for _, k in query.input_schema), query.output_arity
        )
        return QueryEntry(
            name=name,
            kind="fixpoint",
            term=compiled,
            engine=chosen,
            digest=digest(compiled),
            fixpoint=query,
            signature=signature,
            order=4,  # TLI=1 towers live at order 4 (Definition 3.7).
        )

    def get_query(self, name: str) -> QueryEntry:
        with self._lock:
            entry = self._queries.get(name)
            if entry is None:
                raise EvaluationError(
                    f"query {name!r} is not registered; "
                    f"known: {sorted(self._queries)}"
                )
        return entry

    def queries(self) -> List[QueryEntry]:
        with self._lock:
            return list(self._queries.values())

    def summary(self) -> dict:
        with self._lock:
            return {
                "databases": [e.summary() for e in self._databases.values()],
                "queries": [e.summary() for e in self._queries.values()],
            }
