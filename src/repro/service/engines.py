"""Engine dispatch shared by the one-shot driver and the service runtime.

Term-shaped queries run on one of the :data:`ENGINES`:

* ``"nbe"`` — normalization by evaluation (:mod:`repro.lam.nbe`), the
  performance normalizer and the default;
* ``"smallstep"`` — the reference small-step normalizer, normal order,
  with step counts (:mod:`repro.lam.reduce`);
* ``"applicative"`` — small-step, applicative order;
* ``"ra"`` — the plan compiler (:mod:`repro.compile`): the certified
  plan is lowered to a set-backed relational-algebra program and run
  directly on the database relations — no beta-reduction.  Requires the
  ``database`` argument (the plan operates on relations, not on encoded
  terms) and only accepts plans the lowering recognizes; both
  restrictions raise so callers (the runtime) can fall back to NBE.

Fixpoint-query specs (:class:`repro.queries.fixpoint.FixpointQuery`) do not
go through this module: the service runtime dispatches them to the
Theorem 5.2 stage-materializing evaluator
(:func:`repro.eval.ptime.run_fixpoint_query`) under the engine name
``"fixpoint"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.relations import Database

from repro.errors import EvaluationError
from repro.lam.nbe import nbe_normalize_counted
from repro.lam.reduce import DEFAULT_FUEL, Strategy, normalize
from repro.lam.terms import Term, app

#: The term-level engines, in documentation order.
ENGINES = ("nbe", "smallstep", "applicative", "ra")

#: The compiled set-backed engine's name (a member of :data:`ENGINES`).
RA_ENGINE = "ra"

#: Engine name used by the runtime for fixpoint-query specs (not a member
#: of :data:`ENGINES`: it applies to specs, not raw terms).
FIXPOINT_ENGINE = "fixpoint"

DEFAULT_MAX_DEPTH = 600_000

_STRATEGIES = {
    "smallstep": Strategy.NORMAL_ORDER,
    "applicative": Strategy.APPLICATIVE_ORDER,
}


@dataclass(frozen=True)
class EngineResult:
    """A normal form plus how much work reaching it took.

    ``steps`` counts contracted redexes for the small-step engines and
    beta/delta/let evaluation steps for NBE (see
    :func:`repro.lam.nbe.nbe_normalize_counted`).
    """

    normal_form: Term
    engine: str
    steps: Optional[int] = None


def validate_engine(engine: str, *, allow_fixpoint: bool = False) -> str:
    """Check ``engine`` against the known engine names, *before* any
    per-request work (encoding a large database only to fail on a typo is
    exactly the failure mode this guards against)."""
    allowed = ENGINES + ((FIXPOINT_ENGINE,) if allow_fixpoint else ())
    if engine not in allowed:
        raise EvaluationError(
            f"unknown engine {engine!r}; expected one of {allowed}"
        )
    return engine


def evaluate_term_query(
    query: Term,
    encoded_inputs: Sequence[Term],
    *,
    engine: str = "nbe",
    fuel: int = DEFAULT_FUEL,
    max_depth: int = DEFAULT_MAX_DEPTH,
    observer: Optional[Callable[[dict], None]] = None,
    database: Optional["Database"] = None,
    output_arity: Optional[int] = None,
) -> EngineResult:
    """Normalize ``(query r̄1 ... r̄l)`` — Definition 3.10's application of a
    query term to an already-encoded database — on the selected engine.

    ``observer`` receives the engine's step breakdown dict (the
    :mod:`repro.obs.profiler` contract); step totals are unchanged by it.

    ``database`` and ``output_arity`` are required by (and only used by)
    the ``"ra"`` engine, which executes on the relations themselves; its
    result normal form is synthesized from the computed relation, not
    reduced.
    """
    validate_engine(engine)
    if engine == "ra":
        if database is None or output_arity is None:
            raise EvaluationError(
                'engine "ra" needs the database relations and the '
                "certified output arity, not only the encodings"
            )
        from repro.compile import compile_term_plan

        arities = tuple(
            relation.arity for _, relation in database
        )
        plan = compile_term_plan(query, arities, output_arity)
        run = plan.execute(database)
        if observer is not None:
            # "steps" keeps ProfileCollector totals meaningful; the
            # dedicated key marks them as set-executor operations, not
            # reduction steps.
            observer({"steps": run.ops, "ra_ops": run.ops})
        return EngineResult(
            normal_form=run.normal_form, engine=engine, steps=run.ops
        )
    applied = app(query, *encoded_inputs)
    if engine == "nbe":
        normal_form, steps = nbe_normalize_counted(
            applied, max_depth=max_depth, fuel=fuel, observer=observer
        )
        return EngineResult(
            normal_form=normal_form, engine=engine, steps=steps
        )
    outcome = normalize(
        applied, _STRATEGIES[engine], fuel=fuel, observer=observer
    )
    return EngineResult(
        normal_form=outcome.term, engine=engine, steps=outcome.steps
    )
