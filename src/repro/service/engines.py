"""Engine dispatch shared by the one-shot driver and the service runtime.

Term-shaped queries run on one of the :data:`ENGINES`:

* ``"nbe"`` — normalization by evaluation (:mod:`repro.lam.nbe`), the
  performance normalizer and the default;
* ``"smallstep"`` — the reference small-step normalizer, normal order,
  with step counts (:mod:`repro.lam.reduce`);
* ``"applicative"`` — small-step, applicative order.

Fixpoint-query specs (:class:`repro.queries.fixpoint.FixpointQuery`) do not
go through this module: the service runtime dispatches them to the
Theorem 5.2 stage-materializing evaluator
(:func:`repro.eval.ptime.run_fixpoint_query`) under the engine name
``"fixpoint"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.errors import EvaluationError
from repro.lam.nbe import nbe_normalize_counted
from repro.lam.reduce import DEFAULT_FUEL, Strategy, normalize
from repro.lam.terms import Term, app

#: The term-level engines, in documentation order.
ENGINES = ("nbe", "smallstep", "applicative")

#: Engine name used by the runtime for fixpoint-query specs (not a member
#: of :data:`ENGINES`: it applies to specs, not raw terms).
FIXPOINT_ENGINE = "fixpoint"

DEFAULT_MAX_DEPTH = 600_000

_STRATEGIES = {
    "smallstep": Strategy.NORMAL_ORDER,
    "applicative": Strategy.APPLICATIVE_ORDER,
}


@dataclass(frozen=True)
class EngineResult:
    """A normal form plus how much work reaching it took.

    ``steps`` counts contracted redexes for the small-step engines and
    beta/delta/let evaluation steps for NBE (see
    :func:`repro.lam.nbe.nbe_normalize_counted`).
    """

    normal_form: Term
    engine: str
    steps: Optional[int] = None


def validate_engine(engine: str, *, allow_fixpoint: bool = False) -> str:
    """Check ``engine`` against the known engine names, *before* any
    per-request work (encoding a large database only to fail on a typo is
    exactly the failure mode this guards against)."""
    allowed = ENGINES + ((FIXPOINT_ENGINE,) if allow_fixpoint else ())
    if engine not in allowed:
        raise EvaluationError(
            f"unknown engine {engine!r}; expected one of {allowed}"
        )
    return engine


def evaluate_term_query(
    query: Term,
    encoded_inputs: Sequence[Term],
    *,
    engine: str = "nbe",
    fuel: int = DEFAULT_FUEL,
    max_depth: int = DEFAULT_MAX_DEPTH,
    observer: Optional[Callable[[dict], None]] = None,
) -> EngineResult:
    """Normalize ``(query r̄1 ... r̄l)`` — Definition 3.10's application of a
    query term to an already-encoded database — on the selected engine.

    ``observer`` receives the engine's step breakdown dict (the
    :mod:`repro.obs.profiler` contract); step totals are unchanged by it.
    """
    validate_engine(engine)
    applied = app(query, *encoded_inputs)
    if engine == "nbe":
        normal_form, steps = nbe_normalize_counted(
            applied, max_depth=max_depth, fuel=fuel, observer=observer
        )
        return EngineResult(
            normal_form=normal_form, engine=engine, steps=steps
        )
    outcome = normalize(
        applied, _STRATEGIES[engine], fuel=fuel, observer=observer
    )
    return EngineResult(
        normal_form=outcome.term, engine=engine, steps=outcome.steps
    )
