"""The query service runtime: cached, budgeted, batched evaluation.

One request = one (query plan, database) pair plus budgets.  The runtime

1. resolves both against the :class:`~repro.service.catalog.Catalog`
   (inline terms/specs and inline databases are accepted for one-shot
   use — inline databases are cached by content digest);
2. consults the :class:`~repro.service.cache.ResultCache` under a
   *single-flight* lock, so N concurrent identical requests cost one
   evaluation and N-1 waits;
3. on a miss, evaluates on the plan's engine (``nbe`` / ``smallstep`` /
   ``applicative`` for term plans, the Theorem 5.2 stage evaluator for
   fixpoint plans) under the request's fuel/depth budgets;
4. degrades gracefully: an exhausted budget is a ``fuel_exhausted``
   *response*, not an exception out of the batch.

Batches fan out on a ``ThreadPoolExecutor``.  Evaluation is pure Python,
so threads mostly interleave rather than truly parallelize — the serving
win comes from sharing the catalog's one-time encodings and the result
cache across requests, which is exactly what the acceptance benchmark
measures.  Per-request wall-clock timeouts are enforced at the waiting
side (the worker finishes its bounded budget in the background; a
completed result still lands in the cache for later requests).
"""

from __future__ import annotations

import hashlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor, TimeoutError as FutureTimeout
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.analyzer import fuel_budget
from repro.analysis.cost import CostProfile, DatabaseStats
from repro.db.decode import decode_relation
from repro.db.encode import encode_database
from repro.db.relations import Database, Relation
from repro.errors import FuelExhausted, ReproError
from repro.lam.terms import Term, digest
from repro.queries.fixpoint import FixpointQuery
from repro.service.cache import CachedResult, CacheKey, ResultCache
from repro.service.catalog import (
    Catalog,
    DatabaseEntry,
    QueryEntry,
    database_digest,
)
from repro.service.engines import (
    DEFAULT_MAX_DEPTH,
    FIXPOINT_ENGINE,
    evaluate_term_query,
    validate_engine,
)

DEFAULT_FUEL = 10_000_000

#: Statuses a response can carry.
STATUS_OK = "ok"
STATUS_FUEL = "fuel_exhausted"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"


@dataclass(frozen=True)
class QueryRequest:
    """One unit of work for the service.

    ``query`` and ``database`` are catalog names, or inline values
    (a :class:`Term` / :class:`FixpointQuery`, a :class:`Database`) for
    one-shot use.  ``engine`` overrides the plan's engine; ``fuel`` and
    ``max_depth`` budget the small-step and NBE evaluators respectively;
    ``timeout_s`` bounds how long the caller waits in a batch.

    ``fuel=None`` (the default) derives the budget from the plan's static
    cost certificate against the database's size statistics (Theorem 5.1:
    honest plans finish inside the bound, so exhausting it means a
    runaway); plans without a certificate fall back to
    :data:`DEFAULT_FUEL`.
    """

    query: Union[str, Term, FixpointQuery]
    database: Union[str, Database]
    engine: Optional[str] = None
    arity: Optional[int] = None
    fuel: Optional[int] = None
    max_depth: int = DEFAULT_MAX_DEPTH
    timeout_s: Optional[float] = None
    tag: Optional[str] = None


@dataclass
class QueryResponse:
    """The outcome of one request, with its serving stats."""

    status: str
    query: str
    database: str
    database_version: int
    engine: str
    relation: Optional[Relation] = None
    normal_form: Optional[Term] = None
    steps: Optional[int] = None
    stages: Optional[int] = None
    fuel_budget: Optional[int] = None
    cache_hit: bool = False
    wall_ms: float = 0.0
    compute_wall_ms: Optional[float] = None
    error: Optional[str] = None
    tag: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def as_dict(self, *, include_tuples: bool = True) -> dict:
        out = {
            "status": self.status,
            "query": self.query,
            "database": self.database,
            "database_version": self.database_version,
            "engine": self.engine,
            "cache_hit": self.cache_hit,
            "wall_ms": round(self.wall_ms, 3),
            "compute_wall_ms": (
                round(self.compute_wall_ms, 3)
                if self.compute_wall_ms is not None
                else None
            ),
            "steps": self.steps,
            "stages": self.stages,
            "fuel_budget": self.fuel_budget,
            "error": self.error,
            "tag": self.tag,
        }
        if include_tuples and self.relation is not None:
            out["arity"] = self.relation.arity
            out["tuples"] = [list(row) for row in self.relation.tuples]
        return out


@dataclass
class BatchResult:
    """All responses of a batch (input order) plus aggregate stats."""

    responses: List[QueryResponse]
    wall_ms: float

    @property
    def stats(self) -> dict:
        by_status: Dict[str, int] = {}
        for r in self.responses:
            by_status[r.status] = by_status.get(r.status, 0) + 1
        hits = sum(1 for r in self.responses if r.cache_hit)
        latencies = sorted(r.wall_ms for r in self.responses)
        total = len(self.responses)
        return {
            "requests": total,
            "statuses": by_status,
            "cache_hits": hits,
            "cache_misses": total - hits,
            "hit_rate": round(hits / total, 4) if total else 0.0,
            "wall_ms": round(self.wall_ms, 3),
            "throughput_qps": (
                round(total / (self.wall_ms / 1000.0), 2)
                if self.wall_ms > 0
                else 0.0
            ),
            "latency_p50_ms": _percentile(latencies, 0.50),
            "latency_p95_ms": _percentile(latencies, 0.95),
            "total_steps": sum(r.steps or 0 for r in self.responses),
        }


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = max(0, min(len(sorted_values) - 1,
                       int(round(q * len(sorted_values))) - 1))
    return round(sorted_values[index], 3)


@dataclass(frozen=True)
class _ResolvedQuery:
    """A query request target, normalized to one shape."""

    name: str
    digest: str
    engine: str
    term: Optional[Term]
    fixpoint: Optional[FixpointQuery]
    output_arity: Optional[int]
    cost: Optional[CostProfile] = None


class QueryService:
    """Catalog + cache + batch executor, safe for concurrent use."""

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        *,
        cache_capacity: int = 256,
        max_workers: Optional[int] = None,
    ) -> None:
        self.catalog = catalog if catalog is not None else Catalog()
        self.cache = ResultCache(capacity=cache_capacity)
        self._max_workers = max_workers
        self._inflight: Dict[CacheKey, Tuple[threading.Lock, int]] = {}
        self._inflight_guard = threading.Lock()
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._by_status: Dict[str, int] = {}

    # -- public API ----------------------------------------------------------

    def execute(self, request: QueryRequest) -> QueryResponse:
        """Serve one request synchronously.

        With ``timeout_s`` set the evaluation runs on a worker thread and a
        ``timeout`` response is returned if it misses the deadline (the
        worker still completes its bounded budget and populates the cache).
        """
        if request.timeout_s is None:
            return self._serve(request)
        pool = ThreadPoolExecutor(max_workers=1)
        try:
            future = pool.submit(self._serve, request)
            try:
                return future.result(timeout=request.timeout_s)
            except FutureTimeout:
                return self._timed_out(request, request.timeout_s * 1000.0)
        finally:
            # Never wait for an abandoned worker: its fuel/depth budget
            # bounds it, and a late success still lands in the cache.
            pool.shutdown(wait=False)

    def execute_batch(
        self,
        requests: Sequence[QueryRequest],
        *,
        max_workers: Optional[int] = None,
    ) -> BatchResult:
        """Serve many requests concurrently; responses come back in input
        order, one per request, never an exception."""
        workers = max_workers or self._max_workers or min(
            8, max(1, len(requests))
        )
        start = time.perf_counter()
        pool = ThreadPoolExecutor(max_workers=workers)
        try:
            futures = [pool.submit(self._serve, r) for r in requests]
            responses: List[QueryResponse] = []
            for request, future in zip(requests, futures):
                if request.timeout_s is None:
                    responses.append(future.result())
                    continue
                deadline = start + request.timeout_s
                remaining = max(0.0, deadline - time.perf_counter())
                try:
                    responses.append(future.result(timeout=remaining))
                except FutureTimeout:
                    responses.append(
                        self._timed_out(
                            request,
                            (time.perf_counter() - start) * 1000.0,
                        )
                    )
        finally:
            # Abandoned workers (timeouts) keep running to their bounded
            # budget in the background; the batch does not wait for them.
            pool.shutdown(wait=False)
        wall_ms = (time.perf_counter() - start) * 1000.0
        return BatchResult(responses=responses, wall_ms=wall_ms)

    def stats(self) -> dict:
        with self._stats_lock:
            by_status = dict(self._by_status)
            requests = self._requests
        return {
            "requests": requests,
            "statuses": by_status,
            "cache": self.cache.stats().as_dict(),
        }

    # -- request resolution --------------------------------------------------

    def _resolve_query(self, request: QueryRequest) -> _ResolvedQuery:
        query = request.query
        if isinstance(query, str):
            entry: QueryEntry = self.catalog.get_query(query)
            engine = request.engine or entry.engine
            return _ResolvedQuery(
                name=entry.name,
                digest=entry.digest,
                engine=engine,
                term=entry.term,
                fixpoint=entry.fixpoint,
                output_arity=entry.output_arity,
                cost=entry.cost,
            )
        if isinstance(query, FixpointQuery):
            spec_digest = hashlib.sha256(repr(query).encode()).hexdigest()
            return _ResolvedQuery(
                name="<inline fixpoint>",
                digest="fx:" + spec_digest,
                engine=request.engine or FIXPOINT_ENGINE,
                term=None,
                fixpoint=query,
                output_arity=query.output_arity,
            )
        if isinstance(query, Term):
            return _ResolvedQuery(
                name="<inline term>",
                digest=digest(query),
                engine=request.engine or "nbe",
                term=query,
                fixpoint=None,
                output_arity=None,
            )
        raise ReproError(
            f"request query must be a name, Term, or FixpointQuery, "
            f"got {type(query).__name__}"
        )

    def _resolve_database(self, request: QueryRequest) -> DatabaseEntry:
        database = request.database
        if isinstance(database, str):
            return self.catalog.get_database(database)
        if isinstance(database, Database):
            # Inline databases are keyed by content: identical contents hit
            # the same cache entries without being registered.
            return DatabaseEntry(
                name="@inline:" + database_digest(database)[:16],
                database=database,
                encoded=tuple(encode_database(database)),
                version=0,
                digest=database_digest(database),
                stats=DatabaseStats.of(database),
            )
        raise ReproError(
            f"request database must be a name or Database, "
            f"got {type(database).__name__}"
        )

    # -- serving -------------------------------------------------------------

    def _serve(self, request: QueryRequest) -> QueryResponse:
        start = time.perf_counter()
        try:
            response = self._serve_inner(request, start)
        except (ReproError, RecursionError) as exc:
            response = QueryResponse(
                status=STATUS_ERROR,
                query=self._query_label(request),
                database=self._database_label(request),
                database_version=0,
                engine=request.engine or "?",
                error=str(exc),
                wall_ms=(time.perf_counter() - start) * 1000.0,
                tag=request.tag,
            )
        self._count(response.status)
        return response

    def _serve_inner(
        self, request: QueryRequest, start: float
    ) -> QueryResponse:
        if request.engine is not None:
            validate_engine(request.engine, allow_fixpoint=True)
        resolved = self._resolve_query(request)
        db_entry = self._resolve_database(request)
        if resolved.engine == FIXPOINT_ENGINE and resolved.fixpoint is None:
            raise ReproError(
                f"query {resolved.name!r} has no fixpoint spec; the "
                f"'fixpoint' engine applies to FixpointQuery plans only"
            )
        key: CacheKey = (
            resolved.digest,
            db_entry.name,
            db_entry.version,
            resolved.engine,
        )
        arity = (
            request.arity
            if request.arity is not None
            else resolved.output_arity
        )

        lock = self._acquire_key(key)
        try:
            with lock:
                cached = self.cache.get(key)
                if cached is not None:
                    return self._from_cache(
                        request, resolved, db_entry, cached, arity, start
                    )
                try:
                    computed = self._evaluate(
                        request, resolved, db_entry, arity
                    )
                except FuelExhausted as exc:
                    return QueryResponse(
                        status=STATUS_FUEL,
                        query=resolved.name,
                        database=db_entry.name,
                        database_version=db_entry.version,
                        engine=resolved.engine,
                        steps=exc.steps,
                        fuel_budget=self._fuel_for(
                            request, resolved, db_entry
                        ),
                        error=str(exc),
                        wall_ms=(time.perf_counter() - start) * 1000.0,
                        tag=request.tag,
                    )
                self.cache.put(key, computed)
        finally:
            self._release_key(key)

        wall_ms = (time.perf_counter() - start) * 1000.0
        return QueryResponse(
            status=STATUS_OK,
            query=resolved.name,
            database=db_entry.name,
            database_version=db_entry.version,
            engine=resolved.engine,
            relation=computed.relation,
            normal_form=computed.normal_form,
            steps=computed.steps,
            stages=computed.stages,
            fuel_budget=computed.fuel_budget,
            cache_hit=False,
            wall_ms=wall_ms,
            compute_wall_ms=computed.compute_wall_ms,
            tag=request.tag,
        )

    def _evaluate(
        self,
        request: QueryRequest,
        resolved: _ResolvedQuery,
        db_entry: DatabaseEntry,
        arity: Optional[int],
    ) -> CachedResult:
        compute_start = time.perf_counter()
        if resolved.engine == FIXPOINT_ENGINE:
            from repro.eval.ptime import run_fixpoint_query

            run = run_fixpoint_query(
                resolved.fixpoint,
                db_entry.database,
                max_depth=request.max_depth,
            )
            decoded, normal_form = run.decoded, run.normal_form
            steps: Optional[int] = None
            stages: Optional[int] = run.stages
            fuel: Optional[int] = None
        else:
            fuel = self._fuel_for(request, resolved, db_entry)
            result = evaluate_term_query(
                resolved.term,
                db_entry.encoded,
                engine=resolved.engine,
                fuel=fuel,
                max_depth=request.max_depth,
            )
            decoded = decode_relation(result.normal_form, arity)
            normal_form = result.normal_form
            steps = result.steps
            stages = None
        compute_ms = (time.perf_counter() - compute_start) * 1000.0
        return CachedResult(
            relation=decoded.relation,
            decoded=decoded,
            normal_form=normal_form,
            engine=resolved.engine,
            steps=steps,
            stages=stages,
            compute_wall_ms=compute_ms,
            fuel_budget=fuel,
        )

    @staticmethod
    def _fuel_for(
        request: QueryRequest,
        resolved: _ResolvedQuery,
        db_entry: DatabaseEntry,
    ) -> int:
        """The fuel this evaluation runs under: an explicit request budget
        wins; otherwise the plan's static cost certificate instantiated at
        the database's size statistics; otherwise the flat default."""
        if request.fuel is not None:
            return request.fuel
        stats = db_entry.stats
        if stats is None:
            stats = DatabaseStats.of(db_entry.database)
        return fuel_budget(resolved.cost, stats, default=DEFAULT_FUEL)

    def _from_cache(
        self,
        request: QueryRequest,
        resolved: _ResolvedQuery,
        db_entry: DatabaseEntry,
        cached: CachedResult,
        arity: Optional[int],
        start: float,
    ) -> QueryResponse:
        if arity is not None and cached.relation.arity != arity:
            raise ReproError(
                f"query {resolved.name!r} produced arity "
                f"{cached.relation.arity}, request asserts {arity}"
            )
        return QueryResponse(
            status=STATUS_OK,
            query=resolved.name,
            database=db_entry.name,
            database_version=db_entry.version,
            engine=resolved.engine,
            relation=cached.relation,
            normal_form=cached.normal_form,
            steps=cached.steps,
            stages=cached.stages,
            fuel_budget=cached.fuel_budget,
            cache_hit=True,
            wall_ms=(time.perf_counter() - start) * 1000.0,
            compute_wall_ms=cached.compute_wall_ms,
            tag=request.tag,
        )

    # -- database updates ----------------------------------------------------

    def update_database(self, name: str, database: Database) -> DatabaseEntry:
        """Replace a registered database and invalidate its cached results
        (the version bump alone already makes them unreachable; this also
        frees them eagerly)."""
        entry = self.catalog.update_database(name, database)
        self.cache.invalidate_database(name)
        return entry

    # -- plumbing ------------------------------------------------------------

    def _acquire_key(self, key: CacheKey) -> threading.Lock:
        with self._inflight_guard:
            lock, count = self._inflight.get(key, (None, 0))
            if lock is None:
                lock = threading.Lock()
            self._inflight[key] = (lock, count + 1)
            return lock

    def _release_key(self, key: CacheKey) -> None:
        with self._inflight_guard:
            lock, count = self._inflight[key]
            if count <= 1:
                del self._inflight[key]
            else:
                self._inflight[key] = (lock, count - 1)

    def _count(self, status: str) -> None:
        with self._stats_lock:
            self._requests += 1
            self._by_status[status] = self._by_status.get(status, 0) + 1

    def _timed_out(
        self, request: QueryRequest, wall_ms: float
    ) -> QueryResponse:
        response = QueryResponse(
            status=STATUS_TIMEOUT,
            query=self._query_label(request),
            database=self._database_label(request),
            database_version=0,
            engine=request.engine or "?",
            error=f"request missed its {request.timeout_s}s deadline",
            wall_ms=wall_ms,
            tag=request.tag,
        )
        self._count(STATUS_TIMEOUT)
        return response

    @staticmethod
    def _query_label(request: QueryRequest) -> str:
        return (
            request.query
            if isinstance(request.query, str)
            else f"<inline {type(request.query).__name__}>"
        )

    @staticmethod
    def _database_label(request: QueryRequest) -> str:
        return (
            request.database
            if isinstance(request.database, str)
            else "@inline"
        )


def run_once(
    query: Term,
    database: Database,
    *,
    arity: Optional[int] = None,
    engine: str = "nbe",
    fuel: int = DEFAULT_FUEL,
    max_depth: int = DEFAULT_MAX_DEPTH,
):
    """The uncached one-shot path: encode, apply, normalize, decode.

    This is what :func:`repro.eval.driver.run_query` wraps; the engine name
    is validated *before* the database is encoded.
    """
    validate_engine(engine)
    encoded = encode_database(database)
    result = evaluate_term_query(
        query, encoded, engine=engine, fuel=fuel, max_depth=max_depth
    )
    decoded = decode_relation(result.normal_form, arity)
    return decoded, result
