"""The query service runtime: cached, budgeted, batched evaluation.

One request = one (query plan, database) pair plus budgets.  The runtime

1. resolves both against the :class:`~repro.service.catalog.Catalog`
   (inline terms/specs and inline databases are accepted for one-shot
   use — inline databases are cached by content digest);
2. consults the :class:`~repro.service.cache.ResultCache` under a
   *single-flight* lock, so N concurrent identical requests cost one
   evaluation and N-1 waits;
3. on a miss, evaluates on the plan's engine (``nbe`` / ``smallstep`` /
   ``applicative`` for term plans, the Theorem 5.2 stage evaluator for
   fixpoint plans) under the request's fuel/depth budgets;
4. degrades gracefully: an exhausted budget is a ``fuel_exhausted``
   *response*, not an exception out of the batch.

Batches fan out on a ``ThreadPoolExecutor``.  Evaluation is pure Python,
so threads mostly interleave rather than truly parallelize — the serving
win comes from sharing the catalog's one-time encodings and the result
cache across requests, which is exactly what the acceptance benchmark
measures.  Per-request wall-clock timeouts are enforced at the waiting
side (the worker finishes its bounded budget in the background; a
completed result still lands in the cache for later requests).

**Observability.**  Every request is traced through the lifecycle spans
``query`` → ``resolve`` / ``cache.wait`` / ``cache.lookup`` / ``fuel`` /
``evaluate`` / ``decode`` (see :mod:`repro.obs.tracing`; tracing is off
unless the service is built with an enabled tracer), counted into the
service's :class:`~repro.obs.metrics.MetricsRegistry` (the
``repro_*`` core family), and profiled: the evaluation's beta/delta/let/
quote step breakdown lands on :attr:`QueryResponse.profile` together with
the certifier's static cost bound and the observed/bound ratio, which is
also exported as the ``repro_steps_bound_ratio`` gauge.  Requests slower
than ``slow_query_ms`` emit a structured warning on the
``repro.service.slow`` logger, carrying the ``trace_id`` and cache-key
digest so the logged request can be looked up in the flight recorder.

**Flight recorder & EXPLAIN.**  A service built (or retrofitted via
:meth:`QueryService.enable_flight`) with a
:class:`~repro.obs.flight.FlightRecorder` assembles one *explain
report* per request — the static side (order certificate, cost
polynomial before/after absint tightening, read-set, distribution
class) joined with the observed side (engine, cache path, per-shard
fuel split vs. steps, reduction profile, bound ratio) plus the
request's span tree — and offers it to the recorder, which retains
errors, bound-ratio breaches, the slowest N, and anything that asked
``explain=True``.  Requests propagate a caller-supplied ``trace_id``
(e.g. from an HTTP ``traceparent`` header) into the root span, and
admitted reports stamp trace-id exemplars onto the latency histogram.
"""

from __future__ import annotations

import hashlib
import logging
import threading
import time
from collections import OrderedDict
from concurrent.futures import (
    CancelledError,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeout,
)
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.analyzer import fuel_budget
from repro.analysis.cost import CostProfile, DatabaseStats
from repro.analysis.provenance import (
    ProvenanceFacts,
    check_schema_contract,
    database_schema,
    scanned_relation_names,
    version_subvector,
)
from repro.compile import (
    CompileDecision,
    CompileFallback,
    run_fixpoint_query_compiled,
)
from repro.db.decode import decode_relation
from repro.db.encode import encode_database
from repro.db.relations import Database, Relation
from repro.errors import (
    EvaluationError,
    FuelExhausted,
    ReproError,
    SchemaError,
)
from repro.lam.terms import Term, digest
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import (
    MetricsRegistry,
    install_compile_metrics,
    install_core_metrics,
    install_shard_metrics,
    quantile,
)
from repro.obs.profiler import ProfileCollector, bound_ratio
from repro.obs.tracing import Tracer, get_tracer
from repro.queries.fixpoint import FixpointQuery
from repro.queries.language import QueryArity
from repro.service.cache import CachedResult, CacheKey, ResultCache
from repro.shard.policy import FALLBACK_ERROR, ShardPolicy
from repro.service.catalog import (
    Catalog,
    DatabaseEntry,
    QueryEntry,
    database_digest,
)
from repro.service.engines import (
    DEFAULT_MAX_DEPTH,
    FIXPOINT_ENGINE,
    RA_ENGINE,
    evaluate_term_query,
    validate_engine,
)

DEFAULT_FUEL = 10_000_000

#: Size of the shared deadline-watch thread pool (`execute` with
#: ``timeout_s``).  Workers abandoned by a timeout occupy a slot only
#: until their bounded fuel/depth budget completes, so a modest fixed
#: size suffices; requests queued behind a full pool still observe their
#: own deadline at the waiting side.
TIMEOUT_POOL_WORKERS = 16

#: Capacity of the per-service distribution-plan LRU (keyed by query
#: digest x schema names).  Classification is cheap to redo, so a small
#: bound beats an unbounded dict on long-lived services with churning
#: inline queries or schemas.
PLAN_CACHE_CAPACITY = 128

#: Statuses a response can carry.
STATUS_OK = "ok"
STATUS_FUEL = "fuel_exhausted"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"

logger = logging.getLogger("repro.service")
slow_logger = logging.getLogger("repro.service.slow")


@dataclass(frozen=True)
class QueryRequest:
    """One unit of work for the service.

    ``query`` and ``database`` are catalog names, or inline values
    (a :class:`Term` / :class:`FixpointQuery`, a :class:`Database`) for
    one-shot use.  ``engine`` overrides the plan's engine; ``fuel`` and
    ``max_depth`` budget the small-step and NBE evaluators respectively;
    ``timeout_s`` bounds how long the caller waits in a batch.

    ``fuel=None`` (the default) derives the budget from the plan's static
    cost certificate against the database's size statistics (Theorem 5.1:
    honest plans finish inside the bound, so exhausting it means a
    runaway); plans without a certificate fall back to
    :data:`DEFAULT_FUEL`.

    ``shards`` (or a full ``shard_policy``) asks for partition-parallel
    evaluation on the service's worker pool: the plan is classified by
    :mod:`repro.shard.planner` and, when distributable, evaluated
    shard-by-shard with a canonical merge.  Non-distributable plans fall
    back to the ordinary in-process path (or error, per the policy's
    ``fallback``).

    ``trace_id`` seeds the request's trace (e.g. the id carried in an
    HTTP ``traceparent`` header); left ``None``, the tracer mints one
    when tracing is enabled.  ``explain=True`` asks for the full
    EXPLAIN-ANALYZE report on :attr:`QueryResponse.explain` (and pins
    the request into the flight recorder when one is installed).
    """

    query: Union[str, Term, FixpointQuery]
    database: Union[str, Database]
    engine: Optional[str] = None
    arity: Optional[int] = None
    fuel: Optional[int] = None
    max_depth: int = DEFAULT_MAX_DEPTH
    timeout_s: Optional[float] = None
    tag: Optional[str] = None
    shards: Optional[int] = None
    shard_policy: Optional[ShardPolicy] = None
    trace_id: Optional[str] = None
    explain: bool = False


@dataclass
class QueryResponse:
    """The outcome of one request, with its serving stats.

    ``profile`` is the reduction profile of the evaluation that produced
    the result (cache hits replay the computing request's profile): the
    beta/delta/let/quote step breakdown, the readback depth watermark,
    the certifier's ``static_bound``, and the observed/bound ratio.
    """

    status: str
    query: str
    database: str
    database_version: int
    engine: str
    relation: Optional[Relation] = None
    normal_form: Optional[Term] = None
    steps: Optional[int] = None
    stages: Optional[int] = None
    fuel_budget: Optional[int] = None
    cache_hit: bool = False
    wall_ms: float = 0.0
    compute_wall_ms: Optional[float] = None
    error: Optional[str] = None
    tag: Optional[str] = None
    profile: Optional[dict] = None
    trace_id: Optional[str] = None
    cache_key: Optional[str] = None
    explain: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def as_dict(self, *, include_tuples: bool = True) -> dict:
        out = {
            "status": self.status,
            "query": self.query,
            "database": self.database,
            "database_version": self.database_version,
            "engine": self.engine,
            "cache_hit": self.cache_hit,
            "wall_ms": round(self.wall_ms, 3),
            "compute_wall_ms": (
                round(self.compute_wall_ms, 3)
                if self.compute_wall_ms is not None
                else None
            ),
            "steps": self.steps,
            "stages": self.stages,
            "fuel_budget": self.fuel_budget,
            "profile": self.profile,
            "error": self.error,
            "tag": self.tag,
            "trace_id": self.trace_id,
            "cache_key": self.cache_key,
        }
        if self.explain is not None:
            out["explain"] = self.explain
        if include_tuples and self.relation is not None:
            out["arity"] = self.relation.arity
            out["tuples"] = [list(row) for row in self.relation.tuples]
        return out


@dataclass
class BatchResult:
    """All responses of a batch (input order) plus aggregate stats."""

    responses: List[QueryResponse]
    wall_ms: float

    @property
    def stats(self) -> dict:
        by_status: Dict[str, int] = {}
        for r in self.responses:
            by_status[r.status] = by_status.get(r.status, 0) + 1
        hits = sum(1 for r in self.responses if r.cache_hit)
        latencies = sorted(r.wall_ms for r in self.responses)
        total = len(self.responses)
        # The hit rate is over responses that actually performed a cache
        # lookup: errors and timeouts never reached the cache, so they
        # dilute neither side of the ratio.
        looked = sum(
            1 for r in self.responses if r.status in (STATUS_OK, STATUS_FUEL)
        )
        return {
            "requests": total,
            "statuses": by_status,
            "cache_hits": hits,
            "cache_misses": looked - hits,
            "hit_rate": round(hits / looked, 4) if looked else 0.0,
            "wall_ms": round(self.wall_ms, 3),
            "throughput_qps": (
                round(total / (self.wall_ms / 1000.0), 2)
                if self.wall_ms > 0
                else 0.0
            ),
            "latency_p50_ms": round(quantile(latencies, 0.50), 3),
            "latency_p95_ms": round(quantile(latencies, 0.95), 3),
            "total_steps": sum(r.steps or 0 for r in self.responses),
        }


@dataclass(frozen=True)
class _ResolvedQuery:
    """A query request target, normalized to one shape."""

    name: str
    digest: str
    engine: str
    term: Optional[Term]
    fixpoint: Optional[FixpointQuery]
    output_arity: Optional[int]
    #: The effective profile (absint-tightened when adopted): drives fuel
    #: budgets, static bounds, and per-shard fuel splits.
    cost: Optional[CostProfile] = None
    #: The syntactic profile, kept so the tightening ratio can be
    #: reported when the two differ.
    base_cost: Optional[CostProfile] = None
    signature: Optional[QueryArity] = None
    #: The read-set / schema-contract certificate (TLI023): keys the
    #: result cache on the read-set's version sub-vector and gates the
    #: admission-time contract check.
    provenance: Optional[ProvenanceFacts] = None
    #: The Definition 3.7 order certificate found at registration
    #: (``i + 3`` for TLI=i); reported in explain output.
    order: Optional[int] = None
    #: The compiler's registration-time decision (TLI028/TLI029);
    #: EXPLAIN's static section carries it.
    compiled: Optional[CompileDecision] = None


class QueryService:
    """Catalog + cache + batch executor, safe for concurrent use.

    ``registry`` defaults to a fresh per-service
    :class:`~repro.obs.metrics.MetricsRegistry` (pass a shared one to
    aggregate across services); ``tracer`` defaults to the process
    default, which is disabled until configured; ``slow_query_ms`` turns
    on structured slow-query logging via the ``repro.service.slow``
    logger; ``flight`` installs a
    :class:`~repro.obs.flight.FlightRecorder` (see
    :meth:`enable_flight`).
    """

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        *,
        cache_capacity: int = 256,
        max_workers: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        slow_query_ms: Optional[float] = None,
        shard_workers: Optional[int] = None,
        flight: Optional[FlightRecorder] = None,
    ) -> None:
        self.catalog = catalog if catalog is not None else Catalog()
        self.cache = ResultCache(capacity=cache_capacity)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.slow_query_ms = slow_query_ms
        self.flight: Optional[FlightRecorder] = None
        if flight is not None:
            self.enable_flight(flight)
        self._metrics = install_core_metrics(self.registry)
        self._shard_metrics = install_shard_metrics(self.registry)
        self._compile_metrics = install_compile_metrics(self.registry)
        # Registration-time compile decisions land on the service's
        # registry (the catalog itself is metrics-free).
        self.catalog.compile_observer = self._record_compile_decision
        self._max_workers = max_workers
        self._inflight: Dict[CacheKey, Tuple[threading.Lock, int]] = {}
        self._inflight_guard = threading.Lock()
        # Memoized static halves of EXPLAIN reports: the certificate
        # side is constant per (plan, engine, database version), and
        # re-describing cost polynomials per request is the dominant
        # cost of flight recording on the cache-hit path.
        self._explain_static_cache: Dict[Tuple, dict] = {}
        # close() latch: set exactly once, checked by the lazy executor
        # factories so a request racing a close() can never resurrect a
        # pool the close already tore down (that pool would leak).
        self._closed = False
        self._close_lock = threading.Lock()
        # Long-lived executors, created lazily and released by close():
        # the deadline-watch thread pool (one per service, not one per
        # timed request) and the shard worker pool.
        self._timeout_pool: Optional[ThreadPoolExecutor] = None
        self._timeout_pool_lock = threading.Lock()
        self._shard_workers = shard_workers
        self._shard_pool = None
        self._shard_pool_lock = threading.Lock()
        self._plan_cache: "OrderedDict[Tuple[str, Tuple[str, ...]], object]" = (
            OrderedDict()
        )
        self._plan_cache_lock = threading.Lock()

    def enable_flight(
        self, flight: Optional[FlightRecorder] = None
    ) -> FlightRecorder:
        """Install a flight recorder (a default-configured one when
        ``flight`` is ``None``) and make sure spans reach it.

        The recorder needs the span stream to attach span trees to its
        reports, so a service whose tracer is disabled gets a fresh
        enabled tracer exporting to the recorder only; an already-enabled
        tracer gains the recorder as an additional exporter.
        """
        recorder = flight if flight is not None else FlightRecorder()
        self.flight = recorder
        if self.tracer.enabled:
            self.tracer.add_exporter(recorder)
        else:
            self.tracer = Tracer(exporters=[recorder], enabled=True)
        return recorder

    # -- public API ----------------------------------------------------------

    def execute(self, request: QueryRequest) -> QueryResponse:
        """Serve one request synchronously.

        With ``timeout_s`` set the evaluation runs on a worker thread and a
        ``timeout`` response is returned if it misses the deadline (the
        worker still completes its bounded budget and populates the cache).
        """
        if request.timeout_s is None:
            return self._serve(request)
        start = time.perf_counter()
        try:
            future = self._timeout_executor().submit(self._serve, request)
        except (ReproError, RuntimeError) as exc:
            # The service closed between the caller's check and the
            # submit (RuntimeError: "cannot schedule new futures after
            # shutdown").  A closed service answers, it does not raise.
            return self._closed_response(request, start, exc)
        try:
            return future.result(timeout=request.timeout_s)
        except FutureTimeout:
            # Never wait for an abandoned worker: its fuel/depth budget
            # bounds it, and a late success still lands in the cache.
            # Cancelling drops evaluations the shared pool has not started
            # yet, so sustained timeouts cannot queue useless work.
            future.cancel()
            return self._timed_out(request, request.timeout_s * 1000.0)
        except CancelledError as exc:
            # close() cancelled the queued future before a worker picked
            # it up.
            return self._closed_response(request, start, exc)

    def _timeout_executor(self) -> ThreadPoolExecutor:
        """The shared deadline-watch pool (created on first timed request,
        released by :meth:`close`; never recreated after close)."""
        with self._timeout_pool_lock:
            if self._closed:
                raise ReproError("service is closed")
            if self._timeout_pool is None:
                self._timeout_pool = ThreadPoolExecutor(
                    max_workers=TIMEOUT_POOL_WORKERS,
                    thread_name_prefix="repro-timeout",
                )
            return self._timeout_pool

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Release the service's long-lived executors.

        Idempotent and safe to call while requests are in flight: the
        first call wins (later calls return immediately), the closed
        latch is set *before* the teardown so a racing request cannot
        lazily recreate a pool after it was released, and in-flight
        requests finish with a response — evaluations already running
        complete normally; queued timed requests and post-close shard
        requests come back as ``error`` responses rather than exceptions.
        Abandoned timed-out evaluations are not waited for — same
        semantics as serving time: their budgets bound them.
        """
        with self._close_lock:
            if self._closed:
                return
            # Latch first: from here on no lazy factory hands out a pool.
            self._closed = True
        with self._timeout_pool_lock:
            pool, self._timeout_pool = self._timeout_pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        with self._shard_pool_lock:
            shard_pool, self._shard_pool = self._shard_pool, None
        if shard_pool is not None:
            shard_pool.close()

    def _closed_response(
        self, request: QueryRequest, start: float, exc: BaseException
    ) -> QueryResponse:
        response = QueryResponse(
            status=STATUS_ERROR,
            query=self._query_label(request),
            database=self._database_label(request),
            database_version=0,
            engine=request.engine or "?",
            error=f"service closed before the request could run ({exc})",
            wall_ms=(time.perf_counter() - start) * 1000.0,
            tag=request.tag,
            trace_id=request.trace_id,
        )
        self._observe(response)
        return response

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def execute_batch(
        self,
        requests: Sequence[QueryRequest],
        *,
        max_workers: Optional[int] = None,
    ) -> BatchResult:
        """Serve many requests concurrently; responses come back in input
        order, one per request, never an exception."""
        workers = max_workers or self._max_workers or min(
            8, max(1, len(requests))
        )
        start = time.perf_counter()
        pool = ThreadPoolExecutor(max_workers=workers)
        try:
            futures = [pool.submit(self._serve, r) for r in requests]
            responses: List[QueryResponse] = []
            for request, future in zip(requests, futures):
                if request.timeout_s is None:
                    responses.append(future.result())
                    continue
                deadline = start + request.timeout_s
                remaining = max(0.0, deadline - time.perf_counter())
                try:
                    responses.append(future.result(timeout=remaining))
                except FutureTimeout:
                    responses.append(
                        self._timed_out(
                            request,
                            (time.perf_counter() - start) * 1000.0,
                        )
                    )
        finally:
            # Abandoned workers (timeouts) keep running to their bounded
            # budget in the background; the batch does not wait for them.
            pool.shutdown(wait=False)
        wall_ms = (time.perf_counter() - start) * 1000.0
        return BatchResult(responses=responses, wall_ms=wall_ms)

    def stats(self) -> dict:
        """Aggregate serving stats, read back from the metrics registry
        (the registry is the source of truth; this is a convenience
        projection keeping the pre-registry dict shape)."""
        statuses = {
            labels["status"]: int(value)
            for labels, value in self._metrics["requests"].items()
        }
        latency = self._metrics["latency"]
        return {
            "requests": sum(statuses.values()),
            "statuses": statuses,
            "cache": self.cache.stats().as_dict(),
            "latency_p50_ms": round(latency.quantile(0.50), 3),
            "latency_p95_ms": round(latency.quantile(0.95), 3),
            "slow_queries": int(self._metrics["slow_queries"].value()),
        }

    # -- request resolution --------------------------------------------------

    def _resolve_query(self, request: QueryRequest) -> _ResolvedQuery:
        query = request.query
        if isinstance(query, str):
            entry: QueryEntry = self.catalog.get_query(query)
            engine = request.engine or entry.engine
            return _ResolvedQuery(
                name=entry.name,
                digest=entry.digest,
                engine=engine,
                term=entry.plan_term,
                fixpoint=entry.fixpoint,
                output_arity=entry.output_arity,
                cost=entry.effective_cost,
                base_cost=entry.cost,
                signature=entry.signature,
                provenance=entry.provenance,
                order=entry.order,
                compiled=entry.compiled,
            )
        if isinstance(query, FixpointQuery):
            spec_digest = hashlib.sha256(repr(query).encode()).hexdigest()
            return _ResolvedQuery(
                name="<inline fixpoint>",
                digest="fx:" + spec_digest,
                engine=request.engine or FIXPOINT_ENGINE,
                term=None,
                fixpoint=query,
                output_arity=query.output_arity,
            )
        if isinstance(query, Term):
            return _ResolvedQuery(
                name="<inline term>",
                digest=digest(query),
                engine=request.engine or "nbe",
                term=query,
                fixpoint=None,
                output_arity=None,
            )
        raise ReproError(
            f"request query must be a name, Term, or FixpointQuery, "
            f"got {type(query).__name__}"
        )

    def _resolve_database(self, request: QueryRequest) -> DatabaseEntry:
        database = request.database
        if isinstance(database, str):
            return self.catalog.get_database(database)
        if isinstance(database, Database):
            # Inline databases are keyed by content: identical contents hit
            # the same cache entries without being registered.
            return DatabaseEntry(
                name="@inline:" + database_digest(database)[:16],
                database=database,
                encoded=tuple(encode_database(database)),
                version=0,
                digest=database_digest(database),
                stats=DatabaseStats.of(database),
            )
        raise ReproError(
            f"request database must be a name or Database, "
            f"got {type(database).__name__}"
        )

    # -- serving -------------------------------------------------------------

    def _serve(self, request: QueryRequest) -> QueryResponse:
        start = time.perf_counter()
        extras: Dict[str, object] = {}
        with self.tracer.span(
            "query",
            trace_id=request.trace_id,
            query=self._query_label(request),
            database=self._database_label(request),
            tag=request.tag,
        ) as span:
            try:
                response = self._serve_inner(request, start, extras)
            except (ReproError, RecursionError) as exc:
                response = QueryResponse(
                    status=STATUS_ERROR,
                    query=self._query_label(request),
                    database=self._database_label(request),
                    database_version=0,
                    engine=request.engine or "?",
                    error=str(exc),
                    wall_ms=(time.perf_counter() - start) * 1000.0,
                    tag=request.tag,
                )
            span.set_attr("engine", response.engine)
            span.set_attr("cache_hit", response.cache_hit)
            span.set_attr("status", response.status)
            if response.status != STATUS_OK:
                span.set_status(response.status)
        # NOOP_SPAN (tracing disabled) has no trace_id attribute; the
        # caller-supplied id still propagates onto the response.
        response.trace_id = getattr(span, "trace_id", request.trace_id)
        response.cache_key = extras.get("cache_key")  # type: ignore[assignment]
        recorded = False
        if self.flight is not None or request.explain:
            report = self._explain_report(request, response, extras)
            if self.flight is not None:
                # Past the root span's close, so the recorder's pending
                # map already holds the whole span tree for this trace.
                recorded = self.flight.record(report)
                if recorded and response.trace_id:
                    stored = self.flight.lookup(response.trace_id)
                    if stored is not None:
                        # The retained copy carries the span tree and
                        # admission reasons; surface that richer report.
                        report = stored
            if request.explain:
                response.explain = report
        self._observe(response, exemplar_recorded=recorded)
        return response

    def _serve_inner(
        self,
        request: QueryRequest,
        start: float,
        extras: Dict[str, object],
    ) -> QueryResponse:
        tracer = self.tracer
        if request.engine is not None:
            validate_engine(request.engine, allow_fixpoint=True)
        with tracer.span("resolve") as span:
            resolved = self._resolve_query(request)
            db_entry = self._resolve_database(request)
            span.set_attr("query", resolved.name)
            span.set_attr("database", db_entry.name)
        extras["resolved"] = resolved
        extras["db_entry"] = db_entry
        if resolved.engine == FIXPOINT_ENGINE and resolved.fixpoint is None:
            raise ReproError(
                f"query {resolved.name!r} has no fixpoint spec; the "
                f"'fixpoint' engine applies to FixpointQuery plans only"
            )
        self._check_contract(resolved, db_entry)
        policy, shard_plan = self._shard_dispatch(request, resolved, db_entry)
        # Sharded results come back in canonical (merged) order, so they
        # must not share cache entries with in-process results: the shard
        # spec is folded into the cache key's engine component.
        engine_key = (
            f"{resolved.engine}#s{policy.shards}:{policy.partitioner}"
            if policy is not None
            else resolved.engine
        )
        key: CacheKey = (
            resolved.digest,
            db_entry.name,
            self._version_key(resolved, db_entry),
            engine_key,
        )
        extras["cache_key"] = hashlib.sha256(
            repr(key).encode()
        ).hexdigest()[:16]
        extras["policy"] = policy
        extras["plan"] = shard_plan
        arity = (
            request.arity
            if request.arity is not None
            else resolved.output_arity
        )

        lock = self._acquire_key(key)
        try:
            # Single flight: if an identical evaluation is in flight, the
            # blocked acquire is the wait — trace and count it, so shared
            # work is visible rather than disguised as a fast hit.
            if not lock.acquire(blocking=False):
                with tracer.span("cache.wait"):
                    lock.acquire()
                self.cache.count_inflight_wait()
                self._metrics["inflight_waits"].inc()
            try:
                with tracer.span("cache.lookup") as span:
                    cached = self.cache.get(key)
                    span.set_attr("hit", cached is not None)
                if cached is not None:
                    self._metrics["cache_hits"].inc()
                    if (
                        cached.database_version is not None
                        and db_entry.version > cached.database_version
                    ):
                        # The global version moved on but the read-set's
                        # sub-vector key survived: legacy whole-version
                        # invalidation would have recomputed this.
                        self.cache.count_provenance_save()
                        self._metrics["provenance_saves"].inc()
                    return self._from_cache(
                        request, resolved, db_entry, cached, arity, start
                    )
                self._metrics["cache_misses"].inc()
                collector = ProfileCollector()
                try:
                    computed = self._evaluate(
                        request, resolved, db_entry, arity, collector,
                        policy=policy, shard_plan=shard_plan,
                    )
                except FuelExhausted as exc:
                    return QueryResponse(
                        status=STATUS_FUEL,
                        query=resolved.name,
                        database=db_entry.name,
                        database_version=db_entry.version,
                        engine=resolved.engine,
                        steps=exc.steps,
                        fuel_budget=self._fuel_for(
                            request, resolved, db_entry
                        ),
                        error=str(exc),
                        wall_ms=(time.perf_counter() - start) * 1000.0,
                        tag=request.tag,
                        profile=self._finish_profile(
                            collector, resolved, db_entry, exc.steps
                        ),
                    )
                self.cache.put(key, computed)
            finally:
                lock.release()
        finally:
            self._release_key(key)

        wall_ms = (time.perf_counter() - start) * 1000.0
        return QueryResponse(
            status=STATUS_OK,
            query=resolved.name,
            database=db_entry.name,
            database_version=db_entry.version,
            # What actually ran ("ra" may have degraded to "nbe").
            engine=computed.engine,
            relation=computed.relation,
            normal_form=computed.normal_form,
            steps=computed.steps,
            stages=computed.stages,
            fuel_budget=computed.fuel_budget,
            cache_hit=False,
            wall_ms=wall_ms,
            compute_wall_ms=computed.compute_wall_ms,
            tag=request.tag,
            profile=computed.profile,
        )

    @staticmethod
    def _check_contract(
        resolved: _ResolvedQuery, db_entry: DatabaseEntry
    ) -> None:
        """Admission-time schema-contract check (TLI024): reject the
        (plan, database) pair before any evaluation when the database
        cannot satisfy the plan's read contract — the failure that used
        to surface as a stuck encoding at decode time."""
        if resolved.provenance is None:
            return
        mismatches, _ = check_schema_contract(
            resolved.provenance, database_schema(db_entry.database)
        )
        if mismatches:
            raise SchemaError(
                f"[TLI024] query {resolved.name!r} does not fit database "
                f"{db_entry.name!r}: " + "; ".join(mismatches)
            )

    @staticmethod
    def _version_key(
        resolved: _ResolvedQuery, db_entry: DatabaseEntry
    ):
        """The cache key's version component: the read-set's sub-vector
        of the per-relation version vector when the plan carries a
        provenance certificate, the global version otherwise."""
        if resolved.provenance is None:
            return db_entry.version
        return version_subvector(
            resolved.provenance,
            db_entry.database,
            db_entry.versions,
            db_entry.version,
        )

    def _evaluate(
        self,
        request: QueryRequest,
        resolved: _ResolvedQuery,
        db_entry: DatabaseEntry,
        arity: Optional[int],
        collector: ProfileCollector,
        *,
        policy: Optional[ShardPolicy] = None,
        shard_plan=None,
    ) -> CachedResult:
        tracer = self.tracer
        compute_start = time.perf_counter()
        if policy is not None and shard_plan is not None:
            return self._evaluate_sharded(
                request, resolved, db_entry, arity, policy, shard_plan
            )
        ran_engine = resolved.engine
        if resolved.engine == FIXPOINT_ENGINE:
            from repro.eval.ptime import run_fixpoint_query

            with tracer.span("evaluate", engine=resolved.engine) as span:
                try:
                    run = run_fixpoint_query(
                        resolved.fixpoint,
                        db_entry.database,
                        max_depth=request.max_depth,
                        observer=collector,
                    )
                finally:
                    self._annotate_evaluation(span, collector)
                span.set_attr("stages", run.stages)
            decoded, normal_form = run.decoded, run.normal_form
            steps: Optional[int] = run.nbe_steps
            stages: Optional[int] = run.stages
            fuel: Optional[int] = None
        elif (
            resolved.engine == RA_ENGINE and resolved.fixpoint is not None
        ):
            # The set-based fixpoint runner: RA stages on Python sets,
            # no lambda tower anywhere.
            with tracer.span("evaluate", engine=RA_ENGINE) as span:
                run = run_fixpoint_query_compiled(
                    resolved.fixpoint, db_entry.database
                )
                collector({"steps": run.nbe_steps})
                self._annotate_evaluation(span, collector)
                span.set_attr("stages", run.stages)
            self._compile_metrics["compile_requests"].inc(path="compiled")
            decoded, normal_form = run.decoded, run.normal_form
            steps = run.nbe_steps
            stages = run.stages
            fuel = None
        else:
            with tracer.span("fuel") as span:
                fuel = self._fuel_for(request, resolved, db_entry)
                span.set_attr("budget", fuel)
                span.set_attr(
                    "derived",
                    request.fuel is None and resolved.cost is not None,
                )
            with tracer.span("evaluate", engine=resolved.engine) as span:
                try:
                    result, ran_engine = self._evaluate_term(
                        request, resolved, db_entry, fuel, collector, span
                    )
                finally:
                    self._annotate_evaluation(span, collector)
            with tracer.span("decode"):
                decoded = decode_relation(result.normal_form, arity)
            normal_form = result.normal_form
            steps = result.steps
            stages = None
        compute_ms = (time.perf_counter() - compute_start) * 1000.0
        return CachedResult(
            relation=decoded.relation,
            decoded=decoded,
            normal_form=normal_form,
            engine=ran_engine,
            steps=steps,
            stages=stages,
            compute_wall_ms=compute_ms,
            fuel_budget=fuel,
            profile=self._finish_profile(collector, resolved, db_entry, steps),
            database_version=db_entry.version,
        )

    def _evaluate_term(
        self,
        request: QueryRequest,
        resolved: _ResolvedQuery,
        db_entry: DatabaseEntry,
        fuel: int,
        collector: ProfileCollector,
        span,
    ):
        """One in-process term evaluation, with the ``"ra"`` runtime
        fallback: a plan that cannot compile (or lacks the certified
        output arity) degrades to NBE — same relation, reduction
        semantics — and the degradation is counted and annotated rather
        than surfaced as an error."""
        engine = resolved.engine
        if engine == RA_ENGINE:
            try:
                result = evaluate_term_query(
                    resolved.term,
                    db_entry.encoded,
                    engine=engine,
                    fuel=fuel,
                    max_depth=request.max_depth,
                    observer=collector,
                    database=db_entry.database,
                    output_arity=resolved.output_arity,
                )
                self._compile_metrics["compile_requests"].inc(
                    path="compiled"
                )
                return result, engine
            except (CompileFallback, EvaluationError, SchemaError) as exc:
                self._compile_metrics["compile_runtime_fallbacks"].inc()
                self._compile_metrics["compile_requests"].inc(
                    path="fallback"
                )
                span.set_attr("compile_fallback", str(exc))
                engine = "nbe"
        result = evaluate_term_query(
            resolved.term,
            db_entry.encoded,
            engine=engine,
            fuel=fuel,
            max_depth=request.max_depth,
            observer=collector,
        )
        return result, engine

    # -- sharded evaluation --------------------------------------------------

    def _shard_dispatch(
        self,
        request: QueryRequest,
        resolved: _ResolvedQuery,
        db_entry: DatabaseEntry,
    ):
        """Resolve the request's shard policy against the plan's
        distribution classification.

        Returns ``(policy, plan)`` when the request wants sharding and the
        plan supports it, ``(None, None)`` otherwise (falling back to the
        in-process path, or raising when the policy says ``error``).
        """
        policy = request.shard_policy
        if policy is None and request.shards is not None:
            policy = ShardPolicy(shards=request.shards)
        if policy is None:
            return None, None
        plan = self._distribution_plan(resolved, db_entry)
        scanned = scanned_relation_names(
            resolved.provenance, db_entry.database
        )
        if scanned is not None:
            from repro.shard.planner import refine_distribution

            plan, _dropped = refine_distribution(plan, set(scanned))
        usable = False
        if plan.distributable:
            try:
                chosen = plan.choose_partition(db_entry.database)
                usable = set(chosen) <= set(db_entry.database.names)
            except ReproError:
                usable = False
        if not usable:
            self._shard_metrics["shard_requests"].inc(mode="local-only")
            if policy.fallback == FALLBACK_ERROR:
                raise ReproError(
                    f"[{plan.code}] query {resolved.name!r} is not "
                    f"shard-distributable: {plan.reason}"
                )
            with self.tracer.span(
                "shard.fallback", code=plan.code, reason=plan.reason
            ):
                pass
            return None, None
        self._shard_metrics["shard_requests"].inc(mode=plan.mode)
        return policy, plan

    def _distribution_plan(
        self, resolved: _ResolvedQuery, db_entry: DatabaseEntry
    ):
        """The (memoized) distribution classification of one plan against
        one database schema."""
        from repro.shard.planner import (
            DistributionPlan,
            MODE_LOCAL,
            CODE_LOCAL_ONLY,
            plan_distribution,
        )

        names = tuple(db_entry.database.names)
        key = (resolved.digest, names)
        with self._plan_cache_lock:
            plan = self._plan_cache.get(key)
            if plan is not None:
                self._plan_cache.move_to_end(key)
                return plan
        try:
            if resolved.fixpoint is not None:
                plan = plan_distribution(resolved.fixpoint)
            else:
                plan = plan_distribution(
                    resolved.term,
                    signature=resolved.signature,
                    input_names=names,
                )
        except ReproError as exc:
            plan = DistributionPlan(
                mode=MODE_LOCAL,
                kind="term" if resolved.term is not None else "fixpoint",
                partition_names=(),
                broadcast_names=names,
                code=CODE_LOCAL_ONLY,
                reason=f"distribution analysis failed: {exc}",
            )
        with self._plan_cache_lock:
            self._plan_cache[key] = plan
            self._plan_cache.move_to_end(key)
            while len(self._plan_cache) > PLAN_CACHE_CAPACITY:
                self._plan_cache.popitem(last=False)
        return plan

    def _shard_pool_for(self, policy: ShardPolicy):
        """The lazily-created shared worker pool, grown to the policy's
        shard count (capped at the service's ``shard_workers``)."""
        from repro.shard.pool import ShardWorkerPool

        wanted = policy.shards
        if self._shard_workers is not None:
            wanted = min(wanted, self._shard_workers)
        with self._shard_pool_lock:
            if self._closed:
                raise ReproError("service is closed")
            if self._shard_pool is None:
                self._shard_pool = ShardWorkerPool(
                    wanted, observer=self._shard_event
                )
            elif self._shard_pool.size < wanted:
                self._shard_pool.ensure_workers(wanted)
            self._shard_metrics["shard_workers"].set(self._shard_pool.size)
            return self._shard_pool

    def _record_compile_decision(self, decision: CompileDecision) -> None:
        """Catalog hook: fold registration-time compile decisions into
        the ``repro_compile_plans_total`` counter."""
        self._compile_metrics["compile_plans"].inc(
            status=decision.status, kind=decision.kind
        )

    def _shard_event(self, event: str) -> None:
        """Pool observer: fold worker-pool events into the registry."""
        metric = {
            "task": "shard_tasks",
            "retry": "shard_retries",
            "crash": "shard_crashes",
            "timeout": "shard_crashes",
            "degraded": "shard_degraded",
        }.get(event)
        if metric is not None:
            self._shard_metrics[metric].inc()

    def _evaluate_sharded(
        self,
        request: QueryRequest,
        resolved: _ResolvedQuery,
        db_entry: DatabaseEntry,
        arity: Optional[int],
        policy: ShardPolicy,
        shard_plan,
    ) -> CachedResult:
        from repro.shard.executor import (
            execute_sharded_fixpoint,
            execute_sharded_term,
        )

        compute_start = time.perf_counter()
        pool = self._shard_pool_for(policy)
        scanned = scanned_relation_names(
            resolved.provenance, db_entry.database
        )
        if resolved.fixpoint is not None and (
            resolved.engine in (FIXPOINT_ENGINE, RA_ENGINE)
        ):
            outcome = execute_sharded_fixpoint(
                pool=pool,
                tracer=self.tracer,
                policy=policy,
                plan=shard_plan,
                fixpoint=resolved.fixpoint,
                database=db_entry.database,
                db_digest=db_entry.digest,
                cost=resolved.cost,
                max_depth=request.max_depth,
            )
        else:
            outcome = execute_sharded_term(
                pool=pool,
                tracer=self.tracer,
                policy=policy,
                plan=shard_plan,
                term=resolved.term,
                engine=resolved.engine,
                database=db_entry.database,
                db_digest=db_entry.digest,
                arity=arity,
                cost=resolved.cost,
                fuel_override=request.fuel,
                default_fuel=DEFAULT_FUEL,
                max_depth=request.max_depth,
                scanned_names=scanned,
            )
        with self.tracer.span("decode"):
            decoded = decode_relation(outcome.normal_form, arity)
        fuels = [
            row["fuel"]
            for row in outcome.shard_rows
            if row.get("fuel") is not None
        ]
        compute_ms = (time.perf_counter() - compute_start) * 1000.0
        return CachedResult(
            relation=decoded.relation,
            decoded=decoded,
            normal_form=outcome.normal_form,
            engine=resolved.engine,
            steps=outcome.steps,
            stages=outcome.stages,
            compute_wall_ms=compute_ms,
            fuel_budget=max(fuels) if fuels else None,
            profile=self._shard_profile(
                outcome, resolved, db_entry, policy, shard_plan
            ),
            database_version=db_entry.version,
        )

    def _shard_profile(
        self,
        outcome,
        resolved: _ResolvedQuery,
        db_entry: DatabaseEntry,
        policy: ShardPolicy,
        shard_plan,
    ) -> dict:
        """The response profile of a sharded run: the full-database static
        bound plus the per-shard rows.  The gauge (and headline ratio) is
        the *worst per-shard* observed/bound ratio — each shard evaluation
        is a Theorem 5.1 run over its own shard database, so that is the
        ratio the theorem bounds by 1 (summing shard steps against the
        full-database bound would double-count broadcast work)."""
        bound: Optional[int] = None
        tightening: Optional[float] = None
        if resolved.cost is not None:
            stats = db_entry.stats
            if stats is None:
                stats = DatabaseStats.of(db_entry.database)
            bound = resolved.cost.bound(stats)
            tightening = self._note_tightening(resolved, stats)
        ratios = [
            row["bound_ratio"]
            for row in outcome.shard_rows
            if row.get("bound_ratio") is not None
        ]
        ratio = max(ratios) if ratios else None
        if ratio is not None:
            self._metrics["bound_ratio"].set(ratio, query=resolved.name)
        return {
            "steps": outcome.steps,
            "static_bound": bound,
            "bound_ratio": ratio,
            "tightening_ratio": tightening,
            "shard": outcome.profile_dict(policy, shard_plan),
        }

    # -- EXPLAIN ANALYZE -----------------------------------------------------

    def _explain_report(
        self,
        request: QueryRequest,
        response: QueryResponse,
        extras: Dict[str, object],
    ) -> dict:
        """One EXPLAIN-ANALYZE report: the static certificate side joined
        with the observed execution side.  Built for every request when a
        flight recorder is installed (the recorder decides retention) and
        returned on the response when ``explain=True`` was asked."""
        report: Dict[str, object] = {
            "trace_id": response.trace_id,
            "query": response.query,
            "database": response.database,
            "status": response.status,
            "explain_requested": bool(request.explain),
            "cache_key": response.cache_key,
            "wall_ms": round(response.wall_ms, 3),
            "tag": response.tag,
            "static": self._explain_static(extras),
            "observed": self._explain_observed(response),
        }
        if response.error:
            report["error"] = response.error
        return report

    def _explain_static(self, extras: Dict[str, object]) -> dict:
        """The certificate side: what the analyzers promised before the
        request ran (order, cost polynomial before/after tightening,
        read-set, distribution class)."""
        resolved = extras.get("resolved")
        db_entry = extras.get("db_entry")
        if not isinstance(resolved, _ResolvedQuery):
            return {}
        entry = db_entry if isinstance(db_entry, DatabaseEntry) else None
        key = (
            resolved.digest,
            resolved.name,
            resolved.engine,
            entry.name if entry is not None else None,
            entry.version if entry is not None else None,
        )
        cached = self._explain_static_cache.get(key)
        if cached is not None:
            static = dict(cached)
            return self._explain_static_request(static, extras)
        static = self._explain_static_base(resolved, entry)
        if len(self._explain_static_cache) >= 128:
            self._explain_static_cache.clear()
        self._explain_static_cache[key] = dict(static)
        return self._explain_static_request(static, extras)

    def _explain_static_base(
        self,
        resolved: "_ResolvedQuery",
        db_entry: Optional[DatabaseEntry],
    ) -> dict:
        """The memoizable part of the static section — everything that
        depends only on the resolved plan and the database version."""
        static: Dict[str, object] = {
            "query": resolved.name,
            "digest": resolved.digest[:12],
            "kind": "fixpoint" if resolved.fixpoint is not None else "term",
            "engine": resolved.engine,
            "order": resolved.order,
            "signature": (
                str(resolved.signature)
                if resolved.signature is not None
                else None
            ),
            "cost": (
                resolved.base_cost.describe()
                if resolved.base_cost is not None
                else None
            ),
            "tightened_cost": (
                resolved.cost.describe()
                if resolved.cost is not None
                and resolved.base_cost is not None
                and resolved.cost != resolved.base_cost
                else None
            ),
            "read_set": (
                resolved.provenance.describe()
                if resolved.provenance is not None
                else None
            ),
            "compile": (
                resolved.compiled.as_dict()
                if resolved.compiled is not None
                else None
            ),
        }
        if db_entry is not None and resolved.cost is not None:
            stats = db_entry.stats
            if stats is None:
                stats = DatabaseStats.of(db_entry.database)
            static["static_bound"] = resolved.cost.bound(stats)
            if (
                resolved.base_cost is not None
                and resolved.base_cost != resolved.cost
            ):
                base = resolved.base_cost.bound(stats)
                static["base_bound"] = base
                if base > 0:
                    static["tightening_ratio"] = round(
                        resolved.cost.bound(stats) / base, 6
                    )
        return static

    @staticmethod
    def _explain_static_request(
        static: Dict[str, object], extras: Dict[str, object]
    ) -> dict:
        """Per-request additions to the static section (the resolved
        distribution plan and shard policy vary with the request's
        ``shards`` ask, so they stay out of the memo)."""
        plan = extras.get("plan")
        if plan is not None:
            static["distribution"] = {
                "mode": getattr(plan, "mode", None),
                "code": getattr(plan, "code", None),
                "reason": getattr(plan, "reason", None),
            }
        policy = extras.get("policy")
        if isinstance(policy, ShardPolicy):
            static["shard_policy"] = {
                "shards": policy.shards,
                "partitioner": policy.partitioner,
            }
        return static

    @staticmethod
    def _explain_observed(response: QueryResponse) -> dict:
        """The execution side: what actually happened (engine, cache
        path, fuel vs. steps, reduction profile, per-shard rows)."""
        profile = response.profile or {}
        observed: Dict[str, object] = {
            "engine": response.engine,
            "cache_hit": response.cache_hit,
            "steps": response.steps,
            "stages": response.stages,
            "fuel_budget": response.fuel_budget,
            "wall_ms": round(response.wall_ms, 3),
            "compute_wall_ms": (
                round(response.compute_wall_ms, 3)
                if response.compute_wall_ms is not None
                else None
            ),
            "bound_ratio": profile.get("bound_ratio"),
            "tightening_ratio": profile.get("tightening_ratio"),
            "profile": profile or None,
        }
        shard = profile.get("shard")
        if isinstance(shard, dict):
            # Per-shard fuel split vs. observed steps, straight from the
            # coordinator's shard rows.
            observed["shards"] = [
                {
                    "shard": row.get("shard"),
                    "fuel": row.get("fuel"),
                    "steps": row.get("steps"),
                    "bound": row.get("bound"),
                    "bound_ratio": row.get("bound_ratio"),
                    "worker": row.get("worker"),
                    "retries": row.get("retries"),
                    "degraded": row.get("degraded"),
                }
                for row in shard.get("rows", [])
            ]
        return observed

    @staticmethod
    def _annotate_evaluation(span, collector: ProfileCollector) -> None:
        """Copy the collected step breakdown onto the evaluation span
        (runs in a ``finally``, so exhausted evaluations are annotated
        with their partial counts too)."""
        profile = collector.profile
        span.set_attr("steps", profile.steps)
        span.set_attr("beta", profile.beta)
        span.set_attr("delta", profile.delta)
        span.set_attr("let", profile.let)
        span.set_attr("quote", profile.quote)
        span.set_attr("max_depth", profile.max_depth)

    def _finish_profile(
        self,
        collector: ProfileCollector,
        resolved: _ResolvedQuery,
        db_entry: DatabaseEntry,
        steps: Optional[int],
    ) -> dict:
        """The response-facing profile: the collected breakdown plus the
        static cost bound and the observed/bound ratio (mirrored to the
        ``repro_steps_bound_ratio`` gauge)."""
        profile = collector.profile.as_dict()
        bound: Optional[int] = None
        tightening: Optional[float] = None
        if resolved.cost is not None:
            stats = db_entry.stats
            if stats is None:
                stats = DatabaseStats.of(db_entry.database)
            bound = resolved.cost.bound(stats)
            tightening = self._note_tightening(resolved, stats)
        ratio = bound_ratio(steps, bound)
        profile["static_bound"] = bound
        profile["bound_ratio"] = (
            round(ratio, 6) if ratio is not None else None
        )
        profile["tightening_ratio"] = tightening
        if ratio is not None:
            self._metrics["bound_ratio"].set(ratio, query=resolved.name)
        return profile

    def _note_tightening(
        self, resolved: _ResolvedQuery, stats: DatabaseStats
    ) -> Optional[float]:
        """When the effective profile is a tightened one, report how much
        sharper it is (tightened/syntactic bound, in (0, 1]) on the
        ``repro_cost_tightening_ratio`` gauge."""
        if (
            resolved.cost is None
            or resolved.base_cost is None
            or resolved.cost == resolved.base_cost
        ):
            return None
        base = resolved.base_cost.bound(stats)
        if base <= 0:
            return None
        ratio = resolved.cost.bound(stats) / base
        self._metrics["tightening"].set(ratio, query=resolved.name)
        return round(ratio, 6)

    @staticmethod
    def _fuel_for(
        request: QueryRequest,
        resolved: _ResolvedQuery,
        db_entry: DatabaseEntry,
    ) -> int:
        """The fuel this evaluation runs under: an explicit request budget
        wins; otherwise the plan's static cost certificate instantiated at
        the database's size statistics; otherwise the flat default."""
        if request.fuel is not None:
            return request.fuel
        stats = db_entry.stats
        if stats is None:
            stats = DatabaseStats.of(db_entry.database)
        return fuel_budget(resolved.cost, stats, default=DEFAULT_FUEL)

    def _from_cache(
        self,
        request: QueryRequest,
        resolved: _ResolvedQuery,
        db_entry: DatabaseEntry,
        cached: CachedResult,
        arity: Optional[int],
        start: float,
    ) -> QueryResponse:
        if arity is not None and cached.relation.arity != arity:
            raise ReproError(
                f"query {resolved.name!r} produced arity "
                f"{cached.relation.arity}, request asserts {arity}"
            )
        return QueryResponse(
            status=STATUS_OK,
            query=resolved.name,
            database=db_entry.name,
            database_version=db_entry.version,
            engine=cached.engine,
            relation=cached.relation,
            normal_form=cached.normal_form,
            steps=cached.steps,
            stages=cached.stages,
            fuel_budget=cached.fuel_budget,
            cache_hit=True,
            wall_ms=(time.perf_counter() - start) * 1000.0,
            compute_wall_ms=cached.compute_wall_ms,
            tag=request.tag,
            profile=cached.profile,
        )

    # -- database updates ----------------------------------------------------

    def update_database(self, name: str, database: Database) -> DatabaseEntry:
        """Replace a registered database and invalidate cached results
        relation-granularly: only entries whose read-set intersects the
        relations that actually changed (plus legacy whole-version and
        wildcard-keyed entries) are dropped — results of plans that never
        scan the touched relations survive with their keys still valid.
        """
        previous = self.catalog.get_database(name).database
        entry = self.catalog.update_database(name, database)
        touched = set(previous.names) ^ set(database.names)
        for rel_name in set(previous.names) & set(database.names):
            if previous[rel_name] != database[rel_name]:
                touched.add(rel_name)
        self.cache.invalidate_relations(name, touched)
        return entry

    def apply_update(
        self, name: str, updates: "Dict[str, Relation]"
    ) -> DatabaseEntry:
        """Apply a per-relation update (the relation-granular fast path):
        the catalog bumps only the touched relations' versions, and only
        cache entries reading those relations are invalidated."""
        entry, touched = self.catalog.apply(name, updates)
        self.cache.invalidate_relations(name, touched)
        return entry

    # -- plumbing ------------------------------------------------------------

    def _acquire_key(self, key: CacheKey) -> threading.Lock:
        with self._inflight_guard:
            lock, count = self._inflight.get(key, (None, 0))
            if lock is None:
                lock = threading.Lock()
            self._inflight[key] = (lock, count + 1)
            return lock

    def _release_key(self, key: CacheKey) -> None:
        with self._inflight_guard:
            lock, count = self._inflight[key]
            if count <= 1:
                del self._inflight[key]
            else:
                self._inflight[key] = (lock, count - 1)

    def _observe(
        self, response: QueryResponse, *, exemplar_recorded: bool = False
    ) -> None:
        """Fold one finished response into the registry (and the slow-query
        log).  Called for every response, including synthesized timeout
        responses — matching the pre-registry counting semantics.

        ``exemplar_recorded`` marks responses whose explain report the
        flight recorder retained: their trace id is stamped onto the
        latency histogram bucket as an exemplar, so a p99 bucket links
        to a retrievable flight record.
        """
        metrics = self._metrics
        metrics["requests"].inc(status=response.status)
        metrics["latency"].observe(
            response.wall_ms,
            exemplar=(
                response.trace_id
                if exemplar_recorded and response.trace_id
                else None
            ),
        )
        if response.steps and not response.cache_hit:
            metrics["engine_steps"].inc(
                response.steps, engine=response.engine
            )
        threshold = self.slow_query_ms
        if threshold is not None and response.wall_ms >= threshold:
            metrics["slow_queries"].inc()
            slow_logger.warning(
                "slow query %s@%s: %.1fms >= %.1fms "
                "(status=%s engine=%s cache_hit=%s steps=%s tag=%s "
                "trace_id=%s cache_key=%s)",
                response.query,
                response.database,
                response.wall_ms,
                threshold,
                response.status,
                response.engine,
                response.cache_hit,
                response.steps,
                response.tag,
                response.trace_id,
                response.cache_key,
                extra={
                    "query": response.query,
                    "database": response.database,
                    "wall_ms": round(response.wall_ms, 3),
                    "threshold_ms": threshold,
                    "status": response.status,
                    "engine": response.engine,
                    "cache_hit": response.cache_hit,
                    "steps": response.steps,
                    "tag": response.tag,
                    "trace_id": response.trace_id,
                    "cache_key": response.cache_key,
                },
            )

    def _timed_out(
        self, request: QueryRequest, wall_ms: float
    ) -> QueryResponse:
        response = QueryResponse(
            status=STATUS_TIMEOUT,
            query=self._query_label(request),
            database=self._database_label(request),
            database_version=0,
            engine=request.engine or "?",
            error=f"request missed its {request.timeout_s}s deadline",
            wall_ms=wall_ms,
            tag=request.tag,
            trace_id=request.trace_id,
        )
        self._observe(response)
        return response

    @staticmethod
    def _query_label(request: QueryRequest) -> str:
        return (
            request.query
            if isinstance(request.query, str)
            else f"<inline {type(request.query).__name__}>"
        )

    @staticmethod
    def _database_label(request: QueryRequest) -> str:
        return (
            request.database
            if isinstance(request.database, str)
            else "@inline"
        )


def run_once(
    query: Term,
    database: Database,
    *,
    arity: Optional[int] = None,
    engine: str = "nbe",
    fuel: int = DEFAULT_FUEL,
    max_depth: int = DEFAULT_MAX_DEPTH,
):
    """The uncached one-shot path: encode, apply, normalize, decode.

    This is what :func:`repro.eval.driver.run_query` wraps; the engine name
    is validated *before* the database is encoded.
    """
    validate_engine(engine)
    encoded = encode_database(database)
    result = evaluate_term_query(
        query,
        encoded,
        engine=engine,
        fuel=fuel,
        max_depth=max_depth,
        database=database,
        output_arity=arity,
    )
    decoded = decode_relation(result.normal_form, arity)
    return decoded, result
