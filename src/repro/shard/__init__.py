"""Sharded execution: partition-parallel query evaluation (Definition 3.1).

The paper encodes every relation as a *fold over its tuple list*, and folds
distribute over list concatenation: for any tuple-local step ``s``,

    fold(s, z, xs ++ ys) = fold(s, fold(s, z, ys), xs)

so a selection/projection/union-shaped plan — and each stage map of the
Theorem 5.2 fixpoint evaluator — can be evaluated shard-by-shard and the
shard outputs merged, with the Theorem 5.1 cost certificate splitting
additively over the shard statistics.  This package makes that concrete:

* :mod:`repro.shard.partition` — deterministic hash / round-robin
  partitioners splitting a :class:`~repro.db.relations.Database` into ``k``
  shard databases, plus the canonical merge/dedup combiner;
* :mod:`repro.shard.planner` — the per-plan distribution analyzer
  (``partitionable`` / ``broadcast`` / ``local-only``) layered on
  :mod:`repro.analysis`, with per-shard fuel derivation;
* :mod:`repro.shard.pool` — the persistent ``multiprocessing`` worker pool
  with warm per-worker snapshots, health checks, crash recovery, and
  graceful degradation to in-process evaluation;
* :mod:`repro.shard.executor` — the coordinator gluing the three together
  for the service runtime (``QueryRequest.shards`` / :class:`ShardPolicy`).
"""

from repro.shard.partition import (
    PARTITIONERS,
    canonical_relation,
    merge_relations,
    partition_database,
    partition_relation,
    shard_index,
)
from repro.shard.planner import (
    MODE_BROADCAST,
    MODE_LOCAL,
    MODE_PARTITIONABLE,
    DistributionPlan,
    plan_distribution,
    plan_fixpoint_distribution,
    plan_term_distribution,
    refine_distribution,
    shard_fuel,
)
from repro.shard.policy import ShardPolicy
from repro.shard.pool import ShardWorkerPool, WorkerCrash

__all__ = [
    "DistributionPlan",
    "MODE_BROADCAST",
    "MODE_LOCAL",
    "MODE_PARTITIONABLE",
    "PARTITIONERS",
    "ShardPolicy",
    "ShardWorkerPool",
    "WorkerCrash",
    "canonical_relation",
    "merge_relations",
    "partition_database",
    "partition_relation",
    "plan_distribution",
    "plan_fixpoint_distribution",
    "plan_term_distribution",
    "refine_distribution",
    "shard_fuel",
    "shard_index",
]
