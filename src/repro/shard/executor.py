"""The shard coordinator: partition → fan out → canonical merge.

This is the piece the service runtime calls when a request carries a
:class:`~repro.shard.policy.ShardPolicy`.  It owns no state — the pool,
tracer and metrics belong to the service — and returns a
:class:`ShardOutcome` whose relation/normal form are in canonical order
(the merge combiner's order), with a per-shard profile carrying each
shard's observed steps against its own Theorem 5.1 bound.

Two drivers:

* :func:`execute_sharded_term` — one task per shard, single round.
* :func:`execute_sharded_fixpoint` — the coordinator runs the Theorem 5.2
  stage loop; each stage fans the step evaluation out over the shards with
  the current stage relation broadcast as ``__FIX__``, merges, and checks
  convergence globally (the stage barrier is what makes broadcast of the
  fixpoint variable sound).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.cost import CostProfile, DatabaseStats
from repro.db.encode import encode_relation
from repro.db.relations import Database, Relation
from repro.errors import FuelExhausted, ReproError
from repro.lam.terms import Term
from repro.obs.profiler import bound_ratio
from repro.obs.tracing import Span, Tracer
from repro.queries.fixpoint import FIX_NAME, FixpointQuery
from repro.shard.partition import merge_relations, partition_database
from repro.shard.planner import DistributionPlan, shard_fuel
from repro.shard.policy import ShardPolicy
from repro.shard.pool import ShardWorkerPool


@dataclass
class ShardOutcome:
    """The merged result of one sharded evaluation."""

    relation: Relation
    normal_form: Term
    steps: int
    stages: Optional[int]
    partitioned: Tuple[str, ...]
    shard_rows: List[dict] = field(default_factory=list)

    @property
    def degraded_tasks(self) -> int:
        return sum(1 for row in self.shard_rows if row.get("degraded"))

    def profile_dict(self, policy: ShardPolicy, plan: DistributionPlan) -> dict:
        return {
            "mode": plan.mode,
            "code": plan.code,
            "shards": policy.shards,
            "partitioner": policy.partitioner,
            "partitioned": list(self.partitioned),
            "degraded_tasks": self.degraded_tasks,
            "rows": self.shard_rows,
        }


def _snapshot_key(
    db_digest: str,
    policy: ShardPolicy,
    partitioned: Sequence[str],
    index: int,
) -> str:
    # Deterministic function of (source digest, split spec, shard index):
    # partitioning is deterministic, so equal keys imply equal snapshots
    # and the worker-side cache can be trusted across requests.
    return (
        f"{db_digest}#k{policy.shards}:{policy.partitioner}"
        f":{','.join(partitioned)}:{index}"
    )


def _partition(
    database: Database,
    db_digest: str,
    policy: ShardPolicy,
    plan: DistributionPlan,
    tracer: Tracer,
) -> Tuple[Tuple[Database, ...], Tuple[str, ...], List[str]]:
    with tracer.span(
        "shard.partition",
        shards=policy.shards,
        partitioner=policy.partitioner,
        mode=plan.mode,
    ) as span:
        partitioned = plan.choose_partition(database)
        shards = partition_database(
            database,
            policy.shards,
            partitioner=policy.partitioner,
            partition_names=partitioned,
        )
        span.set_attr("partitioned", ",".join(partitioned))
        keys = [
            _snapshot_key(db_digest, policy, partitioned, index)
            for index in range(policy.shards)
        ]
    return shards, partitioned, keys


def _shard_input_tuples(
    shard: Database, partitioned: Sequence[str]
) -> int:
    return sum(len(shard[name]) for name in partitioned)


def _attach_trace(tasks: Sequence[dict], span) -> None:
    """Ship the coordinator's trace context with every task (only when
    tracing is on — ``span`` is the live ``shard.evaluate`` span the
    worker subtrees parent under)."""
    if not isinstance(span, Span):
        return
    for index, task in enumerate(tasks):
        task["trace"] = {
            "trace_id": span.trace_id,
            "parent_id": span.span_id,
            "shard": index,
        }


def _graft_worker_spans(
    tracer: Tracer, span, replies: Sequence[dict]
) -> None:
    """Merge the span lists the workers shipped back into the
    coordinator's exporters (one tree spanning both processes)."""
    if not isinstance(span, Span):
        return
    for reply in replies:
        spans = reply.get("spans")
        if spans:
            tracer.ingest(spans)


def _synthesize_respawns(
    tracer: Tracer, span, retries_by_shard: Dict[int, dict]
) -> None:
    """Emit one ``shard.respawn`` span per shard that needed retries.

    A crashed worker's recorded spans die with it, so the crash-recovery
    path is represented explicitly: the retry's worker spans plus this
    coordinator-side marker, never a silently dropped subtree.
    """
    if not isinstance(span, Span):
        return
    for index, meta in sorted(retries_by_shard.items()):
        retries = int(meta.get("retries") or 0)
        if retries <= 0:
            continue
        tracer.ingest(
            [
                {
                    "name": "shard.respawn",
                    "span_id": tracer.new_span_id(),
                    "parent_id": span.span_id,
                    "trace_id": span.trace_id,
                    "status": "ok",
                    "start_unix": round(time.time(), 6),
                    "duration_ms": 0.0,
                    "attrs": {
                        "shard": index,
                        "retries": retries,
                        "degraded": bool(meta.get("degraded")),
                    },
                }
            ]
        )


def _check_reply(reply: dict, shard: int) -> None:
    if reply.get("ok"):
        return
    if reply.get("error_kind") == "fuel":
        raise FuelExhausted(int(reply.get("steps") or 0))
    raise ReproError(
        f"shard {shard} failed: {reply.get('error', 'unknown error')}"
    )


def execute_sharded_term(
    *,
    pool: ShardWorkerPool,
    tracer: Tracer,
    policy: ShardPolicy,
    plan: DistributionPlan,
    term: Term,
    engine: str,
    database: Database,
    db_digest: str,
    arity: Optional[int],
    cost: Optional[CostProfile],
    fuel_override: Optional[int],
    default_fuel: int,
    max_depth: int,
    scanned_names: Optional[Sequence[str]] = None,
) -> ShardOutcome:
    """Partition, evaluate the term plan per shard, canonically merge.

    ``scanned_names`` (the plan's exact read-set, TLI026) restricts only
    the *fuel pricing* to the relations the plan scans; the per-shard
    bound rows keep the full shard statistics, so the reported
    ``bound_ratio`` stays a Theorem 5.1 comparison.
    """
    shards, partitioned, keys = _partition(
        database, db_digest, policy, plan, tracer
    )
    fuels = [
        fuel_override
        if fuel_override is not None
        else shard_fuel(
            cost, shard, default=default_fuel, scanned_names=scanned_names
        )
        for shard in shards
    ]
    tasks = [
        {
            "kind": "term",
            "db_digest": keys[index],
            "database": shards[index],
            "term": term,
            "engine": engine,
            "fuel": fuels[index],
            "max_depth": max_depth,
            "arity": arity,
        }
        for index in range(policy.shards)
    ]
    with tracer.span(
        "shard.evaluate", engine=engine, tasks=len(tasks)
    ) as span:
        _attach_trace(tasks, span)
        replies = pool.run_batch(tasks, timeout_s=policy.task_timeout_s)
        span.set_attr(
            "retries", sum(r["_meta"]["retries"] for r in replies)
        )
        span.set_attr(
            "degraded", sum(1 for r in replies if r["_meta"]["degraded"])
        )
        _graft_worker_spans(tracer, span, replies)
        _synthesize_respawns(
            tracer,
            span,
            {i: r["_meta"] for i, r in enumerate(replies)},
        )
    rows: List[dict] = []
    parts: List[Relation] = []
    total_steps = 0
    for index, reply in enumerate(replies):
        _check_reply(reply, index)
        steps = int(reply.get("steps") or 0)
        total_steps += steps
        parts.append(
            Relation.from_tuples(reply["arity"], reply["tuples"])
        )
        bound = (
            cost.bound(DatabaseStats.of(shards[index]))
            if cost is not None
            else None
        )
        ratio = bound_ratio(steps, bound)
        rows.append(
            {
                "shard": index,
                "input_tuples": _shard_input_tuples(
                    shards[index], partitioned
                ),
                "output_tuples": len(reply["tuples"]),
                "steps": steps,
                "fuel": fuels[index],
                "bound": bound,
                "bound_ratio": (
                    round(ratio, 6) if ratio is not None else None
                ),
                "worker": reply["_meta"]["worker"],
                "retries": reply["_meta"]["retries"],
                "degraded": reply["_meta"]["degraded"],
            }
        )
    with tracer.span("shard.merge", parts=len(parts)) as span:
        merged = merge_relations(parts, arity=arity)
        span.set_attr("tuples", len(merged))
        normal_form = encode_relation(merged)
    return ShardOutcome(
        relation=merged,
        normal_form=normal_form,
        steps=total_steps,
        stages=None,
        partitioned=partitioned,
        shard_rows=rows,
    )


def execute_sharded_fixpoint(
    *,
    pool: ShardWorkerPool,
    tracer: Tracer,
    policy: ShardPolicy,
    plan: DistributionPlan,
    fixpoint: FixpointQuery,
    database: Database,
    db_digest: str,
    cost: Optional[CostProfile],
    max_depth: int,
) -> ShardOutcome:
    """Run the stage loop with each stage's step fanned over the shards.

    Per stage: evaluate ``effective_step`` over every shard database with
    the current (global) stage relation bound to ``__FIX__``, merge the
    shard outputs, and stop when the merged stage repeats — the same
    convergence rule :func:`repro.eval.ptime.run_fixpoint_query` applies,
    here checked on the canonical merged relation.  The stage count is
    capped at the Crank length ``|D|^k`` (Section 4), which bounds even
    non-inflationary, non-monotone steps.
    """
    arity = fixpoint.output_arity
    shards, partitioned, keys = _partition(
        database, db_digest, policy, plan, tracer
    )
    step = fixpoint.effective_step()
    crank_length = len(database.active_domain()) ** arity
    stage = Relation.empty(arity)
    per_shard_steps: Dict[int, int] = {i: 0 for i in range(policy.shards)}
    per_shard_retries: Dict[int, int] = {i: 0 for i in range(policy.shards)}
    per_shard_degraded: Dict[int, bool] = {
        i: False for i in range(policy.shards)
    }
    total_steps = 0
    stages_run = 0
    start = time.perf_counter()
    with tracer.span(
        "shard.evaluate", engine="fixpoint", tasks=policy.shards
    ) as span:
        for stage_index in range(crank_length):
            tasks = [
                {
                    "kind": "ra",
                    "db_digest": keys[index],
                    "database": shards[index],
                    "expr": step,
                    "fix_name": FIX_NAME,
                    "fix_tuples": stage.tuples,
                    "fix_arity": arity,
                    "max_depth": max_depth,
                }
                for index in range(policy.shards)
            ]
            if stage_index == 0:
                # Only the first stage ships trace context: per-shard
                # worker spans for every stage would blow the span volume
                # up linearly in the crank length, and stage 0 already
                # shows the cold/warm snapshot split.
                _attach_trace(tasks, span)
            replies = pool.run_batch(
                tasks, timeout_s=policy.task_timeout_s
            )
            _graft_worker_spans(tracer, span, replies)
            parts: List[Relation] = []
            for index, reply in enumerate(replies):
                _check_reply(reply, index)
                steps = int(reply.get("steps") or 0)
                per_shard_steps[index] += steps
                total_steps += steps
                per_shard_retries[index] += reply["_meta"]["retries"]
                per_shard_degraded[index] |= reply["_meta"]["degraded"]
                parts.append(
                    Relation.from_tuples(reply["arity"], reply["tuples"])
                )
            merged = merge_relations(parts, arity=arity)
            stages_run += 1
            if merged == stage:
                break
            stage = merged
        span.set_attr("stages", stages_run)
        span.set_attr("steps", total_steps)
        span.set_attr(
            "degraded", sum(1 for d in per_shard_degraded.values() if d)
        )
        span.set_attr("wall_ms", round(
            (time.perf_counter() - start) * 1000.0, 3
        ))
        _synthesize_respawns(
            tracer,
            span,
            {
                index: {
                    "retries": per_shard_retries[index],
                    "degraded": per_shard_degraded[index],
                }
                for index in range(policy.shards)
            },
        )
    rows: List[dict] = []
    for index in range(policy.shards):
        bound = (
            cost.bound(DatabaseStats.of(shards[index]))
            if cost is not None
            else None
        )
        ratio = bound_ratio(per_shard_steps[index], bound)
        rows.append(
            {
                "shard": index,
                "input_tuples": _shard_input_tuples(
                    shards[index], partitioned
                ),
                "steps": per_shard_steps[index],
                "fuel": None,
                "bound": bound,
                "bound_ratio": (
                    round(ratio, 6) if ratio is not None else None
                ),
                "worker": index % pool.size,
                "retries": per_shard_retries[index],
                "degraded": per_shard_degraded[index],
            }
        )
    with tracer.span("shard.merge", parts=policy.shards) as span:
        span.set_attr("tuples", len(stage))
        normal_form = encode_relation(stage)
    return ShardOutcome(
        relation=stage,
        normal_form=normal_form,
        steps=total_steps,
        stages=stages_run,
        partitioned=partitioned,
        shard_rows=rows,
    )
