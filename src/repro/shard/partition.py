"""Deterministic database partitioners and the canonical merge combiner.

A partition of a list-represented relation (Definition 3.4) is a split of
its tuple *list* into ``k`` disjoint sublists, each keeping the original
relative order — concatenating the shards back in shard order is a
permutation-free identity for the round-robin partitioner and a stable
reshuffle for the hash partitioner.  Either way the *set* is preserved,
which is what fold/concatenation distributivity needs:

    R (as a fold)  =  merge(R_0, ..., R_{k-1})

The merge combiner re-canonicalizes: shard evaluation produces the same
tuple set as single-shard evaluation but in a shard-interleaved order, so
both sides are compared (and cached) in the canonical sorted order
:meth:`repro.db.relations.Relation.from_any_order` defines — the same
ordering the catalog digest fixes tuple lists against.

Hash assignment must be stable across *processes* (workers verify their
slice against the coordinator's), so it uses CRC-32 over a length-prefixed
serialization of the row — never Python's randomized ``hash()``.
"""

from __future__ import annotations

import zlib
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.db.relations import Database, Relation, TupleValue
from repro.errors import ReproError

#: The registered partitioner names.
PARTITIONER_HASH = "hash"
PARTITIONER_ROUND_ROBIN = "round_robin"
PARTITIONERS: Tuple[str, ...] = (PARTITIONER_HASH, PARTITIONER_ROUND_ROBIN)


def _row_bytes(row: TupleValue) -> bytes:
    # Length-prefixed, so constants containing separator characters cannot
    # shift a boundary (same framing idea as the catalog digest).
    parts = []
    for value in row:
        encoded = value.encode()
        parts.append(b"%d:%s," % (len(encoded), encoded))
    return b"".join(parts)


def shard_index(row: Sequence[str], shards: int) -> int:
    """The hash shard a tuple lands on: CRC-32 of the framed row, mod k.

    Deterministic across processes and platforms (CRC-32 is fully
    specified), so coordinator and workers always agree.
    """
    return zlib.crc32(_row_bytes(tuple(row))) % shards


def partition_relation(
    relation: Relation,
    shards: int,
    *,
    partitioner: str = PARTITIONER_HASH,
) -> Tuple[Relation, ...]:
    """Split one relation into ``shards`` disjoint sub-relations.

    Every input tuple lands on exactly one shard, keeping its relative
    order within the shard; the union of the shards is the input.
    """
    if shards < 1:
        raise ReproError(f"shards must be >= 1, got {shards}")
    buckets: List[List[TupleValue]] = [[] for _ in range(shards)]
    if partitioner == PARTITIONER_HASH:
        for row in relation.tuples:
            buckets[shard_index(row, shards)].append(row)
    elif partitioner == PARTITIONER_ROUND_ROBIN:
        for position, row in enumerate(relation.tuples):
            buckets[position % shards].append(row)
    else:
        raise ReproError(
            f"unknown partitioner {partitioner!r}; known: {PARTITIONERS}"
        )
    return tuple(
        Relation.from_tuples(relation.arity, bucket) for bucket in buckets
    )


def partition_database(
    database: Database,
    shards: int,
    *,
    partitioner: str = PARTITIONER_HASH,
    partition_names: Optional[Iterable[str]] = None,
) -> Tuple[Database, ...]:
    """Split a database into ``shards`` shard databases.

    Relations named in ``partition_names`` are split; all others are
    *broadcast* (replicated in full on every shard — the planner's
    ``broadcast`` mode keeps the small side of a join whole this way).
    ``partition_names=None`` splits every relation.
    """
    split = (
        set(database.names)
        if partition_names is None
        else set(partition_names)
    )
    unknown = split - set(database.names)
    if unknown:
        raise ReproError(
            f"cannot partition unknown relation(s) {sorted(unknown)}; "
            f"known: {database.names}"
        )
    pieces = {
        name: partition_relation(relation, shards, partitioner=partitioner)
        for name, relation in database
        if name in split
    }
    return tuple(
        database.map_relations(
            lambda name, relation, i=i: (
                pieces[name][i] if name in pieces else relation
            )
        )
        for i in range(shards)
    )


def canonical_relation(relation: Relation) -> Relation:
    """The canonical (sorted) list-representation of a relation's set."""
    return relation.sorted()


def merge_relations(
    parts: Sequence[Relation], *, arity: Optional[int] = None
) -> Relation:
    """The canonical merge/dedup combiner.

    Returns the union of the shard outputs as a canonically ordered
    relation; by fold/concatenation distributivity this is tuple-for-tuple
    equal to :func:`canonical_relation` of the single-shard output.
    """
    if not parts:
        if arity is None:
            raise ReproError("merging zero shards needs an explicit arity")
        return Relation.empty(arity)
    merged_arity = arity if arity is not None else parts[0].arity
    for part in parts:
        if part.arity != merged_arity:
            raise ReproError(
                f"cannot merge shard outputs of arities "
                f"{sorted({p.arity for p in parts})}"
            )
    rows: List[TupleValue] = []
    for part in parts:
        rows.extend(part.tuples)
    return Relation.from_any_order(merged_arity, rows)
