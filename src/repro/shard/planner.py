"""The per-plan distribution analyzer (partitionable / broadcast / local).

Soundness criterion.  Let ``P`` be a set of input relations to split and
``D = D_0 ∪ ... ∪ D_{k-1}`` the shard databases (``P``-members split,
everything else replicated).  A plan ``Q`` is *``P``-distributive* when

    Q(D) = merge(Q(D_0), ..., Q(D_{k-1}))

with ``merge`` the canonical dedup combiner of
:mod:`repro.shard.partition`.  Definition 3.1 encodes relations as folds
over tuple lists, and folds distribute over concatenation, so the analyzer
only has to check that every ``P``-member is consumed *tuple-locally* —
once, linearly, never joined against another ``P``-member and never under
an order-global or whole-database operator.

Two plan shapes are analyzed:

* **Fixpoint plans** (:class:`~repro.queries.fixpoint.FixpointQuery`) at
  the relational-algebra level of their step expression.  The fixpoint
  variable ``__FIX__`` is always broadcast (each Theorem 5.2 stage is a
  global barrier); unions, selections and projections recurse; a
  product/intersection may touch ``P`` on one side only (the other side is
  replicated — ``∪_i (L_i × S) = L × S`` but ``∪_i (L_i × S_i) ≠ L × S``);
  a difference may touch ``P`` on its left only; ``adom()`` depends on
  every relation of the shard and ``precedes(X)`` is order-global in
  ``X``, so both veto any ``P`` they touch.

* **Term plans** at the level of their *normal form*: the plan is
  NBE-normalized (data-independent, fuel-capped) and the body must fit a
  conservative chain grammar in which every branch terminates at the
  current accumulator, spine heads are limited to the output constructor,
  ``Eq``, and input relations, and no split input is folded *inside*
  another split input's loop (parallel repeat folds concatenate and are
  fine; nested ones are sharded self-joins).  This rejects exactly the
  shapes that break distributivity: plans that drop the accumulator
  (``TLI004``-style first-element folds), re-iterate an input from inside
  its own loop (``distinct_*`` / ``precedes`` / ``order`` operators nest
  their input's folds), or apply relations in non-fold positions.

Classification tries ``P = {all inputs}`` first (``partitionable``), then
falls back to single-relation candidates (``broadcast`` — the executor
splits the largest candidate and replicates the rest), then ``local-only``
with the stable diagnostic code ``TLI018`` (``TLI017`` is the positive
certificate).  Per-shard fuel comes from splitting the Theorem 5.1 cost
certificate over the shard's own :class:`~repro.analysis.cost.DatabaseStats`
— the bound is monotone in the statistics, so each shard budget is at most
the single-shard budget.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    AbstractSet,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
    Union as TUnion,
)

from repro.analysis.analyzer import fuel_budget
from repro.analysis.cost import CostProfile, DatabaseStats
from repro.db.relations import Database
from repro.errors import ReproError
from repro.lam.nbe import nbe_normalize
from repro.lam.terms import (
    Abs,
    Const,
    EqConst,
    Term,
    Var,
    binder_prefix,
    spine,
)
from repro.queries.fixpoint import FIX_NAME, FixpointQuery
from repro.queries.language import QueryArity
from repro.relalg.ast import (
    ADOM_NAME,
    PRECEDES_PREFIX,
    Base,
    Difference,
    Intersection,
    Product,
    Project,
    RAExpr,
    Select,
    Union,
)

#: Distribution modes.
MODE_PARTITIONABLE = "partitionable"
MODE_BROADCAST = "broadcast"
MODE_LOCAL = "local-only"

#: Stable diagnostic codes (registered in repro.analysis.diagnostics).
CODE_DISTRIBUTABLE = "TLI017"
CODE_LOCAL_ONLY = "TLI018"


@dataclass(frozen=True)
class DistributionPlan:
    """The analyzer's verdict for one plan.

    ``partition_names`` is the set to split in ``partitionable`` mode, or
    the *candidates* in ``broadcast`` mode (any single one may be split;
    :meth:`choose_partition` picks the largest against a concrete
    database).  ``broadcast_names`` is everything else.
    """

    mode: str
    kind: str  # "term" | "fixpoint"
    partition_names: Tuple[str, ...]
    broadcast_names: Tuple[str, ...]
    code: str
    reason: str

    @property
    def distributable(self) -> bool:
        return self.mode != MODE_LOCAL

    def choose_partition(self, database: Database) -> Tuple[str, ...]:
        """The relations to actually split for ``database``."""
        if self.mode == MODE_PARTITIONABLE:
            return self.partition_names
        if self.mode == MODE_BROADCAST:
            present = [
                name for name in self.partition_names if name in database
            ]
            if not present:
                raise ReproError(
                    f"no broadcast-mode candidate of {self.partition_names} "
                    f"is present in the database"
                )
            return (max(present, key=lambda name: len(database[name])),)
        raise ReproError("a local-only plan has no partitioning")

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "kind": self.kind,
            "partition_names": list(self.partition_names),
            "broadcast_names": list(self.broadcast_names),
            "code": self.code,
            "reason": self.reason,
        }


# ---------------------------------------------------------------------------
# Relational-algebra level (fixpoint steps)
# ---------------------------------------------------------------------------

def _ra_mentions(expr: RAExpr) -> FrozenSet[str]:
    if isinstance(expr, Base):
        return frozenset((expr.name,))
    if isinstance(expr, (Union, Intersection, Difference, Product)):
        return _ra_mentions(expr.left) | _ra_mentions(expr.right)
    if isinstance(expr, Project):
        return _ra_mentions(expr.inner)
    if isinstance(expr, Select):
        return _ra_mentions(expr.inner)
    raise TypeError(f"not an RA expression: {expr!r}")


def _ra_touches(expr: RAExpr, pset: FrozenSet[str]) -> bool:
    """Does ``expr`` depend on how a ``pset`` member is sharded?"""
    for name in _ra_mentions(expr):
        if name in pset:
            return True
        if name == ADOM_NAME and pset:
            # The active domain is computed over the *shard*, which lacks
            # the other shards' constants of every split relation.
            return True
        if (
            name.startswith(PRECEDES_PREFIX)
            and name[len(PRECEDES_PREFIX):] in pset
        ):
            # The list order of X is a property of the whole list.
            return True
    return False


def _ra_distributive(expr: RAExpr, pset: FrozenSet[str]) -> bool:
    """Is ``expr`` ``pset``-distributive (see the module docstring)?"""
    if not _ra_touches(expr, pset):
        return True  # shard-invariant: every shard computes the same value
    if isinstance(expr, Base):
        # Touching Base: either a pset member itself (∪_i X_i = X, fine)
        # or adom()/precedes(X) over a pset member (order/domain-global).
        return expr.name in pset
    if isinstance(expr, Union):
        return _ra_distributive(expr.left, pset) and _ra_distributive(
            expr.right, pset
        )
    if isinstance(expr, (Project, Select)):
        return _ra_distributive(expr.inner, pset)
    if isinstance(expr, (Product, Intersection)):
        left_touches = _ra_touches(expr.left, pset)
        right_touches = _ra_touches(expr.right, pset)
        if left_touches and right_touches:
            # Both sides would be split: ∪_i (L_i ⋈ R_i) ≠ L ⋈ R.
            return False
        side = expr.left if left_touches else expr.right
        return _ra_distributive(side, pset)
    if isinstance(expr, Difference):
        if _ra_touches(expr.right, pset):
            # ∪_i (L - R_i) over-approximates L - R.
            return False
        return _ra_distributive(expr.left, pset)
    return False


def plan_fixpoint_distribution(query: FixpointQuery) -> DistributionPlan:
    """Classify a fixpoint plan by analyzing its effective step.

    The stage relation (``__FIX__``) is always broadcast; only the input
    relations are candidates for splitting.
    """
    names = tuple(query.input_names())
    step = query.effective_step()
    full = frozenset(names)
    if full and _ra_distributive(step, full):
        return DistributionPlan(
            mode=MODE_PARTITIONABLE,
            kind="fixpoint",
            partition_names=names,
            broadcast_names=(FIX_NAME,),
            code=CODE_DISTRIBUTABLE,
            reason=(
                "every input is consumed tuple-locally by the step; "
                "all inputs split, stage relation broadcast"
            ),
        )
    candidates = tuple(
        name
        for name in names
        if _ra_distributive(step, frozenset((name,)))
    )
    if candidates:
        others = tuple(n for n in names if n not in candidates)
        return DistributionPlan(
            mode=MODE_BROADCAST,
            kind="fixpoint",
            partition_names=candidates,
            broadcast_names=others + (FIX_NAME,),
            code=CODE_DISTRIBUTABLE,
            reason=(
                f"step joins inputs; any one of "
                f"{', '.join(candidates)} may be split with the rest "
                f"replicated"
            ),
        )
    return DistributionPlan(
        mode=MODE_LOCAL,
        kind="fixpoint",
        partition_names=(),
        broadcast_names=names + (FIX_NAME,),
        code=CODE_LOCAL_ONLY,
        reason=(
            "no input is consumed tuple-locally (order-global, "
            "domain-global, or difference-right usage); evaluating "
            "in-process"
        ),
    )


# ---------------------------------------------------------------------------
# Term level (normalized chain grammar)
# ---------------------------------------------------------------------------

@dataclass
class _ChainScan:
    """Occurrence log of one structural scan of a normalized body."""

    ok: bool
    #: One entry per input-relation fold: (name, enclosing fold heads).
    occurrences: List[Tuple[str, FrozenSet[str]]]
    reason: str = ""

    def counts(self) -> dict:
        out: dict = {}
        for name, _ in self.occurrences:
            out[name] = out.get(name, 0) + 1
        return out

    def valid_for(self, pset: FrozenSet[str]) -> bool:
        if not self.ok:
            return False
        for name, enclosing in self.occurrences:
            if name in pset and enclosing & pset:
                # A split relation folded inside a split relation's loop
                # (its own, or another's) is a sharded self-join:
                # ∪_i (R_i ⋈ S_i) ≠ R ⋈ S.  *Parallel* repeat folds are
                # fine — the chain concatenates their contributions, and
                # each fold distributes over its input's shards on its
                # own, so the canonical merge unions them correctly.
                return False
        return True


def _is_atom(node: Term, inputs: FrozenSet[str], shadowed: FrozenSet[str]) -> bool:
    if isinstance(node, Const):
        return True
    if isinstance(node, Var):
        # A relation variable in an atom (tuple-component) position is not
        # a fold; reject so the scan stays conservative.
        return node.name in shadowed or node.name not in inputs
    return False


def _scan_chain(
    node: Term,
    *,
    cons: str,
    terminal: Optional[str],
    inputs: FrozenSet[str],
    enclosing: FrozenSet[str],
    shadowed: FrozenSet[str],
    scan: _ChainScan,
) -> bool:
    if (
        terminal is not None
        and isinstance(node, Var)
        and node.name == terminal
        and terminal not in shadowed
    ):
        return True
    head, args = spine(node)
    if isinstance(head, Var) and head.name == cons and cons not in shadowed:
        # c a1 ... ak rest  (or  c a1 ... ak  in the Remark 3.3 eta
        # variant, where the chain has no terminal).
        if terminal is None:
            return all(_is_atom(a, inputs, shadowed) for a in args)
        if not args:
            return False
        *atoms, rest = args
        if not all(_is_atom(a, inputs, shadowed) for a in atoms):
            return False
        return _scan_chain(
            rest, cons=cons, terminal=terminal, inputs=inputs,
            enclosing=enclosing, shadowed=shadowed, scan=scan,
        )
    if isinstance(head, EqConst):
        # Eq a b B_true B_false — both branches must chain to the same
        # terminal (the equality is tuple-local).
        if len(args) != 4:
            return False
        if not all(_is_atom(a, inputs, shadowed) for a in args[:2]):
            return False
        return all(
            _scan_chain(
                branch, cons=cons, terminal=terminal, inputs=inputs,
                enclosing=enclosing, shadowed=shadowed, scan=scan,
            )
            for branch in args[2:]
        )
    if (
        isinstance(head, Var)
        and head.name in inputs
        and head.name not in shadowed
    ):
        # R F rest — a fold over input R.
        if len(args) != 2:
            return False
        loop, rest = args
        scan.occurrences.append((head.name, enclosing))
        if not _scan_chain(
            rest, cons=cons, terminal=terminal, inputs=inputs,
            enclosing=enclosing, shadowed=shadowed, scan=scan,
        ):
            return False
        if isinstance(loop, Var) and loop.name == cons and cons not in shadowed:
            return True  # R c rest: the identity copy loop
        if not isinstance(loop, Abs):
            return False
        names, body = binder_prefix(loop)
        if not names:
            return False
        return _scan_chain(
            body,
            cons=cons,
            terminal=names[-1],
            inputs=inputs,
            enclosing=enclosing | {head.name},
            shadowed=(shadowed | set(names)) - {names[-1]},
            scan=scan,
        )
    return False


#: Depth cap for the data-independent plan normalization.
PLAN_NORMALIZE_MAX_DEPTH = 200_000


def _scan_term(
    term: Term, signature: QueryArity
) -> TUnion[Tuple[_ChainScan, Tuple[str, ...]], str]:
    """Normalize a term plan and scan its body; returns the scan plus the
    input binder names, or a reason string when the plan cannot be
    analyzed."""
    try:
        normal = nbe_normalize(term, max_depth=PLAN_NORMALIZE_MAX_DEPTH)
    except Exception as exc:  # noqa: BLE001 - any failure means local-only
        return f"plan does not normalize without data: {exc}"
    names, body = binder_prefix(normal)
    input_count = len(signature.inputs)
    if len(names) < input_count:
        return (
            f"normal form binds {len(names)} inputs, signature declares "
            f"{input_count}"
        )
    input_names = names[:input_count]
    rest = names[input_count:]
    if len(set(names)) != len(names):
        return "normal form reuses a binder name across the prefix"
    inputs = frozenset(input_names)
    scan = _ChainScan(ok=False, occurrences=[])
    if len(rest) == 2:
        cons, terminal = rest
    elif len(rest) == 1:
        cons, terminal = rest[0], None  # Remark 3.3 eta variant
    else:
        return (
            f"normal form carries {len(rest)} output binders "
            f"(expected the λc. λn. shape)"
        )
    scan.ok = _scan_chain(
        body,
        cons=cons,
        terminal=terminal,
        inputs=inputs,
        enclosing=frozenset(),
        shadowed=frozenset(),
        scan=scan,
    )
    if not scan.ok:
        scan.reason = (
            "normal form is not a tuple-local fold chain "
            "(accumulator dropped, input re-iterated, or non-fold use)"
        )
    return scan, tuple(input_names)


def plan_term_distribution(
    term: Term,
    signature: Optional[QueryArity],
    *,
    input_names: Optional[Sequence[str]] = None,
) -> DistributionPlan:
    """Classify a term plan via the normalized chain grammar.

    ``signature`` fixes how many leading binders are inputs; without one
    the split cannot be located and the plan is ``local-only``.
    ``input_names`` optionally maps binder positions to catalog relation
    names (defaults to the normal form's own binder names).
    """
    if signature is None:
        return DistributionPlan(
            mode=MODE_LOCAL,
            kind="term",
            partition_names=(),
            broadcast_names=(),
            code=CODE_LOCAL_ONLY,
            reason="no arity signature: cannot identify the input binders",
        )
    scanned = _scan_term(term, signature)
    if isinstance(scanned, str):
        return DistributionPlan(
            mode=MODE_LOCAL,
            kind="term",
            partition_names=(),
            broadcast_names=(),
            code=CODE_LOCAL_ONLY,
            reason=scanned,
        )
    scan, binders = scanned
    public = (
        tuple(input_names)
        if input_names is not None
        else binders
    )
    if len(public) != len(binders):
        raise ReproError(
            f"{len(binders)} input binders but {len(public)} input names"
        )
    rename = dict(zip(binders, public))

    if not scan.ok:
        return DistributionPlan(
            mode=MODE_LOCAL,
            kind="term",
            partition_names=(),
            broadcast_names=public,
            code=CODE_LOCAL_ONLY,
            reason=scan.reason,
        )
    full = frozenset(binders)
    if full and scan.valid_for(full):
        return DistributionPlan(
            mode=MODE_PARTITIONABLE,
            kind="term",
            partition_names=public,
            broadcast_names=(),
            code=CODE_DISTRIBUTABLE,
            reason=(
                "normal form folds every input tuple-locally; "
                "all inputs split"
            ),
        )
    candidates = tuple(
        rename[name]
        for name in binders
        if scan.valid_for(frozenset((name,)))
    )
    if candidates:
        others = tuple(n for n in public if n not in candidates)
        return DistributionPlan(
            mode=MODE_BROADCAST,
            kind="term",
            partition_names=candidates,
            broadcast_names=others,
            code=CODE_DISTRIBUTABLE,
            reason=(
                f"inputs are joined; any one of {', '.join(candidates)} "
                f"may be split with the rest replicated"
            ),
        )
    return DistributionPlan(
        mode=MODE_LOCAL,
        kind="term",
        partition_names=(),
        broadcast_names=public,
        code=CODE_LOCAL_ONLY,
        reason=(
            "every input's folds are nested inside other folds "
            "(sharded self-joins); evaluating in-process"
        ),
    )


def refine_distribution(
    plan: DistributionPlan,
    scanned: AbstractSet[str],
) -> Tuple[DistributionPlan, Tuple[str, ...]]:
    """Drop unscanned relations from a plan's partition candidates.

    The read-set certificate (TLI023) proves an unscanned input cannot
    influence the result, so splitting it buys no parallelism — it only
    adds partitioning work and skews the shard fuel split.  The refined
    plan broadcasts those relations instead; dropping a subset of a valid
    split set is always sound (both the chain-grammar and the RA
    distributivity predicates are monotone under shrinking the split
    set).  Returns ``(plan, dropped_names)``; the plan is unchanged when
    nothing was dropped or dropping would empty the candidate set.
    """
    if not plan.distributable:
        return plan, ()
    dropped = tuple(
        name for name in plan.partition_names if name not in scanned
    )
    if not dropped:
        return plan, ()
    kept = tuple(
        name for name in plan.partition_names if name in scanned
    )
    if not kept:
        # Every candidate is unscanned: the result is data-independent of
        # all of them; keep the original plan rather than invent an empty
        # split.
        return plan, ()
    refined = replace(
        plan,
        partition_names=kept,
        broadcast_names=plan.broadcast_names
        + tuple(n for n in dropped if n not in plan.broadcast_names),
        reason=plan.reason
        + f"; read-set refinement broadcasts unscanned {', '.join(dropped)}",
    )
    return refined, dropped


def plan_distribution(
    plan: TUnion[Term, FixpointQuery],
    *,
    signature: Optional[QueryArity] = None,
    input_names: Optional[Sequence[str]] = None,
) -> DistributionPlan:
    """Classify either plan shape (the service runtime's entry point)."""
    if isinstance(plan, FixpointQuery):
        return plan_fixpoint_distribution(plan)
    if isinstance(plan, Term):
        return plan_term_distribution(
            plan, signature, input_names=input_names
        )
    raise ReproError(
        f"cannot plan distribution for {type(plan).__name__}"
    )


# ---------------------------------------------------------------------------
# Fuel splitting (Theorem 5.1 over shard statistics)
# ---------------------------------------------------------------------------

def shard_fuel(
    cost: Optional[CostProfile],
    shard_database: Database,
    *,
    default: int,
    scanned_names: Optional[Sequence[str]] = None,
) -> int:
    """The fuel budget for one shard task.

    The Theorem 5.1 cost certificate is a polynomial in the database
    statistics; instantiated at the *shard's* statistics it bounds the
    shard evaluation, and since the polynomial is monotone the per-shard
    budget never exceeds the single-shard budget.  With ``scanned_names``
    (an exact read-set, TLI023) the statistics are restricted to the
    relations the plan actually scans — unscanned relations inflate the
    budget without ever being folded.
    """
    stats_db = shard_database
    if scanned_names is not None:
        keep = set(scanned_names)
        if keep < set(shard_database.names):
            stats_db = Database(
                tuple(
                    (name, relation)
                    for name, relation in shard_database
                    if name in keep
                )
            )
    return fuel_budget(
        cost, DatabaseStats.of(stats_db), default=default
    )
