"""The request-side sharding policy (kept dependency-free so the service
runtime can import it without pulling in ``multiprocessing``)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ReproError

#: Fallback behaviours when a plan is not distributable (or workers die).
FALLBACK_LOCAL = "local"
FALLBACK_ERROR = "error"


@dataclass(frozen=True)
class ShardPolicy:
    """How a request wants to be sharded.

    ``shards`` is the partition count ``k``; ``partitioner`` picks the
    row-assignment rule (``"hash"`` or ``"round_robin"``, see
    :mod:`repro.shard.partition`); ``fallback`` says what a ``local-only``
    classification does (``"local"`` degrades to the ordinary in-process
    path, ``"error"`` turns it into an error response);
    ``task_timeout_s`` bounds each per-shard task on the worker pool.
    """

    shards: int
    partitioner: str = "hash"
    fallback: str = FALLBACK_LOCAL
    task_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ReproError(f"shards must be >= 1, got {self.shards}")
        if self.fallback not in (FALLBACK_LOCAL, FALLBACK_ERROR):
            raise ReproError(
                f"unknown shard fallback {self.fallback!r}; "
                f"expected 'local' or 'error'"
            )
