"""The persistent ``multiprocessing`` worker pool for shard tasks.

One worker = one long-lived process holding a *warm snapshot cache*: shard
databases (and their Definition 3.1 encodings) are shipped once, keyed by
digest, and later tasks reference them by digest only — the expensive
``encode_database`` runs once per (worker, shard) pair, mirroring what the
catalog does in-process.

Reliability model:

* **Health checks** — :meth:`ShardWorkerPool.ping` round-trips every
  worker and respawns any that died idle.
* **Crash detection** — a worker dying mid-task surfaces as ``EOFError``
  / ``BrokenPipeError`` on its pipe; the coordinator respawns the worker
  (its snapshot cache restarts cold) and retries the task with
  exponential backoff, at most ``max_retries`` times.
* **Per-task timeouts** — a task overrunning its deadline gets its worker
  killed (the budgeted evaluation would finish eventually, but the
  deadline wins) and counts as a crash for retry purposes.
* **Graceful degradation** — when retries are exhausted the task runs
  in-process via :func:`execute_task`, so a dying pool degrades to the
  single-process runtime instead of erroring the batch.

Tasks and replies are plain picklable dicts; :func:`execute_task` is the
single execution semantics shared by workers and the degraded path.
``{"kind": "crash"}`` makes a worker ``os._exit`` — the deterministic
crash injection the recovery tests use.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.db.encode import encode_database
from repro.db.relations import Database, Relation
from repro.errors import FuelExhausted, ReproError

#: Events reported to the pool's observer callback.
EVENT_TASK = "task"
EVENT_RETRY = "retry"
EVENT_CRASH = "crash"
EVENT_TIMEOUT = "timeout"
EVENT_DEGRADED = "degraded"
EVENT_RESPAWN = "respawn"


class WorkerCrash(ReproError):
    """A worker died (or timed out) while running a task."""


class WorkerTimeout(WorkerCrash):
    """A worker missed its per-task deadline (killed and respawned)."""


# ---------------------------------------------------------------------------
# Task execution (worker side and the degraded in-process path)
# ---------------------------------------------------------------------------

def _resolve_database(
    task: dict, cache: Dict[str, Tuple[Database, tuple]]
) -> Tuple[Database, tuple]:
    digest = task.get("db_digest")
    database = task.get("database")
    if database is not None:
        entry = (database, tuple(encode_database(database)))
        if digest is not None:
            cache[digest] = entry
        return entry
    if digest is not None and digest in cache:
        return cache[digest]
    raise ReproError(
        f"task references unknown database snapshot {digest!r}"
    )


def execute_task(
    task: dict, cache: Optional[Dict[str, Tuple[Database, tuple]]] = None
) -> dict:
    """Execute one shard task; never raises — errors become replies.

    Kinds: ``ping`` (health check), ``db`` (preload a snapshot), ``term``
    (evaluate a term plan over a snapshot), ``ra`` (evaluate an RA step,
    optionally with the broadcast fixpoint stage bound to ``fix_name``).
    """
    if cache is None:
        cache = {}
    kind = task.get("kind")
    try:
        if kind == "ping":
            return {"ok": True, "kind": "pong", "pid": os.getpid()}
        if kind == "db":
            _resolve_database(task, cache)
            return {"ok": True, "kind": "db"}
        if kind == "term":
            from repro.db.decode import decode_relation
            from repro.obs.profiler import ProfileCollector
            from repro.service.engines import evaluate_term_query

            _, encoded = _resolve_database(task, cache)
            collector = ProfileCollector()
            result = evaluate_term_query(
                task["term"],
                encoded,
                engine=task.get("engine", "nbe"),
                fuel=task.get("fuel"),
                max_depth=task.get("max_depth", 600_000),
                observer=collector,
            )
            decoded = decode_relation(
                result.normal_form, task.get("arity")
            )
            return {
                "ok": True,
                "tuples": decoded.relation.tuples,
                "arity": decoded.relation.arity,
                "steps": result.steps,
                "profile": collector.profile.as_dict(),
            }
        if kind == "ra":
            from repro.eval.materialize import run_ra_query_materialized

            database, _ = _resolve_database(task, cache)
            fix_tuples = task.get("fix_tuples")
            if fix_tuples is not None:
                database = database.with_relation(
                    task["fix_name"],
                    Relation.from_tuples(task["fix_arity"], fix_tuples),
                )
            run = run_ra_query_materialized(
                task["expr"],
                database,
                max_depth=task.get("max_depth", 600_000),
            )
            return {
                "ok": True,
                "tuples": run.relation.tuples,
                "arity": run.relation.arity,
                "steps": run.steps,
            }
        return {"ok": False, "error_kind": "error",
                "error": f"unknown task kind {kind!r}"}
    except FuelExhausted as exc:
        return {
            "ok": False,
            "error_kind": "fuel",
            "steps": exc.steps,
            "error": str(exc),
        }
    except Exception as exc:  # noqa: BLE001 - replies, never raises
        return {
            "ok": False,
            "error_kind": "error",
            "error": f"{type(exc).__name__}: {exc}",
        }


def _worker_main(conn) -> None:
    """The worker process loop: recv task, execute, send reply."""
    cache: Dict[str, Tuple[Database, tuple]] = {}
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        kind = task.get("kind")
        if kind == "shutdown":
            return
        if kind == "crash":
            # Deterministic crash injection for the recovery tests: die
            # without replying, exactly like a segfault would.
            os._exit(task.get("exitcode", 3))
        conn.send(execute_task(task, cache))


# ---------------------------------------------------------------------------
# The coordinator
# ---------------------------------------------------------------------------

class _Worker:
    __slots__ = ("index", "process", "conn", "seen", "respawns")

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.seen: set = set()
        self.respawns = 0


class ShardWorkerPool:
    """A fixed-size pool of persistent shard workers.

    ``observer`` (if given) is called with one event name per notable
    occurrence (``task`` / ``retry`` / ``crash`` / ``timeout`` /
    ``degraded`` / ``respawn``) — the service runtime wires it to the
    ``repro_shard_*`` metrics.
    """

    def __init__(
        self,
        workers: int,
        *,
        start_method: Optional[str] = None,
        max_retries: int = 2,
        backoff_s: float = 0.05,
        task_timeout_s: Optional[float] = None,
        observer: Optional[Callable[[str], None]] = None,
    ) -> None:
        if workers < 1:
            raise ReproError(f"pool needs >= 1 worker, got {workers}")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.task_timeout_s = task_timeout_s
        self._observer = observer
        self._lock = threading.Lock()
        self._closed = False
        self._workers: List[_Worker] = []
        for index in range(workers):
            self._workers.append(self._spawn(index))

    # -- lifecycle -----------------------------------------------------------

    def _notify(self, event: str) -> None:
        if self._observer is not None:
            self._observer(event)

    def _spawn(self, index: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(index, process, parent_conn)

    def _respawn(self, index: int) -> _Worker:
        old = self._workers[index]
        try:
            old.conn.close()
        except OSError:
            pass
        if old.process.is_alive():
            old.process.kill()
        old.process.join(timeout=5)
        fresh = self._spawn(index)
        fresh.respawns = old.respawns + 1
        self._workers[index] = fresh
        self._notify(EVENT_RESPAWN)
        return fresh

    @property
    def size(self) -> int:
        return len(self._workers)

    def ensure_workers(self, count: int) -> None:
        """Grow the pool to at least ``count`` workers."""
        with self._lock:
            while len(self._workers) < count:
                self._workers.append(self._spawn(len(self._workers)))

    def worker_pids(self) -> List[Optional[int]]:
        return [w.process.pid for w in self._workers]

    def respawn_counts(self) -> List[int]:
        return [w.respawns for w in self._workers]

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for worker in self._workers:
                try:
                    worker.conn.send({"kind": "shutdown"})
                except (OSError, ValueError, BrokenPipeError):
                    pass
            for worker in self._workers:
                worker.process.join(timeout=2)
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join(timeout=2)
                try:
                    worker.conn.close()
                except OSError:
                    pass

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- health --------------------------------------------------------------

    def ping(self, timeout_s: float = 5.0) -> List[bool]:
        """Round-trip every worker; dead workers are respawned and
        reported ``False`` for this check."""
        health: List[bool] = []
        for index in range(len(self._workers)):
            try:
                reply = self._roundtrip(
                    index, {"kind": "ping"}, timeout_s
                )
                health.append(bool(reply.get("ok")))
            except WorkerCrash:
                with self._lock:
                    self._respawn(index)
                health.append(False)
        return health

    def inject_crash(self, index: int, *, exitcode: int = 3) -> None:
        """Make worker ``index`` exit without replying (test hook)."""
        worker = self._workers[index]
        try:
            worker.conn.send({"kind": "crash", "exitcode": exitcode})
        except (OSError, ValueError, BrokenPipeError):
            return
        worker.process.join(timeout=5)

    # -- task execution ------------------------------------------------------

    def _roundtrip(self, index: int, payload: dict, timeout_s) -> dict:
        worker = self._workers[index]
        try:
            worker.conn.send(payload)
            if timeout_s is not None:
                if not worker.conn.poll(timeout_s):
                    raise WorkerTimeout(
                        f"worker {index} missed its {timeout_s}s deadline"
                    )
            return worker.conn.recv()
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise WorkerCrash(f"worker {index} died: {exc}") from exc

    def run_task(
        self,
        task: dict,
        *,
        worker_index: int = 0,
        timeout_s: Optional[float] = None,
    ) -> dict:
        """Run one task with crash recovery; degrades in-process on
        exhausted retries.  The reply carries a ``_meta`` dict with the
        worker index, retry count, and whether it degraded."""
        if self._closed:
            raise ReproError("the shard worker pool is closed")
        timeout = timeout_s if timeout_s is not None else self.task_timeout_s
        index = worker_index % len(self._workers)
        self._notify(EVENT_TASK)
        retries = 0
        while retries <= self.max_retries:
            worker = self._workers[index]
            payload = dict(task)
            digest = payload.get("db_digest")
            if digest is not None and digest in worker.seen:
                payload.pop("database", None)
            try:
                reply = self._roundtrip(index, payload, timeout)
            except WorkerCrash as crash:
                timed_out = isinstance(crash, WorkerTimeout)
                self._notify(EVENT_TIMEOUT if timed_out else EVENT_CRASH)
                with self._lock:
                    self._respawn(index)
                retries += 1
                if retries <= self.max_retries:
                    self._notify(EVENT_RETRY)
                    time.sleep(self.backoff_s * (2 ** (retries - 1)))
                continue
            if digest is not None:
                worker.seen.add(digest)
            reply["_meta"] = {
                "worker": index,
                "retries": retries,
                "degraded": False,
            }
            return reply
        # Retries exhausted: degrade to in-process evaluation (the task's
        # own fuel/depth budgets still bound it).
        self._notify(EVENT_DEGRADED)
        reply = execute_task(dict(task))
        reply["_meta"] = {
            "worker": None,
            "retries": retries,
            "degraded": True,
        }
        return reply

    def run_batch(
        self,
        tasks: List[dict],
        *,
        timeout_s: Optional[float] = None,
    ) -> List[dict]:
        """Run ``tasks`` concurrently (task ``i`` starts on worker ``i mod
        size``); one reply per task, in task order, never an exception."""
        if not tasks:
            return []
        if len(tasks) == 1:
            return [self.run_task(tasks[0], timeout_s=timeout_s)]
        size = len(self._workers)
        replies: List[Optional[dict]] = [None] * len(tasks)
        # Each worker's pipe is serial, so tasks assigned to the same
        # worker run back-to-back on one coordinator thread per worker.
        by_worker: Dict[int, List[int]] = {}
        for position in range(len(tasks)):
            by_worker.setdefault(position % size, []).append(position)

        def drive(worker_index: int, positions: List[int]) -> None:
            for position in positions:
                replies[position] = self.run_task(
                    tasks[position],
                    worker_index=worker_index,
                    timeout_s=timeout_s,
                )

        threads = [
            threading.Thread(
                target=drive, args=(worker_index, positions), daemon=True
            )
            for worker_index, positions in by_worker.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return [reply for reply in replies if reply is not None]
